#ifndef SSQL_ENGINE_TASK_RUNNER_H_
#define SSQL_ENGINE_TASK_RUNNER_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "util/status.h"

namespace ssql {

class QueryContext;

class CancellationToken;
using CancellationTokenPtr = std::shared_ptr<CancellationToken>;

/// Cooperative cancellation shared by the driver and every partition task
/// of a query. Cancellation has three sources: an explicit Cancel() (user
/// abort), a wall-clock deadline (EngineConfig::query_timeout_ms /
/// task_timeout_ms), and — for child tokens — the parent chain: a task
/// attempt's token is a child of the query token, so cancelling the query
/// cancels every attempt while cancelling one attempt (a lost speculation
/// race) leaves its siblings running. Tasks and long operator loops poll
/// ThrowIfCancelled(); the engine never kills a thread, matching Spark's
/// cooperative task-kill model.
class CancellationToken {
 public:
  /// Marks the token cancelled; idempotent (the first reason wins).
  void Cancel(std::string reason);

  /// Arms a deadline `timeout_ms` from now. Negative = no deadline.
  void SetTimeout(int64_t timeout_ms);

  /// True if cancelled, past the deadline, or any ancestor is cancelled.
  bool IsCancelled() const;

  /// Throws ExecutionError describing the cancellation or timeout.
  void ThrowIfCancelled() const;

  /// Human-readable cancellation cause ("" when not cancelled). A child
  /// token cancelled only through its parent reports the parent's reason —
  /// so a speculative loser's error names *why* ("lost speculation race
  /// for stage 'scan' partition 3"), not a generic cancel.
  std::string StatusMessage() const;

  /// Creates a token whose IsCancelled()/StatusMessage() also observe
  /// `parent`. Cancelling the child never propagates up.
  static CancellationTokenPtr MakeChild(CancellationTokenPtr parent);

  /// True if Cancel() was called on THIS token (not inherited from the
  /// parent, not a deadline) — how a task attempt distinguishes "I lost the
  /// speculation race" from "the whole query died".
  bool LocalCancelRequested() const {
    return cancelled_.load(std::memory_order_acquire);
  }

  /// True if this token's own deadline (SetTimeout) has passed — how a task
  /// attempt distinguishes its task_timeout_ms expiring from query death.
  bool LocalDeadlineExceeded() const { return PastDeadline(); }

 private:
  bool PastDeadline() const;

  std::atomic<bool> cancelled_{false};
  // Deadline as steady_clock ns-since-epoch; 0 = unarmed.
  std::atomic<int64_t> deadline_ns_{0};
  std::atomic<int64_t> timeout_ms_{0};
  mutable std::mutex mu_;
  std::string reason_;
  // Set once by MakeChild before the token is shared; immutable after.
  CancellationTokenPtr parent_;
};

/// How often row-level loops poll the cancellation token: every
/// `kCancellationCheckInterval` rows (must stay a power of two). Each poll
/// also publishes a progress heartbeat for the engine watchdog — see
/// QueryContext::CheckCancelledEvery.
inline constexpr size_t kCancellationCheckInterval = 64;

/// Runtime state of ONE in-flight task attempt, registered with its
/// QueryContext while the attempt runs so the engine watchdog can scan
/// progress heartbeats and name the stuck stage/partition, and so a
/// speculation coordinator can cancel the losing copy cooperatively.
struct TaskAttemptState {
  std::string stage;
  size_t partition = 0;
  bool speculative = false;
  /// Child of the query token (null when neither task_timeout_ms nor
  /// speculation is armed — then only heartbeats are published).
  CancellationTokenPtr token;
  /// Last progress heartbeat, steady-clock ns. Written by the attempt's
  /// thread at every cancellation poll site; read by the watchdog.
  std::atomic<int64_t> last_beat_ns{0};
  /// Set when the attempt's task_timeout_ms deadline was converted into a
  /// RetryableError, so the retry loop can attribute the failure.
  std::atomic<bool> timed_out{false};
  /// The armed per-attempt deadline, for the timeout error message.
  int64_t timeout_ms = -1;
};

/// Thrown out of a task body when this attempt — not the query — was
/// cancelled because its duplicate won the speculation race. Internal
/// control flow: TaskRunner absorbs it as a benign abort (the partition's
/// result was already committed by the winner), it never fails a stage.
class TaskAttemptAborted : public ExecutionError {
 public:
  using ExecutionError::ExecutionError;
};

/// RAII: registers `state` with `ctx` (watchdog visibility) and makes it
/// the calling thread's current attempt for PollCurrentTaskAttempt();
/// restores the previous attempt on destruction, so nested stages and
/// ThreadPool help-draining (an outer task running an inner stage's tasks
/// on its own thread) keep per-attempt state straight.
class TaskAttemptScope {
 public:
  TaskAttemptScope(QueryContext& ctx, TaskAttemptState* state);
  ~TaskAttemptScope();

  TaskAttemptScope(const TaskAttemptScope&) = delete;
  TaskAttemptScope& operator=(const TaskAttemptScope&) = delete;

 private:
  QueryContext& ctx_;
  TaskAttemptState* state_;
  TaskAttemptState* saved_;
};

/// Per-attempt poll hook, called from QueryContext::CheckCancelled at every
/// cancellation poll site. Publishes a progress heartbeat on the current
/// thread's attempt, then converts per-attempt cancellation into control
/// flow: an expired task_timeout_ms deadline throws RetryableError (the
/// attempt is runaway; a fresh attempt gets a fresh deadline) and a lost
/// speculation race throws TaskAttemptAborted. No-op outside a task.
void PollCurrentTaskAttempt();

/// Deterministic fault injection for exercising the retry machinery in
/// tests and benchmarks. Configured from EngineConfig::fault_injection_spec,
/// a comma-separated list of rules
///
///   <stage>:<partition>:<attempt>[-<last_attempt>]
///
/// e.g. "scan:3:0-1" fails partition 3 of the stage named "scan" on
/// attempts 0 and 1 with a RetryableError; "*:1:0" fails partition 1 of
/// every stage on its first attempt. An empty spec disables injection.
class FaultInjector {
 public:
  /// Parses a spec; throws ExecutionError on syntax errors.
  static FaultInjector Parse(const std::string& spec);

  bool enabled() const { return !rules_.empty(); }

  /// Throws RetryableError if a rule matches (stage, partition, attempt).
  void MaybeFail(const std::string& stage, size_t partition, int attempt) const;

 private:
  struct Rule {
    std::string stage;  // "*" matches any stage
    size_t partition;
    int first_attempt;
    int last_attempt;
  };
  std::vector<Rule> rules_;
};

/// Runs one "stage" — n per-partition tasks — on the engine's pool with
/// Spark-style fault handling, which ThreadPool::RunAll alone does not
/// provide:
///
///   * each partition is attempted up to 1 + task_max_retries times when it
///     fails with RetryableError (exponential backoff between attempts);
///   * any other exception is fatal: outstanding sibling tasks that have
///     not started yet are cancelled, and every failure observed during the
///     stage is collected into one ExecutionError naming the partitions;
///   * the query's CancellationToken is polled before each attempt, so a
///     cancelled or timed-out query stops scheduling work promptly;
///   * each attempt runs under a child CancellationToken chained to the
///     query token: EngineConfig::task_timeout_ms arms a per-attempt
///     deadline that converts a runaway attempt into a RetryableError, and
///     attempts publish progress heartbeats for the engine watchdog;
///   * RunStageSpeculatable additionally races stragglers against duplicate
///     attempts (EngineConfig::speculation_multiplier): once
///     speculation_quantile of the stage's tasks have finished, any task
///     running longer than median × multiplier gets one duplicate; the
///     first copy to finish commits exactly once and the loser is cancelled
///     cooperatively through its attempt token;
///   * each stage opens a profile span with one task span per partition
///     (covering all of its attempts), carrying the attempts/retries/
///     failures/speculation counters — which also feed the legacy
///     ExecContext::Metrics keys "task.attempts", "task.retries",
///     "task.failures", "task.speculated", "task.speculation_wins",
///     "task.timeouts".
///
/// Bodies are re-executed from scratch on retry, so they must be
/// idempotent; a body that destructively consumes shared input must only
/// throw RetryableError before its first destructive step (the built-in
/// fault injector fires before the body runs, preserving this).
class TaskRunner {
 public:
  explicit TaskRunner(QueryContext& ctx) : ctx_(ctx) {}

  /// Runs `body(p)` for every partition p in [0, num_partitions) and blocks
  /// until the stage completes or fails. Never speculates: the body's side
  /// effects are opaque, so two concurrent copies could race.
  void RunStage(const std::string& stage, size_t num_partitions,
                const std::function<void(size_t)>& body) const;

  /// What a speculatable task's compute phase returns: a cheap, must-not-
  /// fail closure publishing the already-computed result (typically one
  /// move-assignment into the caller's output slot). Exactly one closure
  /// per partition ever runs, even when two attempts raced; an empty
  /// function is allowed (nothing to publish).
  using TaskCommitFn = std::function<void()>;

  /// Two-phase variant eligible for speculative duplicates: `body(p)` does
  /// the work against partition-local state only and returns the commit
  /// closure that publishes its result. Because the compute phase touches
  /// nothing shared, a straggler and its duplicate may run concurrently —
  /// the exactly-once commit is what keeps that deliberate race benign
  /// (and TSan-clean). Speculation is armed by
  /// EngineConfig::speculation_multiplier >= 0; when disabled this behaves
  /// exactly like RunStage.
  void RunStageSpeculatable(
      const std::string& stage, size_t num_partitions,
      const std::function<TaskCommitFn(size_t)>& body) const;

 private:
  void RunStageImpl(const std::string& stage, size_t num_partitions,
                    const std::function<TaskCommitFn(size_t)>& body,
                    bool speculatable) const;

  QueryContext& ctx_;
};

}  // namespace ssql

#endif  // SSQL_ENGINE_TASK_RUNNER_H_
