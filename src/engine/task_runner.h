#ifndef SSQL_ENGINE_TASK_RUNNER_H_
#define SSQL_ENGINE_TASK_RUNNER_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "util/status.h"

namespace ssql {

class QueryContext;

/// Cooperative cancellation shared by the driver and every partition task
/// of a query. Cancellation has two sources: an explicit Cancel() (user
/// abort) and a wall-clock deadline (EngineConfig::query_timeout_ms).
/// Tasks and long operator loops poll ThrowIfCancelled(); the engine never
/// kills a thread, matching Spark's cooperative task-kill model.
class CancellationToken {
 public:
  /// Marks the token cancelled; idempotent (the first reason wins).
  void Cancel(std::string reason);

  /// Arms a deadline `timeout_ms` from now. Negative = no deadline.
  void SetTimeout(int64_t timeout_ms);

  /// True if cancelled or past the deadline.
  bool IsCancelled() const;

  /// Throws ExecutionError describing the cancellation or timeout.
  void ThrowIfCancelled() const;

  /// Human-readable cancellation cause ("" when not cancelled).
  std::string StatusMessage() const;

 private:
  bool PastDeadline() const;

  std::atomic<bool> cancelled_{false};
  // Deadline as steady_clock ns-since-epoch; 0 = unarmed.
  std::atomic<int64_t> deadline_ns_{0};
  int64_t timeout_ms_ = 0;
  mutable std::mutex mu_;
  std::string reason_;
};

using CancellationTokenPtr = std::shared_ptr<CancellationToken>;

/// How often row-level loops poll the cancellation token: every
/// `kCancellationCheckInterval` rows (must stay a power of two).
inline constexpr size_t kCancellationCheckInterval = 64;

/// Deterministic fault injection for exercising the retry machinery in
/// tests and benchmarks. Configured from EngineConfig::fault_injection_spec,
/// a comma-separated list of rules
///
///   <stage>:<partition>:<attempt>[-<last_attempt>]
///
/// e.g. "scan:3:0-1" fails partition 3 of the stage named "scan" on
/// attempts 0 and 1 with a RetryableError; "*:1:0" fails partition 1 of
/// every stage on its first attempt. An empty spec disables injection.
class FaultInjector {
 public:
  /// Parses a spec; throws ExecutionError on syntax errors.
  static FaultInjector Parse(const std::string& spec);

  bool enabled() const { return !rules_.empty(); }

  /// Throws RetryableError if a rule matches (stage, partition, attempt).
  void MaybeFail(const std::string& stage, size_t partition, int attempt) const;

 private:
  struct Rule {
    std::string stage;  // "*" matches any stage
    size_t partition;
    int first_attempt;
    int last_attempt;
  };
  std::vector<Rule> rules_;
};

/// Runs one "stage" — n per-partition tasks — on the engine's pool with
/// Spark-style fault handling, which ThreadPool::RunAll alone does not
/// provide:
///
///   * each partition is attempted up to 1 + task_max_retries times when it
///     fails with RetryableError (exponential backoff between attempts);
///   * any other exception is fatal: outstanding sibling tasks that have
///     not started yet are cancelled, and every failure observed during the
///     stage is collected into one ExecutionError naming the partitions;
///   * the query's CancellationToken is polled before each attempt, so a
///     cancelled or timed-out query stops scheduling work promptly;
///   * each stage opens a profile span with one task span per partition
///     (covering all of its attempts), carrying the attempts/retries/
///     failures counters — which also feed the legacy ExecContext::Metrics
///     keys "task.attempts", "task.retries", "task.failures".
///
/// Bodies are re-executed from scratch on retry, so they must be
/// idempotent; a body that destructively consumes shared input must only
/// throw RetryableError before its first destructive step (the built-in
/// fault injector fires before the body runs, preserving this).
class TaskRunner {
 public:
  explicit TaskRunner(QueryContext& ctx) : ctx_(ctx) {}

  /// Runs `body(p)` for every partition p in [0, num_partitions) and blocks
  /// until the stage completes or fails.
  void RunStage(const std::string& stage, size_t num_partitions,
                const std::function<void(size_t)>& body) const;

 private:
  QueryContext& ctx_;
};

}  // namespace ssql

#endif  // SSQL_ENGINE_TASK_RUNNER_H_
