#ifndef SSQL_ENGINE_QUERY_CONTEXT_H_
#define SSQL_ENGINE_QUERY_CONTEXT_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "engine/exec_context.h"
#include "engine/memory_manager.h"
#include "engine/query_profile.h"
#include "engine/task_runner.h"

namespace ssql {

/// Everything that belongs to ONE running query, created by
/// ExecContext::BeginQuery() and threaded through SqlContext::Execute,
/// TaskRunner and every physical operator / data source scan:
///
///   * its QueryProfile (span tree + counters),
///   * its CancellationToken (user abort + wall-clock timeout),
///   * its MemoryManager budget, carved from the engine-wide pool so
///     query_memory_limit_bytes stays a per-query cap while
///     total_memory_limit_bytes bounds the sum over concurrent queries,
///   * a query-id-namespaced spill subdirectory,
///   * a per-query Metrics view that folds into the engine aggregate, and
///   * an immutable snapshot of the EngineConfig taken at admission.
///
/// Engine-wide state (worker pool, catalog, columnar cache, legacy metrics
/// bag) stays on the ExecContext, reachable via engine(). N QueryContexts
/// may execute concurrently over one engine without sharing any of the
/// above — the cross-query races this separation fixes were: profile spans
/// interleaving, cancellation cross-talk, and spill-file collisions.
///
/// Lifecycle: BeginQuery() → operators run → Finish(status) exactly once
/// (idempotent; also run by the destructor as a backstop). Finish closes
/// the profile, writes the query-id-suffixed trace file, emits the
/// slow-query log line, removes the spill subdirectory, and releases the
/// engine admission slot.
class QueryContext {
 public:
  ~QueryContext();

  QueryContext(const QueryContext&) = delete;
  QueryContext& operator=(const QueryContext&) = delete;

  /// Process-unique id (1-based) naming the spill namespace and trace file.
  uint64_t query_id() const { return query_id_; }

  /// Wall-clock admission time (milliseconds since the Unix epoch) — the
  /// start_unix_ms column of system.queries.
  int64_t start_unix_ms() const { return start_unix_ms_; }

  /// Milliseconds elapsed since admission, on the monotonic clock. Safe to
  /// call from any thread at any point in the query's life.
  int64_t ElapsedMs() const;

  /// The engine this query runs on (pool, catalog-side state, aggregates).
  ExecContext& engine() const { return engine_; }

  /// The EngineConfig snapshot taken when this query was admitted (with any
  /// QueryOptions overrides applied). Stable for the query's lifetime even
  /// if the engine config changes between queries.
  const EngineConfig& config() const { return config_; }

  /// The shared worker pool — tasks of concurrent queries interleave here.
  ThreadPool& pool() const { return engine_.pool(); }

  /// This query's metrics view. Adds are local to this query; Finish folds
  /// the whole bag into the engine-wide ExecContext::metrics() aggregate in
  /// one pass (so a running query takes exactly one lock per Add).
  Metrics& metrics() { return metrics_; }
  const Metrics& metrics() const { return metrics_; }

  /// This query's memory budget (never shared with other queries).
  MemoryManager& memory() { return memory_; }
  const MemoryManager& memory() const { return memory_; }

  /// This query's profile. Always non-null; stays readable after Finish.
  QueryProfile& profile() { return *profile_; }
  const QueryProfile& profile() const { return *profile_; }

  /// This query's token. Shared with partition tasks, so another thread may
  /// Cancel() it to abort this query — and only this query.
  const CancellationTokenPtr& cancellation() const { return cancellation_; }

  /// Cancels this query (cooperative; idempotent).
  void Cancel(const std::string& reason) { cancellation_->Cancel(reason); }

  /// Throws ExecutionError if this query was cancelled or timed out. Also
  /// the progress-heartbeat site: each call bumps the query-level beat and
  /// polls the calling thread's task attempt (heartbeat + lost-race +
  /// per-task deadline), so any loop that polls cancellation is automatically
  /// visible to the engine watchdog.
  void CheckCancelled() const;

  /// Cheap form for tight row loops: polls the token every
  /// kCancellationCheckInterval increments of `*counter`.
  void CheckCancelledEvery(size_t* counter) const {
    if ((++*counter & (kCancellationCheckInterval - 1)) == 0) {
      CheckCancelled();
    }
  }

  /// Batch-granularity form for vectorized loops: advances the counter by
  /// `rows` processed (so the poll cadence still tracks rows, not batches)
  /// and polls once kCancellationCheckInterval rows have accumulated.
  void CheckCancelledEveryRows(size_t* counter, size_t rows) const {
    *counter += rows;
    if (*counter >= kCancellationCheckInterval) {
      *counter = 0;
      CheckCancelled();
    }
  }

  /// This query's private spill directory: "<spill root>/q<pid>-<id>".
  /// Created on first use by SpillFile; removed wholesale by Finish, which
  /// is safe precisely because no other query ever writes here.
  std::string spill_dir() const;

  /// This query's disk-quota level, parented to the engine-wide pool: what
  /// every spill file created via MakeSpillFile charges.
  DiskQuota& disk_quota() { return disk_; }
  const DiskQuota& disk_quota() const { return disk_; }

  /// Creates a spill file in this query's spill namespace with the engine's
  /// fault points and this query's disk quota attached; `prefix` doubles as
  /// the stage/consumer name a quota-exhaustion error reports. All operator
  /// spill paths go through here so every spill write is charged and
  /// injectable.
  SpillFile MakeSpillFile(const std::string& prefix);

  /// The engine's fault-point set (site-based injection), shared by every
  /// query so hit windows span concurrent queries.
  const FaultPointSet& fault_points() const { return engine_.fault_points(); }

  /// Records one flight-recorder event attributed to this query — sugar
  /// over engine().journal().Emit with the query id filled in.
  void EmitEvent(EngineEventKind kind, EventSeverity severity, int64_t value,
                 std::string_view detail = {}) const {
    engine_.journal().Emit(kind, severity, query_id_, value, detail);
  }

  /// Stashes the EXPLAIN text of this query's physical plan (set by
  /// SqlContext right after planning) so a diagnostics bundle written at
  /// Finish can include the plan without re-planning.
  void set_plan_text(std::string text);
  std::string plan_text() const;

  /// I/O retry policy for this query's source reads: the config's
  /// io_max_retries / io_retry_backoff_ms with jitter seeded by the query id
  /// and an on_retry observer that bumps this query's "io.retries" metric,
  /// the engine counter, and logs.
  IoRetryPolicy io_retry_policy();

  /// Closes the profile (stamping unfinished spans with `status`), writes
  /// the trace file if config.trace_path is set (suffixed with the query
  /// id), logs a "query.slow" event when the query exceeded
  /// slow_query_threshold_ms, folds this query's metrics into the engine
  /// aggregate, removes the spill subdirectory, and retires the query into
  /// the engine's finished ring (releasing the admission slot). Idempotent;
  /// IO failures writing the trace are logged, never thrown (observability
  /// must not fail the query).
  void Finish(const std::string& status) { Finish(status, ErrorCode::kOk); }

  /// As above, additionally recording the structured taxonomy code of the
  /// failure (system.queries' error_code column, per-code engine counters).
  /// Pass kOk for non-failures; generic non-SsqlError failures record
  /// EXECUTION_ERROR via kExecutionError.
  void Finish(const std::string& status, ErrorCode code);

  bool finished() const { return finished_.load(std::memory_order_acquire); }

  // ---- task heartbeats (engine watchdog) --------------------------------

  /// Registers/unregisters one in-flight task attempt so the watchdog can
  /// scan its heartbeat. Called by TaskAttemptScope, never directly.
  void RegisterTaskAttempt(TaskAttemptState* attempt);
  void UnregisterTaskAttempt(TaskAttemptState* attempt);

  /// The oldest progress heartbeat among this query's in-flight task
  /// attempts — what the watchdog compares against stuck_task_timeout_ms.
  struct TaskStallInfo {
    bool has_attempt = false;
    std::string stage;
    size_t partition = 0;
    int64_t oldest_beat_ns = 0;
  };
  TaskStallInfo OldestTaskBeat() const;

  /// Milliseconds since any of this query's threads last made observable
  /// progress (a CheckCancelled poll or a task attempt starting); admission
  /// age until the first poll. The last_heartbeat_ms column of
  /// system.queries.
  int64_t LastHeartbeatAgeMs() const;

  /// Stall flag maintained by the watchdog (set once a task's heartbeat age
  /// crosses half of stuck_task_timeout_ms). The stalled column of
  /// system.queries.
  bool stalled() const { return stalled_.load(std::memory_order_acquire); }
  void set_stalled(bool stalled) {
    stalled_.store(stalled, std::memory_order_release);
  }

  /// Marks this query as killed by the watchdog, so its finished record
  /// carries error_code RESOURCE_EXHAUSTED (and stalled=true) instead of a
  /// plain cancellation. Called just before the watchdog cancels the token.
  void MarkWatchdogKilled() {
    watchdog_killed_.store(true, std::memory_order_release);
    stalled_.store(true, std::memory_order_release);
  }
  bool watchdog_killed() const {
    return watchdog_killed_.load(std::memory_order_acquire);
  }

 private:
  friend class ExecContext;
  QueryContext(ExecContext& engine, uint64_t query_id, EngineConfig config);

  ExecContext& engine_;
  const uint64_t query_id_;
  const EngineConfig config_;
  const int64_t start_unix_ms_;
  const int64_t start_steady_ns_;
  Metrics metrics_;
  std::unique_ptr<QueryProfile> profile_;
  CancellationTokenPtr cancellation_;
  MemoryManager memory_;
  DiskQuota disk_;  // per-query level over the engine pool
  std::atomic<bool> finished_{false};

  mutable std::mutex plan_text_mu_;
  std::string plan_text_;  // EXPLAIN of the physical plan; may stay empty

  // Watchdog state. attempts_ holds the in-flight TaskAttemptStates (stack
  // storage in TaskRunner, valid while registered). Lock order: an engine
  // watchdog scan takes ExecContext::mu_ then attempts_mu_; nothing takes
  // them in the other order.
  mutable std::mutex attempts_mu_;
  std::vector<TaskAttemptState*> attempts_;
  mutable std::atomic<int64_t> last_beat_ns_{0};
  std::atomic<bool> stalled_{false};
  std::atomic<bool> watchdog_killed_{false};
};

/// Resolves the per-query trace file path: inserts "-q<id>" before the
/// final extension ("trace.json" → "trace-q3.json"; extensionless paths
/// get the suffix appended). Exposed for tests.
std::string ResolveTracePath(const std::string& base, uint64_t query_id);

}  // namespace ssql

#endif  // SSQL_ENGINE_QUERY_CONTEXT_H_
