#ifndef SSQL_ENGINE_RDD_H_
#define SSQL_ENGINE_RDD_H_

#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <unordered_map>
#include <utility>
#include <vector>

#include "engine/exec_context.h"
#include "util/string_util.h"

namespace ssql {

/// A typed, lazily-evaluated, partitioned collection — the procedural Spark
/// API of Section 2.1. Narrow transformations (Map/Filter/FlatMap) compose
/// their closures, so chains are pipelined within one pass per partition and
/// intermediate collections are never materialized (the "lines/errors" RDD
/// example of the paper). Wide transformations (ReduceByKey/GroupByKey) are
/// stage boundaries: on the first action the stage's input is materialized
/// on the worker pool and hash-shuffled.
///
/// Unlike DataFrames, the engine sees only opaque std::function closures
/// here — precisely why the optimizer can do nothing with them (Section 6.2).
template <typename T>
class RDD : public std::enable_shared_from_this<RDD<T>> {
 public:
  using Ptr = std::shared_ptr<RDD<T>>;

  /// Creates a leaf or derived RDD from a per-partition compute function.
  RDD(ExecContext* ctx, size_t num_partitions,
      std::function<std::vector<T>(size_t)> compute,
      std::function<void()> prepare = nullptr)
      : ctx_(ctx),
        num_partitions_(num_partitions),
        compute_(std::move(compute)),
        prepare_(std::move(prepare)) {}

  /// Distributes `data` across `num_partitions` partitions.
  static Ptr Parallelize(ExecContext& ctx, std::vector<T> data,
                         size_t num_partitions) {
    if (num_partitions == 0) num_partitions = 1;
    auto shared = std::make_shared<std::vector<T>>(std::move(data));
    size_t total = shared->size();
    return std::make_shared<RDD<T>>(
        &ctx, num_partitions, [shared, total, num_partitions](size_t p) {
          size_t base = total / num_partitions;
          size_t extra = total % num_partitions;
          size_t begin = p * base + std::min(p, extra);
          size_t count = base + (p < extra ? 1 : 0);
          return std::vector<T>(shared->begin() + begin,
                                shared->begin() + begin + count);
        });
  }

  size_t num_partitions() const { return num_partitions_; }
  ExecContext& ctx() const { return *ctx_; }

  /// map: narrow, fused with the parent computation.
  template <typename F, typename U = std::invoke_result_t<F, const T&>>
  typename RDD<U>::Ptr Map(F fn) {
    auto self = this->shared_from_this();
    return std::make_shared<RDD<U>>(
        ctx_, num_partitions_,
        [self, fn](size_t p) {
          std::vector<T> input = self->ComputePartition(p);
          std::vector<U> out;
          out.reserve(input.size());
          for (const T& t : input) out.push_back(fn(t));
          return out;
        },
        [self] { self->Prepare(); });
  }

  /// flatMap: narrow; `fn` returns a vector<U> per element.
  template <typename F,
            typename U = typename std::invoke_result_t<F, const T&>::value_type>
  typename RDD<U>::Ptr FlatMap(F fn) {
    auto self = this->shared_from_this();
    return std::make_shared<RDD<U>>(
        ctx_, num_partitions_,
        [self, fn](size_t p) {
          std::vector<T> input = self->ComputePartition(p);
          std::vector<U> out;
          for (const T& t : input) {
            auto expanded = fn(t);
            for (auto& u : expanded) out.push_back(std::move(u));
          }
          return out;
        },
        [self] { self->Prepare(); });
  }

  /// filter: narrow, fused.
  Ptr Filter(std::function<bool(const T&)> pred) {
    auto self = this->shared_from_this();
    return std::make_shared<RDD<T>>(
        ctx_, num_partitions_,
        [self, pred](size_t p) {
          std::vector<T> input = self->ComputePartition(p);
          std::vector<T> out;
          out.reserve(input.size());
          for (const T& t : input) {
            if (pred(t)) out.push_back(t);
          }
          return out;
        },
        [self] { self->Prepare(); });
  }

  /// Marks this RDD for in-memory caching: each partition is computed once
  /// and reused by later actions (Section 2.1's explicit caching).
  Ptr Cache() {
    std::lock_guard<std::mutex> lock(mu_);
    if (cache_.empty()) cache_.resize(num_partitions_);
    cached_ = true;
    return this->shared_from_this();
  }

  /// Action: gathers all elements on the driver.
  std::vector<T> Collect() {
    Prepare();
    std::vector<std::vector<T>> parts(num_partitions_);
    std::vector<std::function<void()>> tasks;
    tasks.reserve(num_partitions_);
    auto self = this->shared_from_this();
    for (size_t p = 0; p < num_partitions_; ++p) {
      tasks.push_back([self, &parts, p] { parts[p] = self->ComputePartition(p); });
    }
    ctx_->pool().RunAll(std::move(tasks));
    std::vector<T> out;
    size_t total = 0;
    for (auto& part : parts) total += part.size();
    out.reserve(total);
    for (auto& part : parts) {
      for (auto& t : part) out.push_back(std::move(t));
    }
    return out;
  }

  /// Action: counts elements without gathering them.
  size_t Count() {
    Prepare();
    std::vector<size_t> counts(num_partitions_, 0);
    std::vector<std::function<void()>> tasks;
    tasks.reserve(num_partitions_);
    auto self = this->shared_from_this();
    for (size_t p = 0; p < num_partitions_; ++p) {
      tasks.push_back(
          [self, &counts, p] { counts[p] = self->ComputePartition(p).size(); });
    }
    ctx_->pool().RunAll(std::move(tasks));
    size_t total = 0;
    for (size_t c : counts) total += c;
    return total;
  }

  /// Computes one partition, honoring the cache. Called from pool tasks for
  /// narrow chains; only actions and Prepare() run driver-side.
  std::vector<T> ComputePartition(size_t p) const {
    if (cached_) {
      {
        std::lock_guard<std::mutex> lock(mu_);
        if (cache_[p].has_value()) return *cache_[p];
      }
      std::vector<T> data = compute_(p);
      std::lock_guard<std::mutex> lock(mu_);
      cache_[p] = data;
      return data;
    }
    return compute_(p);
  }

  /// Resolves shuffle dependencies; must run on the driver before tasks.
  void Prepare() const {
    if (prepare_) prepare_();
  }

 private:
  ExecContext* ctx_;
  size_t num_partitions_;
  std::function<std::vector<T>(size_t)> compute_;
  std::function<void()> prepare_;

  mutable std::mutex mu_;
  bool cached_ = false;
  mutable std::vector<std::optional<std::vector<T>>> cache_;
};

/// reduceByKey for pair RDDs: map-side combine, hash shuffle, reduce-side
/// merge — the wide dependency used by the Figure 9 native-API baseline.
/// `KeyHash`/equality come from std::hash/operator== of K.
template <typename K, typename V>
typename RDD<std::pair<K, V>>::Ptr ReduceByKey(
    typename RDD<std::pair<K, V>>::Ptr input,
    std::function<V(const V&, const V&)> reducer, size_t num_out = 0) {
  ExecContext& ctx = input->ctx();
  if (num_out == 0) num_out = input->num_partitions();

  // State shared with the lazily-prepared child RDD.
  struct ShuffleState {
    std::once_flag once;
    std::vector<std::vector<std::pair<K, V>>> outputs;
  };
  auto state = std::make_shared<ShuffleState>();
  auto do_shuffle = [input, reducer, num_out, state, &ctx] {
    std::call_once(state->once, [&] {
      input->Prepare();
      size_t in_parts = input->num_partitions();
      // Map side: compute each parent partition, combine locally, bucket.
      std::vector<std::vector<std::unordered_map<K, V>>> buckets(in_parts);
      std::vector<std::function<void()>> map_tasks;
      map_tasks.reserve(in_parts);
      for (size_t p = 0; p < in_parts; ++p) {
        map_tasks.push_back([&, p] {
          auto data = input->ComputePartition(p);
          auto& local = buckets[p];
          local.resize(num_out);
          std::hash<K> hasher;
          for (auto& [k, v] : data) {
            size_t b = hasher(k) % num_out;
            auto it = local[b].find(k);
            if (it == local[b].end()) {
              local[b].emplace(k, v);
            } else {
              it->second = reducer(it->second, v);
            }
          }
        });
      }
      ctx.pool().RunAll(std::move(map_tasks));

      // Reduce side: merge buckets.
      state->outputs.resize(num_out);
      std::vector<std::function<void()>> reduce_tasks;
      reduce_tasks.reserve(num_out);
      for (size_t b = 0; b < num_out; ++b) {
        reduce_tasks.push_back([&, b] {
          std::unordered_map<K, V> merged;
          for (auto& local : buckets) {
            for (auto& [k, v] : local[b]) {
              auto it = merged.find(k);
              if (it == merged.end()) {
                merged.emplace(k, std::move(v));
              } else {
                it->second = reducer(it->second, v);
              }
            }
          }
          auto& out = state->outputs[b];
          out.reserve(merged.size());
          for (auto& [k, v] : merged) out.emplace_back(k, std::move(v));
        });
      }
      ctx.pool().RunAll(std::move(reduce_tasks));
    });
  };

  return std::make_shared<RDD<std::pair<K, V>>>(
      &ctx, num_out,
      [state](size_t p) { return state->outputs[p]; }, do_shuffle);
}

}  // namespace ssql

#endif  // SSQL_ENGINE_RDD_H_
