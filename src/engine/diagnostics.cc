#include "engine/diagnostics.h"

#include <filesystem>
#include <sstream>

#include "engine/exec_context.h"
#include "util/log.h"
#include "util/trace.h"

namespace ssql {

namespace {

// One file inside the bundle; failures are logged and skipped so a full
// disk can never turn a diagnostics dump into a second failure.
void WriteBundleFile(const std::string& dir, const std::string& name,
                     const std::string& content) {
  if (content.empty()) return;
  try {
    WriteTextFile((std::filesystem::path(dir) / name).string(), content);
  } catch (const std::exception& e) {
    LogEvent(LogLevel::kWarn, "diag.file_failed",
             {{"file", name}, {"error", e.what()}});
  }
}

}  // namespace

std::string RenderEventsJsonl(const std::vector<EngineEvent>& events) {
  std::ostringstream out;
  for (const EngineEvent& event : events) {
    out << "{\"seq\":" << event.seq << ",\"unix_ms\":" << event.unix_ms
        << ",\"query_id\":" << event.query_id << ",\"kind\":\""
        << EngineEventKindName(event.kind) << "\",\"severity\":\""
        << EventSeverityName(event.severity) << "\",\"value\":" << event.value
        << ",\"detail\":\"" << JsonEscape(event.detail) << "\"}\n";
  }
  return out.str();
}

std::string RenderEngineConfig(const EngineConfig& config) {
  std::ostringstream out;
  out << "num_threads=" << config.num_threads << "\n"
      << "default_parallelism=" << config.default_parallelism << "\n"
      << "broadcast_threshold_bytes=" << config.broadcast_threshold_bytes
      << "\n"
      << "codegen_enabled=" << config.codegen_enabled << "\n"
      << "vectorized_enabled=" << config.vectorized_enabled << "\n"
      << "batch_size=" << config.batch_size << "\n"
      << "pushdown_enabled=" << config.pushdown_enabled << "\n"
      << "join_selection_enabled=" << config.join_selection_enabled << "\n"
      << "operator_fusion_enabled=" << config.operator_fusion_enabled << "\n"
      << "range_join_enabled=" << config.range_join_enabled << "\n"
      << "prefer_sort_merge_join=" << config.prefer_sort_merge_join << "\n"
      << "cbo_filter_selectivity=" << config.cbo_filter_selectivity << "\n"
      << "task_max_retries=" << config.task_max_retries << "\n"
      << "task_retry_backoff_ms=" << config.task_retry_backoff_ms << "\n"
      << "speculation_multiplier=" << config.speculation_multiplier << "\n"
      << "speculation_quantile=" << config.speculation_quantile << "\n"
      << "task_timeout_ms=" << config.task_timeout_ms << "\n"
      << "watchdog_interval_ms=" << config.watchdog_interval_ms << "\n"
      << "stuck_task_timeout_ms=" << config.stuck_task_timeout_ms << "\n"
      << "query_timeout_ms=" << config.query_timeout_ms << "\n"
      << "io_max_retries=" << config.io_max_retries << "\n"
      << "io_retry_backoff_ms=" << config.io_retry_backoff_ms << "\n"
      << "fault_injection_spec=" << config.fault_injection_spec << "\n"
      << "query_memory_limit_bytes=" << config.query_memory_limit_bytes << "\n"
      << "total_memory_limit_bytes=" << config.total_memory_limit_bytes << "\n"
      << "max_concurrent_queries=" << config.max_concurrent_queries << "\n"
      << "admission_timeout_ms=" << config.admission_timeout_ms << "\n"
      << "max_queued_queries=" << config.max_queued_queries << "\n"
      << "spill_disk_limit_bytes=" << config.spill_disk_limit_bytes << "\n"
      << "spill_enabled=" << config.spill_enabled << "\n"
      << "spill_dir=" << config.spill_dir << "\n"
      << "profiling_enabled=" << config.profiling_enabled << "\n"
      << "trace_path=" << config.trace_path << "\n"
      << "slow_query_threshold_ms=" << config.slow_query_threshold_ms << "\n"
      << "log_level=" << config.log_level << "\n"
      << "metrics_path=" << config.metrics_path << "\n"
      << "finished_query_retention=" << config.finished_query_retention << "\n"
      << "event_journal_capacity=" << config.event_journal_capacity << "\n"
      << "metrics_sample_interval_ms=" << config.metrics_sample_interval_ms
      << "\n"
      << "diag_dir=" << config.diag_dir << "\n"
      << "diag_on_failure=" << config.diag_on_failure << "\n";
  return out.str();
}

std::string WriteDiagnosticsBundle(const DiagBundleInput& input) {
  try {
    std::filesystem::create_directories(input.dir);
  } catch (const std::exception& e) {
    LogEvent(LogLevel::kWarn, "diag.bundle_failed",
             {{"dir", input.dir}, {"error", e.what()}});
    return "";
  }

  std::ostringstream manifest;
  manifest << "reason=" << input.reason << "\n"
           << "status=" << input.status << "\n"
           << "query_id=" << input.query_id << "\n"
           << "duration_ms=" << input.duration_ms << "\n"
           << "error_code="
           << (input.error_code.empty() ? "OK" : input.error_code) << "\n"
           << "events=" << input.events.size() << "\n";
  WriteBundleFile(input.dir, "MANIFEST.txt", manifest.str());
  WriteBundleFile(input.dir, "events.jsonl", RenderEventsJsonl(input.events));
  WriteBundleFile(input.dir, "profile.json", input.profile_json);
  WriteBundleFile(input.dir, "plan.txt", input.plan_text);
  WriteBundleFile(input.dir, "metrics.prom", input.metrics_text);
  WriteBundleFile(input.dir, "config.txt", input.config_text);
  WriteBundleFile(input.dir, "error.txt", input.error);
  LogEvent(LogLevel::kInfo, "diag.bundle_written",
           {{"dir", input.dir},
            {"reason", input.reason},
            {"query", input.query_id}});
  return input.dir;
}

}  // namespace ssql
