#include "catalyst/analysis/analyzer.h"

#include <unordered_map>
#include <unordered_set>

#include "catalyst/analysis/type_coercion.h"
#include "catalyst/expr/aggregates.h"
#include "catalyst/expr/complex_types.h"
#include "catalyst/expr/predicates.h"
#include "util/string_util.h"

namespace ssql {

namespace {

/// Resolves a dotted name path against `input` attributes. Matching rules:
/// `col`, `qualifier.col`, and nested struct access `col.field...` /
/// `qualifier.col.field...`. Returns nullptr when no match; throws on
/// ambiguity.
ExprPtr ResolveNameParts(const std::vector<std::string>& parts,
                         const AttributeVector& input) {
  struct Candidate {
    AttributePtr attr;
    size_t consumed;  // how many parts the attribute name itself used
  };
  std::vector<Candidate> candidates;
  for (const auto& attr : input) {
    if (EqualsIgnoreCase(attr->name(), parts[0])) {
      candidates.push_back({attr, 1});
    }
    if (parts.size() >= 2 && !attr->qualifier().empty() &&
        EqualsIgnoreCase(attr->qualifier(), parts[0]) &&
        EqualsIgnoreCase(attr->name(), parts[1])) {
      candidates.push_back({attr, 2});
    }
  }
  if (candidates.empty()) return nullptr;
  if (candidates.size() > 1) {
    // Identical expr-ids are the same column reached twice; dedupe.
    bool all_same = true;
    for (const auto& c : candidates) {
      if (c.attr->expr_id() != candidates[0].attr->expr_id() ||
          c.consumed != candidates[0].consumed) {
        all_same = false;
      }
    }
    if (!all_same) {
      throw AnalysisError("reference '" + JoinStrings(parts, ".") + "' is ambiguous");
    }
  }
  const Candidate& c = candidates[0];
  ExprPtr result = c.attr;
  // Remaining parts are struct field accesses.
  for (size_t i = c.consumed; i < parts.size(); ++i) {
    DataTypePtr t = result->data_type();
    if (t->id() != TypeId::kStruct) {
      throw AnalysisError("field access '." + parts[i] + "' on non-struct type " +
                          t->ToString());
    }
    const auto& st = AsStruct(*t);
    int ordinal = st.FieldIndex(parts[i]);
    if (ordinal < 0) {
      throw AnalysisError("no field '" + parts[i] + "' in " + t->ToString());
    }
    result = GetStructField::Make(result, ordinal, parts[i]);
  }
  return result;
}

/// Input attributes visible to expressions of `plan`: the union of its
/// children's outputs.
AttributeVector InputAttributes(const LogicalPlan& plan) {
  AttributeVector input;
  for (const auto& child : plan.Children()) {
    if (!child->resolved()) continue;
    auto out = child->Output();
    input.insert(input.end(), out.begin(), out.end());
  }
  return input;
}

std::string FormatInputColumns(const AttributeVector& input) {
  std::string s = "[";
  for (size_t i = 0; i < input.size(); ++i) {
    if (i > 0) s += ", ";
    if (!input[i]->qualifier().empty()) s += input[i]->qualifier() + ".";
    s += input[i]->name();
  }
  return s + "]";
}

}  // namespace

Analyzer::Analyzer(Catalog* catalog, FunctionRegistry* registry)
    : catalog_(catalog), registry_(registry), executor_(MakeBatches()) {}

std::vector<RuleBatch> Analyzer::MakeBatches() {
  Catalog* catalog = catalog_;
  FunctionRegistry* registry = registry_;

  PlanRule resolve_relations{
      "ResolveRelations", [catalog](const PlanPtr& plan) -> PlanPtr {
        return plan->TransformUp([catalog](const PlanPtr& p) -> PlanPtr {
          const auto* rel = AsPlan<UnresolvedRelation>(p);
          if (rel == nullptr) return p;
          PlanPtr table = catalog->Lookup(rel->name());
          if (!table) return p;  // CheckAnalysis reports unknown tables
          // Qualify by the last segment of a dotted name ("system.queries"
          // → "queries"), matching how the parser picks default aliases.
          const std::string& name = rel->name();
          const size_t dot = name.find_last_of('.');
          return SubqueryAlias::Make(
              dot == std::string::npos ? name : name.substr(dot + 1), table);
        });
      }};

  PlanRule resolve_star{"ResolveStar", [](const PlanPtr& plan) -> PlanPtr {
    return plan->TransformUp([](const PlanPtr& p) -> PlanPtr {
      const auto* proj = AsPlan<Project>(p);
      if (proj == nullptr) return p;
      bool has_star = false;
      for (const auto& e : proj->projections()) {
        if (As<UnresolvedStar>(e) != nullptr) has_star = true;
      }
      if (!has_star || !proj->child()->resolved()) return p;
      std::vector<NamedExprPtr> expanded;
      for (const auto& e : proj->projections()) {
        const auto* star = As<UnresolvedStar>(e);
        if (star == nullptr) {
          expanded.push_back(std::static_pointer_cast<const NamedExpression>(e));
          continue;
        }
        for (const auto& attr : proj->child()->Output()) {
          if (star->qualifier().empty() ||
              EqualsIgnoreCase(star->qualifier(), attr->qualifier())) {
            expanded.push_back(attr);
          }
        }
      }
      return Project::Make(std::move(expanded), proj->child());
    });
  }};

  // Self-joins reference the same underlying plan twice, so both sides
  // expose identical expression IDs. Re-alias the right side with fresh
  // IDs (preserving names and qualifiers) so references stay unambiguous —
  // Spark's dedupRight.
  PlanRule deduplicate_join_sides{
      "DeduplicateJoinSides", [](const PlanPtr& plan) -> PlanPtr {
        return plan->TransformUp([](const PlanPtr& p) -> PlanPtr {
          const auto* join = AsPlan<Join>(p);
          if (join == nullptr) return p;
          if (!join->left()->resolved() || !join->right()->resolved()) return p;
          std::unordered_set<ExprId> left_ids;
          for (const auto& a : join->left()->Output()) {
            left_ids.insert(a->expr_id());
          }
          bool conflict = false;
          for (const auto& a : join->right()->Output()) {
            if (left_ids.count(a->expr_id()) > 0) conflict = true;
          }
          if (!conflict) return p;
          std::vector<NamedExprPtr> fresh;
          std::unordered_map<ExprId, ExprPtr> remap;
          for (const auto& a : join->right()->Output()) {
            auto alias = Alias::Make(a, a->name(), a->qualifier());
            remap[a->expr_id()] = alias->ToAttribute();
            fresh.push_back(std::move(alias));
          }
          PlanPtr new_right = Project::Make(std::move(fresh), join->right());
          // A condition that already referenced the right side (DataFrame
          // self-joins, IN-subquery rewrites) must follow the re-aliasing.
          ExprPtr condition = join->condition();
          if (condition) {
            condition = condition->TransformUp([&](const ExprPtr& e) -> ExprPtr {
              const auto* attr = As<AttributeReference>(e);
              if (attr == nullptr) return e;
              auto it = remap.find(attr->expr_id());
              return it == remap.end() ? e : it->second;
            });
          }
          return Join::Make(join->left(), new_right, join->join_type(),
                            condition);
        });
      }};

  PlanRule resolve_references{
      "ResolveReferences", [](const PlanPtr& plan) -> PlanPtr {
        return plan->TransformUp([](const PlanPtr& p) -> PlanPtr {
          if (p->Children().empty()) return p;
          AttributeVector input = InputAttributes(*p);
          if (input.empty()) return p;
          return p->MapExpressions([&input](const ExprPtr& e) -> ExprPtr {
            const auto* ua = As<UnresolvedAttribute>(e);
            if (ua == nullptr) return e;
            ExprPtr resolved = ResolveNameParts(ua->parts(), input);
            return resolved ? resolved : e;
          });
        });
      }};

  PlanRule resolve_functions{
      "ResolveFunctions", [registry](const PlanPtr& plan) -> PlanPtr {
        return plan->TransformAllExpressions(
            [registry](const ExprPtr& e) -> ExprPtr {
              const auto* fn = As<UnresolvedFunction>(e);
              if (fn == nullptr) return e;
              for (const auto& arg : fn->Children()) {
                if (!arg->resolved()) return e;
              }
              const FunctionRegistry::Builder* builder =
                  registry->Lookup(fn->name());
              if (builder == nullptr) {
                throw AnalysisError("undefined function '" + fn->name() + "'");
              }
              return (*builder)(fn->Children(), fn->distinct());
            });
      }};

  // SELECT with aggregates but no GROUP BY becomes a global Aggregate.
  PlanRule global_aggregates{
      "GlobalAggregates", [](const PlanPtr& plan) -> PlanPtr {
        return plan->TransformUp([](const PlanPtr& p) -> PlanPtr {
          const auto* proj = AsPlan<Project>(p);
          if (proj == nullptr) return p;
          bool has_agg = false;
          for (const auto& e : proj->projections()) {
            if (e->resolved() && ContainsAggregate(e)) has_agg = true;
          }
          if (!has_agg) return p;
          return Aggregate::Make({}, proj->projections(), proj->child());
        });
      }};

  // HAVING with aggregate functions: materialize the needed aggregates as
  // hidden columns of the Aggregate, filter on them, then project them away.
  PlanRule resolve_having{
      "ResolveHavingAggregates", [](const PlanPtr& plan) -> PlanPtr {
        return plan->TransformUp([](const PlanPtr& p) -> PlanPtr {
          const auto* filter = AsPlan<Filter>(p);
          if (filter == nullptr) return p;
          const auto* agg = AsPlan<Aggregate>(filter->child());
          if (agg == nullptr) return p;
          if (!filter->condition()->resolved() ||
              !ContainsAggregate(filter->condition())) {
            return p;
          }
          std::vector<NamedExprPtr> extended = agg->aggregates();
          std::unordered_map<std::string, AttributePtr> mapping;
          ExprPtr new_cond = filter->condition()->TransformUp(
              [&](const ExprPtr& e) -> ExprPtr {
                if (dynamic_cast<const AggregateFunction*>(e.get()) == nullptr) {
                  return e;
                }
                std::string key = e->ToString();
                auto it = mapping.find(key);
                if (it == mapping.end()) {
                  auto alias = Alias::Make(e, "havingCondition");
                  extended.push_back(alias);
                  it = mapping.emplace(key, alias->ToAttribute()).first;
                }
                return it->second;
              });
          PlanPtr new_agg =
              Aggregate::Make(agg->groupings(), std::move(extended), agg->child());
          PlanPtr new_filter = Filter::Make(new_cond, new_agg);
          // Project back to the original aggregate output.
          std::vector<NamedExprPtr> visible;
          for (const auto& a : agg->aggregates()) {
            visible.push_back(a->ToAttribute());
          }
          return Project::Make(std::move(visible), new_filter);
        });
      }};

  // ORDER BY may reference columns dropped by the SELECT list; resolve
  // them against the Project's child, add them as hidden columns, and
  // re-project the original output above the Sort.
  PlanRule resolve_sort_references{
      "ResolveSortReferences", [](const PlanPtr& plan) -> PlanPtr {
        return plan->TransformUp([](const PlanPtr& p) -> PlanPtr {
          const auto* sort = AsPlan<Sort>(p);
          if (sort == nullptr) return p;
          const auto* proj = AsPlan<Project>(sort->child());
          if (proj == nullptr || !proj->child()->resolved() ||
              !proj->resolved()) {
            return p;
          }
          bool any_unresolved = false;
          for (const auto& o : sort->orders()) {
            if (!o->resolved()) any_unresolved = true;
          }
          if (!any_unresolved) return p;

          AttributeVector child_out = proj->child()->Output();
          AttributeVector hidden;
          bool progress = false;
          std::vector<std::shared_ptr<const SortOrder>> new_orders;
          for (const auto& o : sort->orders()) {
            ExprPtr rewritten = o->TransformUp([&](const ExprPtr& e) -> ExprPtr {
              const auto* ua = As<UnresolvedAttribute>(e);
              if (ua == nullptr) return e;
              ExprPtr resolved = ResolveNameParts(ua->parts(), child_out);
              if (!resolved) return e;
              progress = true;
              AttributeVector refs;
              CollectReferences(resolved, &refs);
              for (const auto& r : refs) {
                bool seen = false;
                for (const auto& h : hidden) {
                  if (h->expr_id() == r->expr_id()) seen = true;
                }
                for (const auto& out : proj->Output()) {
                  if (out->expr_id() == r->expr_id()) seen = true;
                }
                if (!seen) hidden.push_back(r);
              }
              return resolved;
            });
            new_orders.push_back(
                std::static_pointer_cast<const SortOrder>(rewritten));
          }
          if (!progress) return p;
          std::vector<NamedExprPtr> extended = proj->projections();
          for (const auto& h : hidden) extended.push_back(h);
          PlanPtr new_proj = Project::Make(std::move(extended), proj->child());
          PlanPtr new_sort = Sort::Make(std::move(new_orders), new_proj);
          std::vector<NamedExprPtr> visible;
          for (const auto& out : proj->Output()) visible.push_back(out);
          return Project::Make(std::move(visible), new_sort);
        });
      }};

  // ORDER BY may repeat a GROUP BY expression verbatim (ORDER BY
  // substr(s,1,7) over GROUP BY substr(s,1,7)); match it semantically
  // against the aggregate's output expressions and substitute the output
  // attribute.
  PlanRule resolve_sort_over_aggregate{
      "ResolveSortOverAggregate", [registry](const PlanPtr& plan) -> PlanPtr {
        return plan->TransformUp([registry](const PlanPtr& p) -> PlanPtr {
          const auto* sort = AsPlan<Sort>(p);
          if (sort == nullptr) return p;
          const auto* agg = AsPlan<Aggregate>(sort->child());
          if (agg == nullptr || !agg->resolved()) return p;
          bool any_unresolved = false;
          for (const auto& o : sort->orders()) {
            if (!o->resolved()) any_unresolved = true;
          }
          if (!any_unresolved) return p;

          AttributeVector agg_input = agg->child()->Output();
          bool progress = false;
          std::vector<std::shared_ptr<const SortOrder>> new_orders;
          for (const auto& o : sort->orders()) {
            if (o->resolved()) {
              new_orders.push_back(o);
              continue;
            }
            // Resolve the order expression against the aggregate's INPUT,
            // then look for a semantically equal output expression.
            ExprPtr resolved_against_input =
                o->child()->TransformUp([&](const ExprPtr& e) -> ExprPtr {
                  if (const auto* ua = As<UnresolvedAttribute>(e)) {
                    ExprPtr r = ResolveNameParts(ua->parts(), agg_input);
                    return r ? r : e;
                  }
                  if (const auto* fn = As<UnresolvedFunction>(e)) {
                    for (const auto& arg : fn->Children()) {
                      if (!arg->resolved()) return e;
                    }
                    const FunctionRegistry::Builder* builder =
                        registry->Lookup(fn->name());
                    if (builder == nullptr) return e;
                    return (*builder)(fn->Children(), fn->distinct());
                  }
                  return e;
                });
            std::string key = resolved_against_input->ToString();
            ExprPtr substituted;
            for (const auto& out : agg->aggregates()) {
              ExprPtr candidate = out;
              if (const auto* alias = As<Alias>(candidate)) {
                candidate = alias->child();
              }
              if (candidate->ToString() == key) {
                substituted = out->ToAttribute();
                break;
              }
            }
            if (substituted) {
              progress = true;
              new_orders.push_back(SortOrder::Make(substituted, o->ascending()));
            } else {
              new_orders.push_back(o);
            }
          }
          if (!progress) return p;
          return Sort::Make(std::move(new_orders), sort->child());
        });
      }};

  // Uncorrelated IN (SELECT ...) predicates become semi joins; NOT IN
  // becomes an anti join. The subquery is analyzed recursively.
  Analyzer* analyzer = this;
  PlanRule rewrite_in_subquery{
      "RewriteInSubquery", [analyzer](const PlanPtr& plan) -> PlanPtr {
        return plan->TransformUp([analyzer](const PlanPtr& p) -> PlanPtr {
          const auto* filter = AsPlan<Filter>(p);
          if (filter == nullptr || !filter->child()->resolved()) return p;
          bool has_subquery = false;
          filter->condition()->Foreach([&](const Expression& e) {
            if (dynamic_cast<const InSubquery*>(&e) != nullptr) {
              has_subquery = true;
            }
          });
          if (!has_subquery) return p;

          PlanPtr current = filter->child();
          ExprVector remaining;
          for (const auto& conjunct : SplitConjuncts(filter->condition())) {
            const InSubquery* in = As<InSubquery>(conjunct);
            JoinType type = JoinType::kLeftSemi;
            if (in == nullptr) {
              if (const auto* n = As<Not>(conjunct)) {
                in = As<InSubquery>(n->child());
                type = JoinType::kLeftAnti;
              }
            }
            if (in == nullptr) {
              // Subqueries below OR/arithmetic are not supported.
              bool nested = false;
              conjunct->Foreach([&](const Expression& e) {
                if (dynamic_cast<const InSubquery*>(&e) != nullptr) nested = true;
              });
              if (nested) {
                throw AnalysisError(
                    "IN (SELECT ...) is only supported as a top-level "
                    "conjunct of WHERE");
              }
              remaining.push_back(conjunct);
              continue;
            }
            PlanPtr sub = analyzer->Analyze(in->subquery());
            AttributeVector sub_out = sub->Output();
            if (sub_out.size() != 1) {
              throw AnalysisError(
                  "IN subquery must produce exactly one column, got " +
                  std::to_string(sub_out.size()));
            }
            // Re-alias the subquery output with a fresh expression ID so a
            // self-referencing subquery (... FROM orders WHERE x IN
            // (SELECT y FROM orders)) cannot collide with the outer side.
            auto fresh = Alias::Make(sub_out[0], sub_out[0]->name());
            AttributePtr join_key = fresh->ToAttribute();
            sub = Project::Make({std::move(fresh)}, sub);
            ExprPtr cond = EqualTo::Make(in->value(), std::move(join_key));
            current = Join::Make(current, sub, type, std::move(cond));
          }
          ExprPtr rest = CombineConjuncts(remaining);
          return rest ? Filter::Make(rest, current) : current;
        });
      }};

  PlanRule type_coercion{"TypeCoercion", [](const PlanPtr& plan) -> PlanPtr {
    return plan->TransformUp([](const PlanPtr& p) -> PlanPtr {
      ExprVector exprs = p->Expressions();
      if (exprs.empty()) return p;
      // Only coerce once attributes/functions are in place.
      bool changed = false;
      for (auto& e : exprs) {
        ExprPtr coerced = CoerceExpression(e);
        if (coerced.get() != e.get()) {
          e = std::move(coerced);
          changed = true;
        }
      }
      return changed ? p->WithNewExpressions(std::move(exprs)) : p;
    });
  }};

  return {RuleBatch{"Resolution",
                    50,
                    {resolve_relations, deduplicate_join_sides, resolve_star,
                     resolve_references, resolve_functions, global_aggregates,
                     resolve_having, resolve_sort_references,
                     resolve_sort_over_aggregate, rewrite_in_subquery,
                     type_coercion}}};
}

PlanPtr Analyzer::Analyze(const PlanPtr& plan) const {
  PlanPtr analyzed = executor_.Execute(plan);
  CheckAnalysis(analyzed);
  return analyzed;
}

void Analyzer::CheckAnalysis(const PlanPtr& plan) const {
  const Catalog* catalog = catalog_;
  plan->Foreach([catalog, plan](const LogicalPlan& node) {
    if (const auto* rel = AsPlan<UnresolvedRelation>(node)) {
      std::string known;
      for (const auto& n : catalog->TableNames()) {
        if (!known.empty()) known += ", ";
        known += n;
      }
      throw AnalysisError("table not found: '" + rel->name() +
                          "'; known tables: [" + known + "]");
    }
    AttributeVector input;
    for (const auto& child : node.Children()) {
      if (child->resolved()) {
        auto out = child->Output();
        input.insert(input.end(), out.begin(), out.end());
      }
    }
    for (const auto& expr : node.Expressions()) {
      expr->Foreach([&](const Expression& e) {
        if (const auto* ua = dynamic_cast<const UnresolvedAttribute*>(&e)) {
          throw AnalysisError("cannot resolve '" + JoinStrings(ua->parts(), ".") +
                              "' given input columns: " +
                              FormatInputColumns(input));
        }
        if (const auto* uf = dynamic_cast<const UnresolvedFunction*>(&e)) {
          throw AnalysisError("could not resolve function '" + uf->name() + "'");
        }
        if (dynamic_cast<const InSubquery*>(&e) != nullptr) {
          throw AnalysisError(
              "IN (SELECT ...) is only supported in WHERE conjuncts");
        }
      });
    }
    // Union children must agree on arity and types (positional union).
    if (const auto* uni = AsPlan<Union>(node)) {
      auto children = uni->Children();
      if (!children.empty() && children[0]->resolved()) {
        auto first = children[0]->Output();
        for (size_t c = 1; c < children.size(); ++c) {
          if (!children[c]->resolved()) continue;
          auto out = children[c]->Output();
          if (out.size() != first.size()) {
            throw AnalysisError(
                "UNION inputs have different column counts (" +
                std::to_string(first.size()) + " vs " +
                std::to_string(out.size()) + ")");
          }
          for (size_t i = 0; i < out.size(); ++i) {
            if (!out[i]->data_type()->Equals(*first[i]->data_type())) {
              throw AnalysisError("UNION column " + std::to_string(i + 1) +
                                  " has incompatible types: " +
                                  first[i]->data_type()->ToString() + " vs " +
                                  out[i]->data_type()->ToString());
            }
          }
        }
      }
    }
    // Aggregate validity: plain column references must be grouping exprs.
    if (const auto* agg = AsPlan<Aggregate>(node)) {
      std::vector<std::string> grouping_keys;
      grouping_keys.reserve(agg->groupings().size());
      for (const auto& g : agg->groupings()) grouping_keys.push_back(g->ToString());
      for (const auto& out : agg->aggregates()) {
        // Walk down, stopping at aggregate functions and grouping matches.
        std::function<void(const ExprPtr&)> check = [&](const ExprPtr& e) {
          if (dynamic_cast<const AggregateFunction*>(e.get()) != nullptr) return;
          for (const auto& k : grouping_keys) {
            if (e->ToString() == k) return;
          }
          if (const auto* a = As<AttributeReference>(e)) {
            throw AnalysisError(
                "expression '" + a->name() +
                "' is neither in the GROUP BY nor inside an aggregate function");
          }
          for (const auto& c : e->Children()) check(c);
        };
        check(out);
      }
    }
  });

  if (!plan->resolved()) {
    throw AnalysisError("plan could not be fully resolved:\n" +
                        plan->TreeString());
  }
}

}  // namespace ssql
