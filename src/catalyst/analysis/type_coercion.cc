#include "catalyst/analysis/type_coercion.h"

#include <algorithm>

#include "catalyst/expr/arithmetic.h"
#include "catalyst/expr/case_when.h"
#include "catalyst/expr/cast.h"
#include "catalyst/expr/predicates.h"
#include "catalyst/expr/string_ops.h"
#include "types/schema.h"

namespace ssql {

namespace {

int NumericRank(TypeId id) {
  switch (id) {
    case TypeId::kInt32:
      return 1;
    case TypeId::kInt64:
      return 2;
    case TypeId::kDecimal:
      return 3;
    case TypeId::kDouble:
      return 4;
    default:
      return 0;
  }
}

/// Wraps `e` in a cast to `target` unless it already has that type.
ExprPtr CastTo(const ExprPtr& e, const DataTypePtr& target) {
  if (e->data_type()->Equals(*target)) return e;
  return Cast::Make(e, target);
}

}  // namespace

DataTypePtr WidestNumericType(const DataTypePtr& a, const DataTypePtr& b) {
  int ra = NumericRank(a->id());
  int rb = NumericRank(b->id());
  if (ra == 0 || rb == 0) return nullptr;
  if (a->id() == TypeId::kDecimal && b->id() == TypeId::kDecimal) {
    const auto& da = AsDecimal(*a);
    const auto& db = AsDecimal(*b);
    int scale = std::max(da.scale(), db.scale());
    int intd = std::max(da.precision() - da.scale(), db.precision() - db.scale());
    int prec = std::min(Decimal::kMaxLongDigits, intd + scale + 1);
    return DecimalType::Make(prec, scale);
  }
  if (a->id() == TypeId::kDecimal || b->id() == TypeId::kDecimal) {
    const DataTypePtr& other = a->id() == TypeId::kDecimal ? b : a;
    const DataTypePtr& dec = a->id() == TypeId::kDecimal ? a : b;
    if (other->id() == TypeId::kDouble) return DataType::Double();
    // Integer + decimal: widen the decimal's integer digits.
    const auto& d = AsDecimal(*dec);
    int intd = std::max(d.precision() - d.scale(),
                        other->id() == TypeId::kInt64 ? 19 : 10);
    int prec = std::min(Decimal::kMaxLongDigits, intd + d.scale());
    return DecimalType::Make(prec, d.scale());
  }
  return ra >= rb ? a : b;
}

DataTypePtr CommonType(const DataTypePtr& a, const DataTypePtr& b) {
  if (a->Equals(*b)) return a;
  if (a->id() == TypeId::kNull) return b;
  if (b->id() == TypeId::kNull) return a;
  if (DataTypePtr numeric = WidestNumericType(a, b)) return numeric;
  bool a_str = a->id() == TypeId::kString;
  bool b_str = b->id() == TypeId::kString;
  if (a_str && b->IsNumeric()) return DataType::Double();
  if (b_str && a->IsNumeric()) return DataType::Double();
  if (a_str && (b->id() == TypeId::kDate || b->id() == TypeId::kTimestamp)) return b;
  if (b_str && (a->id() == TypeId::kDate || a->id() == TypeId::kTimestamp)) return a;
  if (a->id() == TypeId::kDate && b->id() == TypeId::kTimestamp) return b;
  if (a->id() == TypeId::kTimestamp && b->id() == TypeId::kDate) return a;
  if (a_str && b->id() == TypeId::kBoolean) return b;
  if (b_str && a->id() == TypeId::kBoolean) return a;
  return nullptr;
}

ExprPtr CoerceExpression(const ExprPtr& expr) {
  return expr->TransformUp([](const ExprPtr& e) -> ExprPtr {
    // Only touch nodes whose children are fully resolved.
    for (const auto& c : e->Children()) {
      if (!c->resolved()) return e;
    }

    if (const auto* div = As<Divide>(e)) {
      // SQL division of integers produces double (HiveQL semantics the
      // paper inherits).
      const DataTypePtr& lt = div->left()->data_type();
      const DataTypePtr& rt = div->right()->data_type();
      if (lt->IsIntegral() && rt->IsIntegral()) {
        return Divide::Make(CastTo(div->left(), DataType::Double()),
                            CastTo(div->right(), DataType::Double()));
      }
    }

    if (const auto* arith = As<BinaryArithmetic>(e)) {
      const DataTypePtr& lt = arith->left()->data_type();
      const DataTypePtr& rt = arith->right()->data_type();
      // Allow strings in arithmetic by parsing them as doubles.
      DataTypePtr lt2 = lt->id() == TypeId::kString ? DataType::Double() : lt;
      DataTypePtr rt2 = rt->id() == TypeId::kString ? DataType::Double() : rt;
      if (!lt2->IsNumeric() || !rt2->IsNumeric()) {
        throw AnalysisError("cannot apply '" +
                            static_cast<const BinaryExpression*>(arith)->Symbol() +
                            "' to " + lt->ToString() + " and " + rt->ToString());
      }
      DataTypePtr widest = WidestNumericType(lt2, rt2);
      if (!lt->Equals(*widest) || !rt->Equals(*widest)) {
        ExprVector children = {CastTo(arith->left(), widest),
                               CastTo(arith->right(), widest)};
        return e->WithNewChildren(std::move(children));
      }
      return e;
    }

    if (const auto* cmp = As<BinaryComparison>(e)) {
      const DataTypePtr& lt = cmp->left()->data_type();
      const DataTypePtr& rt = cmp->right()->data_type();
      if (lt->Equals(*rt)) return e;
      DataTypePtr common = CommonType(lt, rt);
      if (!common) {
        throw AnalysisError("cannot compare " + lt->ToString() + " with " +
                            rt->ToString());
      }
      ExprVector children = {CastTo(cmp->left(), common),
                             CastTo(cmp->right(), common)};
      return e->WithNewChildren(std::move(children));
    }

    if (const auto* in = As<In>(e)) {
      ExprVector children = in->Children();
      DataTypePtr common = children[0]->data_type();
      for (size_t i = 1; i < children.size(); ++i) {
        common = CommonType(common, children[i]->data_type());
        if (!common) {
          throw AnalysisError("incompatible types in IN list");
        }
      }
      bool changed = false;
      for (auto& c : children) {
        ExprPtr cast = CastTo(c, common);
        if (cast.get() != c.get()) {
          c = std::move(cast);
          changed = true;
        }
      }
      return changed ? e->WithNewChildren(std::move(children)) : e;
    }

    if (const auto* cw = As<CaseWhen>(e)) {
      ExprVector children = cw->Children();
      size_t n = cw->num_branches();
      // Common type across THEN values and ELSE.
      DataTypePtr common = children[1]->data_type();
      for (size_t i = 1; i < n; ++i) {
        common = CommonType(common, children[2 * i + 1]->data_type());
        if (!common) throw AnalysisError("incompatible CASE branch types");
      }
      if (cw->has_else()) {
        common = CommonType(common, children.back()->data_type());
        if (!common) throw AnalysisError("incompatible CASE branch types");
      }
      bool changed = false;
      for (size_t i = 0; i < n; ++i) {
        ExprPtr cast = CastTo(children[2 * i + 1], common);
        if (cast.get() != children[2 * i + 1].get()) {
          children[2 * i + 1] = std::move(cast);
          changed = true;
        }
      }
      if (cw->has_else()) {
        ExprPtr cast = CastTo(children.back(), common);
        if (cast.get() != children.back().get()) {
          children.back() = std::move(cast);
          changed = true;
        }
      }
      return changed ? CaseWhen::Make(std::move(children), cw->has_else()) : e;
    }

    // String-consuming expressions: allow any atomic input via cast.
    auto coerce_string_children = [&](const ExprPtr& node) -> ExprPtr {
      ExprVector children = node->Children();
      bool changed = false;
      for (auto& c : children) {
        if (c->data_type()->id() != TypeId::kString &&
            c->data_type()->IsAtomic()) {
          c = CastTo(c, DataType::String());
          changed = true;
        }
      }
      return changed ? node->WithNewChildren(std::move(children)) : node;
    };
    if (As<Like>(e) || As<Upper>(e) || As<Lower>(e) || As<Concat>(e) ||
        As<StringTrim>(e) || As<StringLength>(e) || As<StartsWith>(e) ||
        As<EndsWith>(e) || As<StringContains>(e)) {
      return coerce_string_children(e);
    }

    return e;
  });
}

}  // namespace ssql
