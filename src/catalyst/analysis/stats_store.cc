#include "catalyst/analysis/stats_store.h"

#include <utility>

#include "util/string_util.h"

namespace ssql {

void StatsStore::Put(const std::string& table, TableStats stats,
                     std::shared_ptr<const SourceRelation> source) {
  Entry entry;
  entry.source_name = source ? source->name() : "";
  entry.source = std::move(source);
  entry.stats = std::make_shared<const TableStats>(std::move(stats));
  std::lock_guard<std::mutex> lock(mu_);
  entries_[ToLower(table)] = std::move(entry);
}

std::shared_ptr<const TableStats> StatsStore::Lookup(
    const std::string& table) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(ToLower(table));
  return it == entries_.end() ? nullptr : it->second.stats;
}

std::shared_ptr<const TableStats> StatsStore::LookupBySource(
    const SourceRelation* source) const {
  if (source == nullptr) return nullptr;
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [name, entry] : entries_) {
    if (entry.stats->stale) continue;
    // The weak_ptr both identifies the source and proves it is still the
    // live relation we analyzed — once the catalog drops its plan, the
    // pointer may be reused by a new table and must not match.
    std::shared_ptr<const SourceRelation> held = entry.source.lock();
    if (held && held.get() == source) return entry.stats;
  }
  return nullptr;
}

void StatsStore::MarkStale(const std::string& table) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(ToLower(table));
  if (it == entries_.end() || it->second.stats->stale) return;
  auto copy = std::make_shared<TableStats>(*it->second.stats);
  copy->stale = true;
  it->second.stats = std::move(copy);
}

int StatsStore::MarkStaleBySourceName(const std::string& source_name) {
  if (source_name.empty()) return 0;
  std::lock_guard<std::mutex> lock(mu_);
  int invalidated = 0;
  for (auto& [name, entry] : entries_) {
    if (entry.source_name != source_name || entry.stats->stale) continue;
    auto copy = std::make_shared<TableStats>(*entry.stats);
    copy->stale = true;
    entry.stats = std::move(copy);
    ++invalidated;
  }
  return invalidated;
}

void StatsStore::Remove(const std::string& table) {
  std::lock_guard<std::mutex> lock(mu_);
  entries_.erase(ToLower(table));
}

std::vector<std::shared_ptr<const TableStats>> StatsStore::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::shared_ptr<const TableStats>> out;
  out.reserve(entries_.size());
  for (const auto& [name, entry] : entries_) out.push_back(entry.stats);
  return out;
}

}  // namespace ssql
