#ifndef SSQL_CATALYST_ANALYSIS_FUNCTION_REGISTRY_H_
#define SSQL_CATALYST_ANALYSIS_FUNCTION_REGISTRY_H_

#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "catalyst/expr/expression.h"
#include "catalyst/expr/udf_expr.h"

namespace ssql {

/// Resolves function names to expression builders: the built-in scalar and
/// aggregate functions plus inline-registered UDFs (Section 3.7). UDF
/// registration is just another entry here, so a UDF is usable from both
/// the DataFrame DSL and SQL (including, in the paper, via JDBC/ODBC).
class FunctionRegistry {
 public:
  /// Builds an expression from resolved argument expressions.
  /// `distinct` is set for e.g. COUNT(DISTINCT x).
  using Builder = std::function<ExprPtr(ExprVector args, bool distinct)>;

  FunctionRegistry();

  /// Registers a function builder (replaces any existing entry).
  void Register(const std::string& name, Builder builder);

  /// Registers a scalar UDF with fixed return type.
  void RegisterUdf(const std::string& name, DataTypePtr return_type,
                   ScalarUDF::Body body, bool deterministic = true);

  /// Looks up a builder; nullptr if unknown. Case-insensitive.
  const Builder* Lookup(const std::string& name) const;

  std::vector<std::string> FunctionNames() const;

 private:
  void RegisterBuiltins();

  mutable std::mutex mu_;
  std::map<std::string, Builder> builders_;  // keys lower-cased
};

}  // namespace ssql

#endif  // SSQL_CATALYST_ANALYSIS_FUNCTION_REGISTRY_H_
