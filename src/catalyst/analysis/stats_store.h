#ifndef SSQL_CATALYST_ANALYSIS_STATS_STORE_H_
#define SSQL_CATALYST_ANALYSIS_STATS_STORE_H_

#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "catalyst/plan/logical_plan.h"
#include "types/value.h"

namespace ssql {

/// Per-column statistics computed by ANALYZE TABLE ... FOR COLUMNS: the
/// inputs the cost model needs for selectivity and join-cardinality
/// estimation (null fraction, NDV from a HyperLogLog sketch, min/max for
/// range interpolation) plus a log2-bucketed value histogram sharing
/// HistogramMetric's bucket layout (bucket i counts non-null numeric values
/// <= 2^i; negatives clamp to bucket 0; empty for non-numeric columns).
struct ColumnStats {
  std::string column;      // field name as analyzed (original case)
  int64_t rows = 0;        // table row count at analyze time
  int64_t null_count = 0;
  int64_t ndv = 0;         // HLL-estimated distinct non-null values
  Value min;               // null Value when the column was all-null
  Value max;
  std::vector<int64_t> histogram;  // HistogramMetric::kNumBuckets entries

  double NullFraction() const {
    return rows == 0 ? 0.0
                     : static_cast<double>(null_count) /
                           static_cast<double>(rows);
  }
};

/// Table-level statistics recorded by ANALYZE TABLE (Section 4.3.3's
/// missing cardinality input; Calcite-style CBO substrate). `stale` flips
/// when the table is re-registered under the same name or its backing file
/// is rewritten through the write path — stale stats stay visible in
/// system.table_stats (flagged) but are never used for estimation.
struct TableStats {
  std::string table;  // catalog name as analyzed (original case)
  int64_t row_count = 0;
  int64_t size_bytes = 0;
  int64_t analyzed_at_unix_ms = 0;
  bool stale = false;
  std::map<std::string, ColumnStats> columns;  // keyed by lower-cased name
};

/// Catalog-attached store of ANALYZE TABLE results. Entries are keyed by
/// lower-cased table name for the system.table_stats view and additionally
/// carry the identity of the SourceRelation that was scanned, so the cost
/// model can find fresh stats for a LogicalRelation without knowing what
/// the table is called (column pruning copies the relation node but shares
/// the source). Snapshots are copy-on-write shared_ptrs: MarkStale swaps in
/// a flagged copy instead of mutating, so concurrently running planners
/// read a consistent TableStats without locks.
class StatsStore {
 public:
  /// Installs (or replaces) stats for `table`. `source` is the scanned
  /// relation's identity when the table is a plain data source scan (null
  /// for views — their stats are visible but not used for estimation).
  void Put(const std::string& table, TableStats stats,
           std::shared_ptr<const SourceRelation> source);

  /// Stats recorded for `table` (fresh or stale); null if never analyzed
  /// or dropped.
  std::shared_ptr<const TableStats> Lookup(const std::string& table) const;

  /// Fresh (non-stale) stats whose recorded identity is `source`; null
  /// otherwise. The cost-model entry point.
  std::shared_ptr<const TableStats> LookupBySource(
      const SourceRelation* source) const;

  /// Marks `table`'s stats stale (no-op when absent). Called by the catalog
  /// when a name is re-registered.
  void MarkStale(const std::string& table);

  /// Marks stale every entry whose recorded source display name matches
  /// `source_name` (e.g. "csv:/tmp/users.csv") — the write-path hook: a
  /// DataFrame.Save over a file invalidates stats of any table backed by
  /// that file. Returns the number of entries invalidated.
  int MarkStaleBySourceName(const std::string& source_name);

  /// Removes `table`'s stats entirely (table dropped).
  void Remove(const std::string& table);

  /// All entries, sorted by table name — the system.table_stats /
  /// system.column_stats snapshot.
  std::vector<std::shared_ptr<const TableStats>> Snapshot() const;

 private:
  struct Entry {
    std::shared_ptr<const TableStats> stats;
    std::weak_ptr<const SourceRelation> source;  // empty for views
    std::string source_name;                     // "" for views
  };

  mutable std::mutex mu_;
  std::map<std::string, Entry> entries_;  // keys lower-cased
};

}  // namespace ssql

#endif  // SSQL_CATALYST_ANALYSIS_STATS_STORE_H_
