#ifndef SSQL_CATALYST_ANALYSIS_ANALYZER_H_
#define SSQL_CATALYST_ANALYSIS_ANALYZER_H_

#include "catalyst/analysis/catalog.h"
#include "catalyst/analysis/function_registry.h"
#include "catalyst/tree/rule_executor.h"

namespace ssql {

/// The analysis phase (Section 4.3.1): turns an unresolved logical plan —
/// from the SQL parser or the DataFrame API — into a resolved one by
/// looking up relations in the Catalog, binding named attributes to the
/// children's outputs (assigning unique expression IDs), resolving
/// functions against the registry, and coercing types. Runs eagerly when a
/// DataFrame is constructed, so errors surface immediately (Section 3.4).
class Analyzer {
 public:
  Analyzer(Catalog* catalog, FunctionRegistry* registry);

  /// Returns the fully resolved plan or throws AnalysisError.
  PlanPtr Analyze(const PlanPtr& plan) const;

  /// Validates a plan that claims to be resolved; throws AnalysisError
  /// with a user-actionable message otherwise. Public for tests.
  void CheckAnalysis(const PlanPtr& plan) const;

 private:
  std::vector<RuleBatch> MakeBatches();

  Catalog* catalog_;
  FunctionRegistry* registry_;
  RuleExecutor executor_;
};

}  // namespace ssql

#endif  // SSQL_CATALYST_ANALYSIS_ANALYZER_H_
