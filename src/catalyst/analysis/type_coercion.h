#ifndef SSQL_CATALYST_ANALYSIS_TYPE_COERCION_H_
#define SSQL_CATALYST_ANALYSIS_TYPE_COERCION_H_

#include "catalyst/expr/expression.h"

namespace ssql {

/// Implicit type widening & coercion (Section 4.3.1, "propagating and
/// coercing types through expressions": we cannot know the type of
/// 1 + col until col is resolved and subexpressions possibly cast").

/// Widest common numeric type under int < bigint < decimal < double.
/// Returns nullptr if either input is non-numeric.
DataTypePtr WidestNumericType(const DataTypePtr& a, const DataTypePtr& b);

/// Common type for comparisons / IN / CASE branches. Beyond numerics:
/// string vs numeric compares numerically; string vs date/timestamp parses
/// the string; null type adopts the other side. Returns nullptr when the
/// types cannot be reconciled.
DataTypePtr CommonType(const DataTypePtr& a, const DataTypePtr& b);

/// The bottom-up expression rewrite inserting implicit casts. Applied to
/// every plan node by the analyzer's type-coercion rule; idempotent, so it
/// composes with fixed-point execution. Returns the input pointer when no
/// coercion is needed.
ExprPtr CoerceExpression(const ExprPtr& expr);

}  // namespace ssql

#endif  // SSQL_CATALYST_ANALYSIS_TYPE_COERCION_H_
