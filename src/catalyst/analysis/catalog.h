#ifndef SSQL_CATALYST_ANALYSIS_CATALOG_H_
#define SSQL_CATALYST_ANALYSIS_CATALOG_H_

#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "catalyst/analysis/stats_store.h"
#include "catalyst/plan/logical_plan.h"

namespace ssql {

/// Tracks the tables visible to the analyzer (Section 4.3.1). Temporary
/// tables are *unmaterialized views*: registering a DataFrame stores its
/// logical plan, so optimization happens across SQL and the original
/// DataFrame expressions (Section 3.3). Data source tables are stored the
/// same way, as LogicalRelation plans.
class Catalog {
 public:
  /// Registers (or replaces) a temporary table backed by `plan`. Names
  /// under the reserved `system.` namespace are rejected with
  /// AnalysisError — those tables are engine-owned (RegisterSystemTable).
  void RegisterTable(const std::string& name, PlanPtr plan);

  /// Registers an engine-owned virtual table; the only way to put a plan
  /// under the reserved `system.` namespace.
  void RegisterSystemTable(const std::string& name, PlanPtr plan);

  /// Drops a table; no-op if absent. `system.` tables cannot be dropped.
  void DropTable(const std::string& name);

  /// Looks up a table plan; returns nullptr if unknown. Lookup is
  /// case-insensitive.
  PlanPtr Lookup(const std::string& name) const;

  /// All registered table names (sorted), for error messages and tooling.
  std::vector<std::string> TableNames() const;

  /// Registers a user-defined type by name (Section 4.4.2).
  void RegisterUdt(std::shared_ptr<const UserDefinedType> udt);
  std::shared_ptr<const UserDefinedType> LookupUdt(const std::string& name) const;

  /// ANALYZE TABLE statistics for the tables in this catalog. Re-registering
  /// a name marks its stats stale; dropping removes them.
  StatsStore& stats() { return stats_; }
  const StatsStore& stats() const { return stats_; }

 private:
  StatsStore stats_;
  mutable std::mutex mu_;
  std::map<std::string, PlanPtr> tables_;  // keys lower-cased
  std::map<std::string, std::shared_ptr<const UserDefinedType>> udts_;
};

}  // namespace ssql

#endif  // SSQL_CATALYST_ANALYSIS_CATALOG_H_
