#include "catalyst/analysis/function_registry.h"

#include "catalyst/expr/aggregates.h"
#include "catalyst/expr/arithmetic.h"
#include "catalyst/expr/case_when.h"
#include "catalyst/expr/cast.h"
#include "catalyst/expr/complex_types.h"
#include "catalyst/expr/literal.h"
#include "catalyst/expr/string_ops.h"
#include "util/string_util.h"

namespace ssql {

namespace {

void RequireArity(const std::string& name, const ExprVector& args, size_t n) {
  if (args.size() != n) {
    throw AnalysisError("function " + name + " expects " + std::to_string(n) +
                        " argument(s), got " + std::to_string(args.size()));
  }
}

}  // namespace

FunctionRegistry::FunctionRegistry() { RegisterBuiltins(); }

void FunctionRegistry::Register(const std::string& name, Builder builder) {
  std::lock_guard<std::mutex> lock(mu_);
  builders_[ToLower(name)] = std::move(builder);
}

void FunctionRegistry::RegisterUdf(const std::string& name,
                                   DataTypePtr return_type, ScalarUDF::Body body,
                                   bool deterministic) {
  auto shared_body = std::make_shared<const ScalarUDF::Body>(std::move(body));
  Register(name, [name, return_type, shared_body, deterministic](
                     ExprVector args, bool) -> ExprPtr {
    return std::make_shared<ScalarUDF>(name, std::move(args), return_type,
                                       shared_body, deterministic);
  });
}

const FunctionRegistry::Builder* FunctionRegistry::Lookup(
    const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = builders_.find(ToLower(name));
  return it == builders_.end() ? nullptr : &it->second;
}

std::vector<std::string> FunctionRegistry::FunctionNames() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> names;
  names.reserve(builders_.size());
  for (const auto& [name, b] : builders_) names.push_back(name);
  return names;
}

void FunctionRegistry::RegisterBuiltins() {
  builders_["count"] = [](ExprVector args, bool distinct) -> ExprPtr {
    if (distinct) {
      RequireArity("count", args, 1);
      return CountDistinct::Make(args[0]);
    }
    return Count::Make(std::move(args));
  };
  builders_["sum"] = [](ExprVector args, bool) -> ExprPtr {
    RequireArity("sum", args, 1);
    return Sum::Make(args[0]);
  };
  builders_["avg"] = [](ExprVector args, bool) -> ExprPtr {
    RequireArity("avg", args, 1);
    return Average::Make(args[0]);
  };
  builders_["min"] = [](ExprVector args, bool) -> ExprPtr {
    RequireArity("min", args, 1);
    return MinMax::Min(args[0]);
  };
  builders_["max"] = [](ExprVector args, bool) -> ExprPtr {
    RequireArity("max", args, 1);
    return MinMax::Max(args[0]);
  };
  builders_["abs"] = [](ExprVector args, bool) -> ExprPtr {
    RequireArity("abs", args, 1);
    return Abs::Make(args[0]);
  };
  builders_["upper"] = [](ExprVector args, bool) -> ExprPtr {
    RequireArity("upper", args, 1);
    return Upper::Make(args[0]);
  };
  builders_["lower"] = [](ExprVector args, bool) -> ExprPtr {
    RequireArity("lower", args, 1);
    return Lower::Make(args[0]);
  };
  auto substring = [](ExprVector args, bool) -> ExprPtr {
    if (args.size() == 2) {
      // SUBSTR(s, pos): to end of string.
      args.push_back(Literal::Make(Value(int32_t{1 << 30}), DataType::Int32()));
    }
    RequireArity("substring", args, 3);
    return Substring::Make(args[0], args[1], args[2]);
  };
  builders_["substring"] = substring;
  builders_["substr"] = substring;
  builders_["length"] = [](ExprVector args, bool) -> ExprPtr {
    RequireArity("length", args, 1);
    return StringLength::Make(args[0]);
  };
  builders_["concat"] = [](ExprVector args, bool) -> ExprPtr {
    return Concat::Make(std::move(args));
  };
  builders_["trim"] = [](ExprVector args, bool) -> ExprPtr {
    RequireArity("trim", args, 1);
    return StringTrim::Make(args[0]);
  };
  builders_["split"] = [](ExprVector args, bool) -> ExprPtr {
    RequireArity("split", args, 2);
    return SplitString::Make(args[0], args[1]);
  };
  builders_["size"] = [](ExprVector args, bool) -> ExprPtr {
    RequireArity("size", args, 1);
    return SizeOf::Make(args[0]);
  };
  builders_["array_contains"] = [](ExprVector args, bool) -> ExprPtr {
    RequireArity("array_contains", args, 2);
    return ArrayContains::Make(args[0], args[1]);
  };
  builders_["coalesce"] = [](ExprVector args, bool) -> ExprPtr {
    if (args.empty()) throw AnalysisError("coalesce expects arguments");
    return Coalesce::Make(std::move(args));
  };
  builders_["if"] = [](ExprVector args, bool) -> ExprPtr {
    RequireArity("if", args, 3);
    return CaseWhen::If(args[0], args[1], args[2]);
  };
}

}  // namespace ssql
