#include "catalyst/analysis/catalog.h"

#include "util/string_util.h"

namespace ssql {

void Catalog::RegisterTable(const std::string& name, PlanPtr plan) {
  std::lock_guard<std::mutex> lock(mu_);
  tables_[ToLower(name)] = std::move(plan);
}

void Catalog::DropTable(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  tables_.erase(ToLower(name));
}

PlanPtr Catalog::Lookup(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = tables_.find(ToLower(name));
  return it == tables_.end() ? nullptr : it->second;
}

std::vector<std::string> Catalog::TableNames() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> names;
  names.reserve(tables_.size());
  for (const auto& [name, plan] : tables_) names.push_back(name);
  return names;
}

void Catalog::RegisterUdt(std::shared_ptr<const UserDefinedType> udt) {
  std::lock_guard<std::mutex> lock(mu_);
  udts_[ToLower(udt->name())] = std::move(udt);
}

std::shared_ptr<const UserDefinedType> Catalog::LookupUdt(
    const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = udts_.find(ToLower(name));
  return it == udts_.end() ? nullptr : it->second;
}

}  // namespace ssql
