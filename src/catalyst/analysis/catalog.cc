#include "catalyst/analysis/catalog.h"

#include "util/status.h"
#include "util/string_util.h"

namespace ssql {

namespace {

bool IsSystemName(const std::string& lower) {
  return lower.rfind("system.", 0) == 0;
}

}  // namespace

void Catalog::RegisterTable(const std::string& name, PlanPtr plan) {
  std::lock_guard<std::mutex> lock(mu_);
  const std::string key = ToLower(name);
  if (IsSystemName(key)) {
    throw AnalysisError("cannot register table '" + name +
                        "': the system. namespace is reserved for engine "
                        "virtual tables");
  }
  tables_[key] = std::move(plan);
  // The plan under this name just changed; any stats analyzed against the
  // previous plan no longer describe what queries will scan.
  stats_.MarkStale(key);
}

void Catalog::RegisterSystemTable(const std::string& name, PlanPtr plan) {
  std::lock_guard<std::mutex> lock(mu_);
  tables_[ToLower(name)] = std::move(plan);
}

void Catalog::DropTable(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  const std::string key = ToLower(name);
  if (IsSystemName(key)) {
    throw AnalysisError("cannot drop '" + name +
                        "': system tables are engine-owned");
  }
  tables_.erase(key);
  stats_.Remove(key);
}

PlanPtr Catalog::Lookup(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = tables_.find(ToLower(name));
  return it == tables_.end() ? nullptr : it->second;
}

std::vector<std::string> Catalog::TableNames() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> names;
  names.reserve(tables_.size());
  for (const auto& [name, plan] : tables_) names.push_back(name);
  return names;
}

void Catalog::RegisterUdt(std::shared_ptr<const UserDefinedType> udt) {
  std::lock_guard<std::mutex> lock(mu_);
  udts_[ToLower(udt->name())] = std::move(udt);
}

std::shared_ptr<const UserDefinedType> Catalog::LookupUdt(
    const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = udts_.find(ToLower(name));
  return it == udts_.end() ? nullptr : it->second;
}

}  // namespace ssql
