#ifndef SSQL_CATALYST_PLANNER_PLANNER_H_
#define SSQL_CATALYST_PLANNER_PLANNER_H_

#include "catalyst/plan/logical_plan.h"
#include "engine/exec_context.h"
#include "exec/physical_plan.h"

namespace ssql {

/// The physical planning phase (Section 4.3.3): converts an optimized
/// logical plan into physical operators matching the execution engine.
/// Join selection is cost-based — relations estimated below the broadcast
/// threshold get a broadcast hash join; the Section 7.2 rule plans an
/// interval-tree join for range-overlap predicates; everything else is
/// rule-based, including the fusion of adjacent projections/filters into
/// one operator ("pipelining projections or filters into one Spark map
/// operation").
class PhysicalPlanner {
 public:
  explicit PhysicalPlanner(const EngineConfig& config) : config_(config) {}

  /// Plans an optimized, resolved logical plan. Throws on unsupported
  /// shapes (e.g. full outer non-equi joins). When `decisions` is non-null
  /// it receives one human-readable line per strategy choice made (join
  /// algorithm picked, size estimate vs broadcast threshold, ...), the
  /// material EXPLAIN EXTENDED prints as "Join Selection".
  PhysPtr Plan(const PlanPtr& logical,
               std::vector<std::string>* decisions = nullptr) const;

 private:
  PhysPtr PlanNode(const PlanPtr& plan) const;
  PhysPtr PlanJoin(const Join& join) const;
  PhysPtr PlanAggregate(const Aggregate& agg) const;
  void Note(const std::string& line) const;

  EngineConfig config_;
  // Valid only during a Plan() call; planning is single-threaded.
  mutable std::vector<std::string>* decisions_ = nullptr;
};

}  // namespace ssql

#endif  // SSQL_CATALYST_PLANNER_PLANNER_H_
