#ifndef SSQL_CATALYST_PLANNER_PLANNER_H_
#define SSQL_CATALYST_PLANNER_PLANNER_H_

#include <set>

#include "catalyst/analysis/stats_store.h"
#include "catalyst/plan/logical_plan.h"
#include "engine/exec_context.h"
#include "exec/physical_plan.h"

namespace ssql {

/// The physical planning phase (Section 4.3.3): converts an optimized
/// logical plan into physical operators matching the execution engine.
/// Join selection is cost-based — relations estimated below the broadcast
/// threshold get a broadcast hash join; the Section 7.2 rule plans an
/// interval-tree join for range-overlap predicates; everything else is
/// rule-based, including the fusion of adjacent projections/filters into
/// one operator ("pipelining projections or filters into one Spark map
/// operation").
class PhysicalPlanner {
 public:
  /// `stats` (optional, unowned, must outlive the planner) supplies ANALYZE
  /// TABLE statistics: cardinality estimates stamped on physical nodes and
  /// the broadcast-side size then carry analyzed-stats provenance instead of
  /// the byte heuristic.
  explicit PhysicalPlanner(const EngineConfig& config,
                           const StatsStore* stats = nullptr)
      : config_(config), stats_(stats) {}

  /// Plans an optimized, resolved logical plan. Throws on unsupported
  /// shapes (e.g. full outer non-equi joins). When `decisions` is non-null
  /// it receives one human-readable line per strategy choice made (join
  /// algorithm picked, size estimate vs broadcast threshold, ...), the
  /// material EXPLAIN EXTENDED prints as "Join Selection".
  PhysPtr Plan(const PlanPtr& logical,
               std::vector<std::string>* decisions = nullptr) const;

 private:
  /// Plans `plan` and stamps the subtree with its cardinality estimate.
  PhysPtr PlanNode(const PlanPtr& plan) const;
  /// The strategy dispatch PlanNode wraps.
  PhysPtr PlanNodeImpl(const PlanPtr& plan) const;
  PhysPtr PlanJoin(const Join& join) const;
  PhysPtr PlanAggregate(const Aggregate& agg) const;
  void Note(const std::string& line) const;
  /// Stamps `est` on every node of the subtree not already stamped by a
  /// nested PlanNode call — so intermediates a strategy inserts (partial
  /// aggregates, exchanges) inherit their logical node's estimate.
  void Annotate(const PhysPtr& node, const CardinalityEstimate& est) const;
  /// The stats-aware estimate for `plan` under this planner's config.
  PlanEstimate Estimate(const PlanPtr& plan) const;

  EngineConfig config_;
  const StatsStore* stats_ = nullptr;
  // Valid only during a Plan() call; planning is single-threaded.
  mutable std::vector<std::string>* decisions_ = nullptr;
  mutable std::set<const PhysicalPlan*> annotated_;
};

}  // namespace ssql

#endif  // SSQL_CATALYST_PLANNER_PLANNER_H_
