#include "catalyst/planner/planner.h"

#include <algorithm>

#include "catalyst/expr/predicates.h"
#include "catalyst/planner/cost_model.h"
#include "exec/aggregate_exec.h"
#include "exec/exchange_exec.h"
#include "exec/interval_join_exec.h"
#include "exec/join_exec.h"
#include "exec/scan_exec.h"
#include "exec/sort_limit_exec.h"

namespace ssql {

namespace {

/// A detected range-overlap pattern (Section 7.2).
struct RangeJoinPattern {
  bool interval_on_left;
  ExprPtr start;
  ExprPtr end;
  ExprPtr point;
  ExprVector residual;
};

/// Normalizes a conjunct to a strict "a < b" pair, if it is one.
bool AsLessThan(const ExprPtr& c, ExprPtr* a, ExprPtr* b) {
  if (const auto* lt = As<LessThan>(c)) {
    *a = lt->left();
    *b = lt->right();
    return true;
  }
  if (const auto* gt = As<GreaterThan>(c)) {
    *a = gt->right();
    *b = gt->left();
    return true;
  }
  return false;
}

std::optional<RangeJoinPattern> DetectRangeJoin(const ExprVector& conjuncts,
                                                const AttributeVector& left_out,
                                                const AttributeVector& right_out) {
  // Look for X < Y and Y < Z where {X, Z} reference one side only and Y
  // references the other side only.
  struct Less {
    ExprPtr a;
    ExprPtr b;
    size_t index;
  };
  std::vector<Less> lesses;
  for (size_t i = 0; i < conjuncts.size(); ++i) {
    ExprPtr a, b;
    if (AsLessThan(conjuncts[i], &a, &b)) lesses.push_back({a, b, i});
  }
  auto side_of = [&](const ExprPtr& e) -> int {
    // 0 = left only, 1 = right only, -1 = mixed/neither.
    bool l = ReferencesSubsetOf(e, left_out);
    bool r = ReferencesSubsetOf(e, right_out);
    AttributeVector refs;
    CollectReferences(e, &refs);
    if (refs.empty()) return -1;
    if (l && !r) return 0;
    if (r && !l) return 1;
    return -1;
  };
  for (const Less& first : lesses) {
    for (const Less& second : lesses) {
      if (first.index == second.index) continue;
      // first: X < Y, second: Y' < Z with Y == Y'.
      if (!first.b->Equals(*second.a)) continue;
      int sx = side_of(first.a);
      int sy = side_of(first.b);
      int sz = side_of(second.b);
      if (sx < 0 || sy < 0 || sz < 0) continue;
      if (sx != sz || sx == sy) continue;
      RangeJoinPattern p;
      p.interval_on_left = sx == 0;
      p.start = first.a;
      p.end = second.b;
      p.point = first.b;
      for (size_t i = 0; i < conjuncts.size(); ++i) {
        if (i != first.index && i != second.index) {
          p.residual.push_back(conjuncts[i]);
        }
      }
      return p;
    }
  }
  return std::nullopt;
}

}  // namespace

PhysPtr PhysicalPlanner::Plan(const PlanPtr& logical,
                              std::vector<std::string>* decisions) const {
  decisions_ = decisions;
  annotated_.clear();
  try {
    PhysPtr out = PlanNode(logical);
    // Stamp which operators will run vectorized, so EXPLAIN shows the
    // row/batch boundaries of the final plan (same single-writer rule as
    // Annotate: stamped once, before execution). The decision mirrors the
    // runtime dispatch: a node runs batched when a batched parent pulls it
    // or it prefers batch execution itself (natively-columnar input).
    const bool vectorized = config_.vectorized_enabled;
    std::function<void(const PhysPtr&, bool)> stamp =
        [&stamp, vectorized](const PhysPtr& node, bool parent_batched) {
          const bool batched =
              vectorized && node->WouldRunBatched(parent_batched);
          const_cast<PhysicalPlan&>(*node).set_runs_batched(batched);
          const std::vector<PhysPtr> children = node->Children();
          for (size_t i = 0; i < children.size(); ++i) {
            stamp(children[i], batched && node->PullsChildBatched(i));
          }
        };
    stamp(out, /*parent_batched=*/false);
    decisions_ = nullptr;
    annotated_.clear();
    return out;
  } catch (...) {
    decisions_ = nullptr;
    annotated_.clear();
    throw;
  }
}

void PhysicalPlanner::Note(const std::string& line) const {
  if (decisions_ != nullptr) decisions_->push_back(line);
}

PlanEstimate PhysicalPlanner::Estimate(const PlanPtr& plan) const {
  return EstimatePlan(plan, stats_, config_.cbo_filter_selectivity);
}

void PhysicalPlanner::Annotate(const PhysPtr& node,
                               const CardinalityEstimate& est) const {
  if (!annotated_.insert(node.get()).second) return;
  // Physical nodes are shared as const everywhere else; the planner is the
  // single writer and stamps each node exactly once, before execution.
  const_cast<PhysicalPlan*>(node.get())->set_estimate(est);
  for (const PhysPtr& child : node->Children()) Annotate(child, est);
}

PhysPtr PhysicalPlanner::PlanNode(const PlanPtr& plan) const {
  PhysPtr out = PlanNodeImpl(plan);
  PlanEstimate est = Estimate(plan);
  CardinalityEstimate card;
  if (est.rows) {
    card.rows = static_cast<int64_t>(*est.rows);
    card.source = est.source;
  }
  Annotate(out, card);
  return out;
}

PhysPtr PhysicalPlanner::PlanNodeImpl(const PlanPtr& plan) const {
  if (const auto* local = AsPlan<LocalRelation>(plan)) {
    return std::make_shared<LocalTableScanExec>(local->Output(),
                                                local->shared_rows());
  }
  if (const auto* rel = AsPlan<LogicalRelation>(plan)) {
    return std::make_shared<DataSourceScanExec>(
        rel->source(), rel->full_output(), rel->required_columns(),
        rel->pushed_filters());
  }
  if (const auto* mem = AsPlan<InMemoryRelation>(plan)) {
    std::vector<int> columns;
    for (size_t i = 0; i < mem->Output().size(); ++i) {
      columns.push_back(static_cast<int>(i));
    }
    return std::make_shared<CachedScanExec>(mem->Output(), std::move(columns),
                                            mem->table());
  }
  if (const auto* project = AsPlan<Project>(plan)) {
    // Fuse Project(Filter(x)) into one pipelined operator when enabled.
    if (config_.operator_fusion_enabled) {
      if (const auto* filter = AsPlan<Filter>(project->child())) {
        return std::make_shared<ProjectFilterExec>(project->projections(),
                                                   filter->condition(),
                                                   PlanNode(filter->child()));
      }
    }
    return std::make_shared<ProjectFilterExec>(project->projections(), nullptr,
                                               PlanNode(project->child()));
  }
  if (const auto* filter = AsPlan<Filter>(plan)) {
    return std::make_shared<ProjectFilterExec>(std::vector<NamedExprPtr>{},
                                               filter->condition(),
                                               PlanNode(filter->child()));
  }
  if (const auto* agg = AsPlan<Aggregate>(plan)) {
    return PlanAggregate(*agg);
  }
  if (const auto* join = AsPlan<Join>(plan)) {
    return PlanJoin(*join);
  }
  if (const auto* sort = AsPlan<Sort>(plan)) {
    return std::make_shared<SortExec>(sort->orders(), PlanNode(sort->child()));
  }
  if (const auto* limit = AsPlan<Limit>(plan)) {
    return std::make_shared<LimitExec>(limit->n(), PlanNode(limit->child()));
  }
  if (const auto* distinct = AsPlan<Distinct>(plan)) {
    // DISTINCT is an aggregation over all output columns.
    ExprVector groupings;
    std::vector<NamedExprPtr> aggregates;
    for (const auto& attr : distinct->child()->Output()) {
      groupings.push_back(attr);
      aggregates.push_back(attr);
    }
    Aggregate agg(std::move(groupings), std::move(aggregates), distinct->child());
    return PlanAggregate(agg);
  }
  if (const auto* uni = AsPlan<Union>(plan)) {
    std::vector<PhysPtr> children;
    for (const auto& c : uni->Children()) children.push_back(PlanNode(c));
    return std::make_shared<UnionExec>(std::move(children));
  }
  if (const auto* sample = AsPlan<Sample>(plan)) {
    return std::make_shared<SampleExec>(sample->fraction(), sample->seed(),
                                        PlanNode(sample->child()));
  }
  if (const auto* alias = AsPlan<SubqueryAlias>(plan)) {
    return PlanNode(alias->child());
  }
  throw ExecutionError("no physical strategy for logical node " +
                       plan->NodeName());
}

PhysPtr PhysicalPlanner::PlanAggregate(const Aggregate& agg) const {
  PhysPtr child = PlanNode(agg.child());
  auto partial = std::make_shared<HashAggregateExec>(
      agg.groupings(), agg.aggregates(), AggregateMode::kPartial, child);
  PhysPtr shuffled;
  if (agg.groupings().empty()) {
    shuffled = std::make_shared<CoalesceExec>(partial);
  } else {
    ExprVector keys;
    for (size_t i = 0; i < agg.groupings().size(); ++i) {
      keys.push_back(partial->partial_output()[i]);
    }
    shuffled = std::make_shared<ExchangeExec>(
        std::move(keys), config_.default_parallelism, partial);
  }
  return std::make_shared<HashAggregateExec>(
      agg.groupings(), agg.aggregates(), AggregateMode::kFinal, shuffled);
}

PhysPtr PhysicalPlanner::PlanJoin(const Join& join) const {
  PhysPtr left = PlanNode(join.left());
  PhysPtr right = PlanNode(join.right());
  AttributeVector left_out = join.left()->Output();
  AttributeVector right_out = join.right()->Output();

  ExprVector conjuncts = SplitConjuncts(join.condition());

  // Section 7.2: interval-tree range join for overlap patterns.
  if (config_.range_join_enabled && join.join_type() == JoinType::kInner) {
    auto range = DetectRangeJoin(conjuncts, left_out, right_out);
    if (range.has_value()) {
      AttributeVector interval_attrs =
          range->interval_on_left ? left_out : right_out;
      Note("IntervalJoin: range-overlap pattern detected (interval side: " +
           std::string(range->interval_on_left ? "left" : "right") + ")");
      return std::make_shared<IntervalJoinExec>(
          left, right, range->interval_on_left, range->start, range->end,
          range->point, CombineConjuncts(range->residual));
    }
  }

  // Split conjuncts into equi pairs and the residual.
  ExprVector left_keys, right_keys, residual;
  for (const auto& c : conjuncts) {
    const auto* eq = As<EqualTo>(c);
    if (eq != nullptr) {
      if (ReferencesSubsetOf(eq->left(), left_out) &&
          ReferencesSubsetOf(eq->right(), right_out)) {
        left_keys.push_back(eq->left());
        right_keys.push_back(eq->right());
        continue;
      }
      if (ReferencesSubsetOf(eq->left(), right_out) &&
          ReferencesSubsetOf(eq->right(), left_out)) {
        left_keys.push_back(eq->right());
        right_keys.push_back(eq->left());
        continue;
      }
    }
    residual.push_back(c);
  }
  ExprPtr residual_cond = CombineConjuncts(residual);

  if (left_keys.empty()) {
    Note("NestedLoopJoin: no equi-join keys in the condition");
    return std::make_shared<NestedLoopJoinExec>(left, right, join.join_type(),
                                                residual_cond);
  }

  // Cost-based choice (Section 4.3.3): broadcast when the build side is
  // known to be small.
  if (config_.join_selection_enabled) {
    bool broadcastable_type = join.join_type() == JoinType::kInner ||
                              join.join_type() == JoinType::kLeftOuter ||
                              join.join_type() == JoinType::kLeftSemi ||
                              join.join_type() == JoinType::kLeftAnti ||
                              join.join_type() == JoinType::kCross;
    PlanEstimate right_est = Estimate(join.right());
    std::optional<uint64_t> right_size = right_est.bytes;
    // A broadcast build side cannot spill, so under a query memory budget
    // the effective threshold is capped at the budget; bigger build sides
    // route to the shuffle hash join, which degrades to a Grace join on
    // disk instead of failing.
    uint64_t broadcast_threshold = config_.broadcast_threshold_bytes;
    if (config_.query_memory_limit_bytes >= 0 &&
        broadcast_threshold >
            static_cast<uint64_t>(config_.query_memory_limit_bytes)) {
      broadcast_threshold =
          static_cast<uint64_t>(config_.query_memory_limit_bytes);
      Note("broadcast threshold capped at query_memory_limit_bytes=" +
           std::to_string(config_.query_memory_limit_bytes) +
           " (broadcast builds cannot spill)");
    }
    // Provenance makes the decision auditable: "analyzed-stats" means
    // ANALYZE TABLE informed the size, "byte-heuristic" means file/memory
    // sizes did, "unknown" means nothing was known.
    std::string size_text = "unknown";
    if (right_size) {
      size_text = std::to_string(*right_size) + " bytes";
      if (right_est.rows) {
        size_text += ", ~" + std::to_string(*right_est.rows) + " rows";
      }
      size_text += " (" + EstimateSourceName(right_est.source) + ")";
    }
    if (broadcastable_type && right_size &&
        *right_size <= broadcast_threshold) {
      Note("BroadcastHashJoin: build side " + size_text +
           " <= broadcast threshold " + std::to_string(broadcast_threshold) +
           " bytes");
      return std::make_shared<BroadcastHashJoinExec>(
          left, right, std::move(left_keys), std::move(right_keys),
          join.join_type(), residual_cond);
    }
    if (!broadcastable_type) {
      Note("broadcast rejected: join type " +
           std::string(JoinTypeName(join.join_type())) +
           " cannot broadcast the right side");
    } else {
      Note("broadcast rejected: build side " + size_text +
           " > broadcast threshold " + std::to_string(broadcast_threshold) +
           " bytes");
    }
    if (config_.prefer_sort_merge_join &&
        join.join_type() == JoinType::kInner) {
      Note("SortMergeJoin: prefer_sort_merge_join is set");
      return std::make_shared<SortMergeJoinExec>(
          left, right, std::move(left_keys), std::move(right_keys),
          join.join_type(), residual_cond);
    }
  } else {
    Note("join selection disabled: every equi-join becomes a "
         "ShuffleHashJoin");
  }

  Note("ShuffleHashJoin: fallback shuffle strategy");
  return std::make_shared<ShuffleHashJoinExec>(left, right, std::move(left_keys),
                                               std::move(right_keys),
                                               join.join_type(), residual_cond);
}

}  // namespace ssql
