#ifndef SSQL_CATALYST_PLANNER_COST_MODEL_H_
#define SSQL_CATALYST_PLANNER_COST_MODEL_H_

#include <cstdint>
#include <optional>
#include <string>

#include "catalyst/analysis/stats_store.h"
#include "catalyst/plan/logical_plan.h"

namespace ssql {

/// Size estimation for cost-based join selection (Section 4.3.3 and
/// footnote 5: "table sizes are estimated if the table is cached in memory
/// or comes from an external file, or if it is the result of a subquery
/// with a LIMIT"). Costs are "estimated recursively for a whole tree using
/// a rule": this function recurses over the logical plan, returning
/// nullopt where nothing is known — mirroring Spark 1.3, a Filter does not
/// shrink its child's estimate, which is exactly why the paper's query 3a
/// misses the better join plan Impala finds.
std::optional<uint64_t> EstimatePlanSizeBytes(const PlanPtr& plan);

/// The future-work variant (Section 4.3.3: "we thus intend to implement
/// richer cost-based optimization in the future"): like
/// EstimatePlanSizeBytes, but each filter conjunct — pushed into a source
/// or sitting in a Filter operator — multiplies the estimate by a default
/// selectivity. With this, the paper's query 3a picks the broadcast join
/// Impala found. Enabled by EngineConfig::cbo_filter_selectivity.
std::optional<uint64_t> EstimatePlanSizeBytesWithSelectivity(const PlanPtr& plan);

/// Per-conjunct selectivity guess used by the CBO variant.
constexpr double kDefaultFilterSelectivity = 0.25;

/// Average width guess used when converting row counts to bytes.
constexpr uint64_t kDefaultRowWidthBytes = 64;

/// Where a cardinality estimate came from, worst input wins: an estimate
/// combining an ANALYZE'd table with a byte-heuristic table is itself
/// byte-heuristic. Ordered weakest-first so provenance can merge with min().
enum class EstimateSource {
  kUnknown = 0,    // nothing known (e.g. missing file, no stats)
  kHeuristic = 1,  // derived from EstimatedSizeBytes / default widths
  kAnalyzed = 2,   // derived from ANALYZE TABLE statistics
  kExact = 3,      // counted directly (local rows, cached tables)
};

/// Display string: "unknown" / "byte-heuristic" / "analyzed-stats" /
/// "exact". Used by EXPLAIN, profiles, and system.query_operators.
std::string EstimateSourceName(EstimateSource source);

/// A plan node's estimated output cardinality and size, with provenance.
struct PlanEstimate {
  std::optional<uint64_t> rows;
  std::optional<uint64_t> bytes;
  EstimateSource source = EstimateSource::kUnknown;
};

/// Stats-aware estimator: row counts from the StatsStore when a scanned
/// source has fresh ANALYZE statistics (filter selectivity from NDV /
/// null-fraction / min-max, join cardinality from per-key NDV, aggregate
/// cardinality from grouping NDV), today's byte heuristic otherwise, with
/// provenance saying which path produced the number. `stats` may be null.
/// `use_default_selectivity` mirrors EngineConfig::cbo_filter_selectivity:
/// when false, filters without usable column stats do not shrink estimates
/// (Spark 1.3 behaviour); stats-based selectivity applies regardless.
/// Byte estimates are identical to EstimatePlanSizeBytes* unless analyzed
/// statistics fill a gap the heuristic leaves (joins, aggregates), so
/// broadcast decisions are unchanged on never-analyzed catalogs.
PlanEstimate EstimatePlan(const PlanPtr& plan, const StatsStore* stats,
                          bool use_default_selectivity);

}  // namespace ssql

#endif  // SSQL_CATALYST_PLANNER_COST_MODEL_H_
