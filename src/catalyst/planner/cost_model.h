#ifndef SSQL_CATALYST_PLANNER_COST_MODEL_H_
#define SSQL_CATALYST_PLANNER_COST_MODEL_H_

#include <cstdint>
#include <optional>

#include "catalyst/plan/logical_plan.h"

namespace ssql {

/// Size estimation for cost-based join selection (Section 4.3.3 and
/// footnote 5: "table sizes are estimated if the table is cached in memory
/// or comes from an external file, or if it is the result of a subquery
/// with a LIMIT"). Costs are "estimated recursively for a whole tree using
/// a rule": this function recurses over the logical plan, returning
/// nullopt where nothing is known — mirroring Spark 1.3, a Filter does not
/// shrink its child's estimate, which is exactly why the paper's query 3a
/// misses the better join plan Impala finds.
std::optional<uint64_t> EstimatePlanSizeBytes(const PlanPtr& plan);

/// The future-work variant (Section 4.3.3: "we thus intend to implement
/// richer cost-based optimization in the future"): like
/// EstimatePlanSizeBytes, but each filter conjunct — pushed into a source
/// or sitting in a Filter operator — multiplies the estimate by a default
/// selectivity. With this, the paper's query 3a picks the broadcast join
/// Impala found. Enabled by EngineConfig::cbo_filter_selectivity.
std::optional<uint64_t> EstimatePlanSizeBytesWithSelectivity(const PlanPtr& plan);

/// Per-conjunct selectivity guess used by the CBO variant.
constexpr double kDefaultFilterSelectivity = 0.25;

/// Average width guess used when converting row counts to bytes.
constexpr uint64_t kDefaultRowWidthBytes = 64;

}  // namespace ssql

#endif  // SSQL_CATALYST_PLANNER_COST_MODEL_H_
