#include "catalyst/planner/cost_model.h"

#include "columnar/column_vector.h"
#include "exec/scan_exec.h"

namespace ssql {

namespace {

std::optional<uint64_t> EstimateImpl(const PlanPtr& plan, bool selectivity);

std::optional<uint64_t> ApplyConjuncts(std::optional<uint64_t> base,
                                       size_t num_conjuncts) {
  if (!base) return base;
  double scaled = static_cast<double>(*base);
  for (size_t i = 0; i < num_conjuncts; ++i) {
    scaled *= kDefaultFilterSelectivity;
  }
  return static_cast<uint64_t>(scaled);
}

}  // namespace

std::optional<uint64_t> EstimatePlanSizeBytes(const PlanPtr& plan) {
  return EstimateImpl(plan, /*selectivity=*/false);
}

std::optional<uint64_t> EstimatePlanSizeBytesWithSelectivity(const PlanPtr& plan) {
  return EstimateImpl(plan, /*selectivity=*/true);
}

namespace {

std::optional<uint64_t> EstimateImpl(const PlanPtr& plan, bool selectivity) {
  if (const auto* rel = AsPlan<LogicalRelation>(plan)) {
    std::optional<uint64_t> base = rel->source()->EstimatedSizeBytes();
    if (!base) return std::nullopt;
    // Scale by the fraction of columns read (pruning shrinks the scan).
    size_t total = rel->full_output().size();
    size_t required = rel->required_columns().size();
    if (total == 0) return base;
    uint64_t scaled = *base * std::max<size_t>(required, 1) / total;
    if (selectivity) {
      return ApplyConjuncts(scaled, rel->pushed_filters().size());
    }
    return scaled;
  }
  if (const auto* local = AsPlan<LocalRelation>(plan)) {
    uint64_t per_row = kDefaultRowWidthBytes +
                       8ull * std::max<size_t>(local->Output().size(), 1);
    return local->rows().size() * per_row;
  }
  if (const auto* mem = AsPlan<InMemoryRelation>(plan)) {
    return mem->table()->MemoryBytes();
  }
  if (const auto* limit = AsPlan<Limit>(plan)) {
    uint64_t capped = static_cast<uint64_t>(limit->n()) * kDefaultRowWidthBytes;
    auto child = EstimateImpl(limit->child(), selectivity);
    if (child) return std::min(*child, capped);
    return capped;
  }
  if (const auto* project = AsPlan<Project>(plan)) {
    auto child = EstimateImpl(project->child(), selectivity);
    if (!child) return std::nullopt;
    size_t in_cols = std::max<size_t>(project->child()->Output().size(), 1);
    size_t out_cols = std::max<size_t>(project->projections().size(), 1);
    return *child * out_cols / in_cols;
  }
  if (const auto* filter = AsPlan<Filter>(plan)) {
    auto child = EstimateImpl(filter->child(), selectivity);
    if (!selectivity) return child;  // Spark 1.3 behaviour
    return ApplyConjuncts(child, SplitConjuncts(filter->condition()).size());
  }
  if (const auto* sample = AsPlan<Sample>(plan)) {
    auto child = EstimateImpl(sample->child(), selectivity);
    if (!child) return std::nullopt;
    return static_cast<uint64_t>(static_cast<double>(*child) * sample->fraction());
  }
  if (const auto* uni = AsPlan<Union>(plan)) {
    uint64_t total = 0;
    for (const auto& c : uni->Children()) {
      auto child = EstimateImpl(c, selectivity);
      if (!child) return std::nullopt;
      total += *child;
    }
    return total;
    (void)uni;
  }
  if (AsPlan<Join>(plan) != nullptr) {
    // Join output size is unknown without cardinality statistics.
    return std::nullopt;
  }
  // Sort / Distinct / Aggregate / SubqueryAlias: pass through the single
  // child's estimate.
  auto children = plan->Children();
  if (children.size() == 1) return EstimateImpl(children[0], selectivity);
  return std::nullopt;
}

}  // namespace

}  // namespace ssql
