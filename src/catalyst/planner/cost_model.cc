#include "catalyst/planner/cost_model.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <set>

#include "catalyst/expr/literal.h"
#include "catalyst/expr/predicates.h"
#include "columnar/column_vector.h"
#include "exec/scan_exec.h"
#include "util/string_util.h"

namespace ssql {

namespace {

std::optional<uint64_t> EstimateImpl(const PlanPtr& plan, bool selectivity);

std::optional<uint64_t> ApplyConjuncts(std::optional<uint64_t> base,
                                       size_t num_conjuncts) {
  if (!base) return base;
  double scaled = static_cast<double>(*base);
  for (size_t i = 0; i < num_conjuncts; ++i) {
    scaled *= kDefaultFilterSelectivity;
  }
  return static_cast<uint64_t>(scaled);
}

}  // namespace

std::optional<uint64_t> EstimatePlanSizeBytes(const PlanPtr& plan) {
  return EstimateImpl(plan, /*selectivity=*/false);
}

std::optional<uint64_t> EstimatePlanSizeBytesWithSelectivity(const PlanPtr& plan) {
  return EstimateImpl(plan, /*selectivity=*/true);
}

namespace {

std::optional<uint64_t> EstimateImpl(const PlanPtr& plan, bool selectivity) {
  if (const auto* rel = AsPlan<LogicalRelation>(plan)) {
    std::optional<uint64_t> base = rel->source()->EstimatedSizeBytes();
    if (!base) return std::nullopt;
    // Scale by the fraction of columns read (pruning shrinks the scan).
    size_t total = rel->full_output().size();
    size_t required = rel->required_columns().size();
    if (total == 0) return base;
    uint64_t scaled = *base * std::max<size_t>(required, 1) / total;
    if (selectivity) {
      return ApplyConjuncts(scaled, rel->pushed_filters().size());
    }
    return scaled;
  }
  if (const auto* local = AsPlan<LocalRelation>(plan)) {
    uint64_t per_row = kDefaultRowWidthBytes +
                       8ull * std::max<size_t>(local->Output().size(), 1);
    return local->rows().size() * per_row;
  }
  if (const auto* mem = AsPlan<InMemoryRelation>(plan)) {
    return mem->table()->MemoryBytes();
  }
  if (const auto* limit = AsPlan<Limit>(plan)) {
    uint64_t capped = static_cast<uint64_t>(limit->n()) * kDefaultRowWidthBytes;
    auto child = EstimateImpl(limit->child(), selectivity);
    if (child) return std::min(*child, capped);
    return capped;
  }
  if (const auto* project = AsPlan<Project>(plan)) {
    auto child = EstimateImpl(project->child(), selectivity);
    if (!child) return std::nullopt;
    size_t in_cols = std::max<size_t>(project->child()->Output().size(), 1);
    size_t out_cols = std::max<size_t>(project->projections().size(), 1);
    return *child * out_cols / in_cols;
  }
  if (const auto* filter = AsPlan<Filter>(plan)) {
    auto child = EstimateImpl(filter->child(), selectivity);
    if (!selectivity) return child;  // Spark 1.3 behaviour
    return ApplyConjuncts(child, SplitConjuncts(filter->condition()).size());
  }
  if (const auto* sample = AsPlan<Sample>(plan)) {
    auto child = EstimateImpl(sample->child(), selectivity);
    if (!child) return std::nullopt;
    return static_cast<uint64_t>(static_cast<double>(*child) * sample->fraction());
  }
  if (const auto* uni = AsPlan<Union>(plan)) {
    uint64_t total = 0;
    for (const auto& c : uni->Children()) {
      auto child = EstimateImpl(c, selectivity);
      if (!child) return std::nullopt;
      total += *child;
    }
    return total;
    (void)uni;
  }
  if (AsPlan<Join>(plan) != nullptr) {
    // Join output size is unknown without cardinality statistics.
    return std::nullopt;
  }
  // Sort / Distinct / Aggregate / SubqueryAlias: pass through the single
  // child's estimate.
  auto children = plan->Children();
  if (children.size() == 1) return EstimateImpl(children[0], selectivity);
  return std::nullopt;
}

}  // namespace

std::string EstimateSourceName(EstimateSource source) {
  switch (source) {
    case EstimateSource::kUnknown:
      return "unknown";
    case EstimateSource::kHeuristic:
      return "byte-heuristic";
    case EstimateSource::kAnalyzed:
      return "analyzed-stats";
    case EstimateSource::kExact:
      return "exact";
  }
  return "unknown";
}

namespace {

/// Weakest input wins; the enum is ordered weakest-first.
EstimateSource Weakest(EstimateSource a, EstimateSource b) {
  return a < b ? a : b;
}

/// Column statistics resolvable by attribute id. Holds the TableStats
/// snapshot so the ColumnStats pointers stay alive for the estimate's
/// duration.
struct ColumnStatsRef {
  std::shared_ptr<const TableStats> table;
  const ColumnStats* col = nullptr;
};

struct RowEstimateContext {
  const StatsStore* stats = nullptr;
  bool use_default_selectivity = false;
  std::map<ExprId, ColumnStatsRef> columns;

  const ColumnStats* Find(ExprId id) const {
    auto it = columns.find(id);
    return it == columns.end() ? nullptr : it->second.col;
  }
};

/// Maps every scanned column's attribute id to its ANALYZE'd stats.
/// LogicalRelation::full_output() is index-aligned with the source schema,
/// and the ids survive aliasing/pruning rewrites, so one walk covers every
/// reference in the tree.
std::map<ExprId, ColumnStatsRef> BuildColumnStatsMap(const PlanPtr& plan,
                                                     const StatsStore* stats) {
  std::map<ExprId, ColumnStatsRef> out;
  if (stats == nullptr) return out;
  plan->Foreach([&](const LogicalPlan& node) {
    const auto* rel = AsPlan<LogicalRelation>(node);
    if (rel == nullptr) return;
    std::shared_ptr<const TableStats> ts =
        stats->LookupBySource(rel->source().get());
    if (!ts) return;
    SchemaPtr schema = rel->source()->schema();
    const AttributeVector& output = rel->full_output();
    for (size_t i = 0; i < output.size() && i < schema->fields().size(); ++i) {
      auto it = ts->columns.find(ToLower(schema->fields()[i].name));
      if (it == ts->columns.end()) continue;
      out[output[i]->expr_id()] = ColumnStatsRef{ts, &it->second};
    }
  });
  return out;
}

const AttributeReference* AsAttr(const ExprPtr& e) {
  return dynamic_cast<const AttributeReference*>(e.get());
}

bool IsNumericValue(const Value& v) {
  if (v.is_null()) return false;
  TypeId id = v.type_id();
  return id == TypeId::kInt32 || id == TypeId::kInt64 || id == TypeId::kDouble;
}

/// Fraction of `[min, max]` lying below `bound`, by linear interpolation —
/// the textbook uniform-distribution assumption.
double FractionBelow(const Value& min, const Value& max, const Value& bound) {
  const double lo = min.AsDouble();
  const double hi = max.AsDouble();
  const double b = bound.AsDouble();
  if (b <= lo) return 0.0;
  if (b >= hi || hi <= lo) return 1.0;
  return (b - lo) / (hi - lo);
}

/// Selectivity of a single conjunct. Uses column statistics when the
/// conjunct compares a scanned column to literals; otherwise the default
/// guess when enabled, else 1.0 (no shrinking — Spark 1.3 behaviour).
/// `used_stats` reports whether statistics actually informed the number.
double ConjunctSelectivity(const ExprPtr& conjunct,
                           const RowEstimateContext& ctx, bool* used_stats) {
  const double fallback =
      ctx.use_default_selectivity ? kDefaultFilterSelectivity : 1.0;
  *used_stats = false;

  if (const auto* eq = dynamic_cast<const EqualTo*>(conjunct.get())) {
    const AttributeReference* attr = AsAttr(eq->left());
    const Expression* lit = dynamic_cast<const Literal*>(eq->right().get());
    if (attr == nullptr) {
      attr = AsAttr(eq->right());
      lit = dynamic_cast<const Literal*>(eq->left().get());
    }
    if (attr != nullptr && lit != nullptr) {
      if (const ColumnStats* cs = ctx.Find(attr->expr_id());
          cs != nullptr && cs->ndv > 0) {
        *used_stats = true;
        return 1.0 / static_cast<double>(cs->ndv);
      }
    }
    return fallback;
  }
  if (const auto* in = dynamic_cast<const In*>(conjunct.get())) {
    if (const AttributeReference* attr = AsAttr(in->value())) {
      if (const ColumnStats* cs = ctx.Find(attr->expr_id());
          cs != nullptr && cs->ndv > 0) {
        *used_stats = true;
        const double n =
            static_cast<double>(in->Children().size() - 1);  // minus value
        return std::min(1.0, n / static_cast<double>(cs->ndv));
      }
    }
    return fallback;
  }
  if (const auto* isnull = dynamic_cast<const IsNull*>(conjunct.get())) {
    if (const AttributeReference* attr = AsAttr(isnull->child())) {
      if (const ColumnStats* cs = ctx.Find(attr->expr_id())) {
        *used_stats = true;
        return cs->NullFraction();
      }
    }
    return fallback;
  }
  if (const auto* notnull = dynamic_cast<const IsNotNull*>(conjunct.get())) {
    if (const AttributeReference* attr = AsAttr(notnull->child())) {
      if (const ColumnStats* cs = ctx.Find(attr->expr_id())) {
        *used_stats = true;
        return 1.0 - cs->NullFraction();
      }
    }
    return fallback;
  }

  // Range comparisons: interpolate over [min, max].
  const auto* cmp = dynamic_cast<const BinaryComparison*>(conjunct.get());
  if (cmp != nullptr && dynamic_cast<const NotEqualTo*>(cmp) == nullptr) {
    const AttributeReference* attr = AsAttr(cmp->left());
    const Literal* lit = dynamic_cast<const Literal*>(cmp->right().get());
    bool attr_on_left = true;
    if (attr == nullptr) {
      attr = AsAttr(cmp->right());
      lit = dynamic_cast<const Literal*>(cmp->left().get());
      attr_on_left = false;
    }
    if (attr != nullptr && lit != nullptr && IsNumericValue(lit->value())) {
      if (const ColumnStats* cs = ctx.Find(attr->expr_id());
          cs != nullptr && IsNumericValue(cs->min) &&
          IsNumericValue(cs->max)) {
        const bool less = dynamic_cast<const LessThan*>(cmp) != nullptr ||
                          dynamic_cast<const LessThanOrEqual*>(cmp) != nullptr;
        // `attr < lit` keeps the fraction below; `lit < attr` (attr on the
        // right) flips, as do > comparisons.
        const bool keep_below = less == attr_on_left;
        double frac = FractionBelow(cs->min, cs->max, lit->value());
        *used_stats = true;
        return keep_below ? frac : 1.0 - frac;
      }
    }
    return fallback;
  }
  return fallback;
}

struct RowEstimate {
  std::optional<uint64_t> rows;
  EstimateSource source = EstimateSource::kUnknown;
};

/// Applies conjunct selectivities to `base`, downgrading provenance to
/// heuristic for every conjunct statistics could not explain (unless the
/// conjunct did not shrink the estimate at all).
RowEstimate ApplySelectivity(RowEstimate base, const ExprVector& conjuncts,
                             const RowEstimateContext& ctx) {
  if (!base.rows) return base;
  double rows = static_cast<double>(*base.rows);
  for (const ExprPtr& c : conjuncts) {
    bool used_stats = false;
    double sel = ConjunctSelectivity(c, ctx, &used_stats);
    rows *= sel;
    if (!used_stats && sel < 1.0) {
      base.source = Weakest(base.source, EstimateSource::kHeuristic);
    }
  }
  base.rows = static_cast<uint64_t>(rows + 0.5);
  return base;
}

std::set<ExprId> OutputIds(const PlanPtr& plan) {
  std::set<ExprId> ids;
  for (const AttributePtr& a : plan->Output()) ids.insert(a->expr_id());
  return ids;
}

RowEstimate EstimateRows(const PlanPtr& plan, const RowEstimateContext& ctx);

/// Join cardinality: |L|*|R| / prod(max(ndv_l, ndv_r)) over the equi-key
/// pairs (the classic containment assumption); pairs whose NDV is unknown
/// divide by max(|L|, |R|) — the foreign-key guess — and downgrade
/// provenance to heuristic.
RowEstimate EstimateJoinRows(const Join& join, const RowEstimateContext& ctx) {
  RowEstimate left = EstimateRows(join.left(), ctx);
  RowEstimate right = EstimateRows(join.right(), ctx);
  if (!left.rows || !right.rows) return {};
  const double l = static_cast<double>(*left.rows);
  const double r = static_cast<double>(*right.rows);
  EstimateSource source = Weakest(left.source, right.source);

  double rows;
  switch (join.join_type()) {
    case JoinType::kLeftSemi:
    case JoinType::kLeftAnti:
      // At most every left row survives; without key stats this upper
      // bound is the standard guess.
      return {static_cast<uint64_t>(l),
              Weakest(source, EstimateSource::kHeuristic)};
    case JoinType::kCross:
      return {static_cast<uint64_t>(l * r), source};
    default:
      break;
  }

  if (join.condition() == nullptr) {
    return {static_cast<uint64_t>(l * r), source};
  }

  rows = l * r;
  bool any_equi = false;
  std::set<ExprId> left_ids = OutputIds(join.left());
  std::set<ExprId> right_ids = OutputIds(join.right());
  for (const ExprPtr& c : SplitConjuncts(join.condition())) {
    const auto* eq = dynamic_cast<const EqualTo*>(c.get());
    if (eq == nullptr) continue;
    const AttributeReference* a = AsAttr(eq->left());
    const AttributeReference* b = AsAttr(eq->right());
    if (a == nullptr || b == nullptr) continue;
    // Normalize to (left-side attr, right-side attr).
    if (left_ids.count(b->expr_id()) && right_ids.count(a->expr_id())) {
      std::swap(a, b);
    }
    if (!left_ids.count(a->expr_id()) || !right_ids.count(b->expr_id())) {
      continue;
    }
    any_equi = true;
    const ColumnStats* cl = ctx.Find(a->expr_id());
    const ColumnStats* cr = ctx.Find(b->expr_id());
    const int64_t ndv_l = cl != nullptr ? cl->ndv : 0;
    const int64_t ndv_r = cr != nullptr ? cr->ndv : 0;
    double divisor = static_cast<double>(std::max(ndv_l, ndv_r));
    if (divisor <= 0.0) {
      divisor = std::max(1.0, std::max(l, r));
      source = Weakest(source, EstimateSource::kHeuristic);
    }
    rows /= divisor;
  }
  if (!any_equi) {
    // Non-equi condition: treat as a filter over the cross product.
    rows *= ctx.use_default_selectivity ? kDefaultFilterSelectivity : 1.0;
    source = Weakest(source, EstimateSource::kHeuristic);
  }

  // Outer joins preserve at least the outer side(s).
  double floor_rows = 0.0;
  switch (join.join_type()) {
    case JoinType::kLeftOuter:
      floor_rows = l;
      break;
    case JoinType::kRightOuter:
      floor_rows = r;
      break;
    case JoinType::kFullOuter:
      floor_rows = std::max(l, r);
      break;
    default:
      break;
  }
  rows = std::max(rows, floor_rows);
  return {static_cast<uint64_t>(rows + 0.5), source};
}

RowEstimate EstimateAggregateRows(const Aggregate& agg,
                                  const RowEstimateContext& ctx) {
  if (agg.groupings().empty()) {
    // Global aggregate: always exactly one output row.
    return {1, EstimateSource::kExact};
  }
  RowEstimate child = EstimateRows(agg.child(), ctx);
  if (!child.rows) return {};
  // Product of grouping-key NDVs, capped at the input cardinality. Keys
  // without stats contribute no factor but downgrade provenance.
  double groups = 1.0;
  EstimateSource source = child.source;
  for (const ExprPtr& g : agg.groupings()) {
    const AttributeReference* attr = AsAttr(g);
    const ColumnStats* cs =
        attr != nullptr ? ctx.Find(attr->expr_id()) : nullptr;
    if (cs != nullptr && cs->ndv > 0) {
      groups *= static_cast<double>(cs->ndv);
    } else {
      source = Weakest(source, EstimateSource::kHeuristic);
    }
  }
  double rows = std::min(groups, static_cast<double>(*child.rows));
  return {static_cast<uint64_t>(std::max(rows, 1.0) + 0.5), source};
}

RowEstimate EstimateRows(const PlanPtr& plan, const RowEstimateContext& ctx) {
  if (const auto* rel = AsPlan<LogicalRelation>(plan)) {
    std::shared_ptr<const TableStats> ts =
        ctx.stats != nullptr
            ? ctx.stats->LookupBySource(rel->source().get())
            : nullptr;
    RowEstimate est;
    if (ts) {
      est.rows = static_cast<uint64_t>(std::max<int64_t>(ts->row_count, 0));
      est.source = EstimateSource::kAnalyzed;
    } else {
      std::optional<uint64_t> bytes = rel->source()->EstimatedSizeBytes();
      if (!bytes) return {};
      est.rows = *bytes / kDefaultRowWidthBytes;
      est.source = EstimateSource::kHeuristic;
    }
    return ApplySelectivity(est, rel->pushed_filters(), ctx);
  }
  if (const auto* local = AsPlan<LocalRelation>(plan)) {
    return {static_cast<uint64_t>(local->rows().size()),
            EstimateSource::kExact};
  }
  if (const auto* mem = AsPlan<InMemoryRelation>(plan)) {
    return {static_cast<uint64_t>(mem->table()->num_rows()),
            EstimateSource::kExact};
  }
  if (const auto* limit = AsPlan<Limit>(plan)) {
    RowEstimate child = EstimateRows(limit->child(), ctx);
    const uint64_t n = static_cast<uint64_t>(std::max<int64_t>(limit->n(), 0));
    if (child.rows) return {std::min(*child.rows, n), child.source};
    // LIMIT alone bounds the output even over an unknown child.
    return {n, EstimateSource::kHeuristic};
  }
  if (const auto* filter = AsPlan<Filter>(plan)) {
    RowEstimate child = EstimateRows(filter->child(), ctx);
    return ApplySelectivity(child, SplitConjuncts(filter->condition()), ctx);
  }
  if (const auto* sample = AsPlan<Sample>(plan)) {
    RowEstimate child = EstimateRows(sample->child(), ctx);
    if (!child.rows) return child;
    child.rows = static_cast<uint64_t>(
        static_cast<double>(*child.rows) * sample->fraction() + 0.5);
    return child;
  }
  if (const auto* uni = AsPlan<Union>(plan)) {
    uint64_t total = 0;
    EstimateSource source = EstimateSource::kExact;
    for (const auto& c : uni->Children()) {
      RowEstimate child = EstimateRows(c, ctx);
      if (!child.rows) return {};
      total += *child.rows;
      source = Weakest(source, child.source);
    }
    return {total, source};
  }
  if (const auto* join = AsPlan<Join>(plan)) {
    return EstimateJoinRows(*join, ctx);
  }
  if (const auto* agg = AsPlan<Aggregate>(plan)) {
    return EstimateAggregateRows(*agg, ctx);
  }
  if (const auto* distinct = AsPlan<Distinct>(plan)) {
    // Upper bound; per-column NDV does not compose to row distinctness.
    RowEstimate child = EstimateRows(distinct->child(), ctx);
    child.source = Weakest(child.source, EstimateSource::kHeuristic);
    return child;
  }
  // Project / Sort / SubqueryAlias / anything row-preserving: pass through.
  auto children = plan->Children();
  if (children.size() == 1) return EstimateRows(children[0], ctx);
  return {};
}

}  // namespace

PlanEstimate EstimatePlan(const PlanPtr& plan, const StatsStore* stats,
                          bool use_default_selectivity) {
  RowEstimateContext ctx;
  ctx.stats = stats;
  ctx.use_default_selectivity = use_default_selectivity;
  ctx.columns = BuildColumnStatsMap(plan, stats);

  RowEstimate rows = EstimateRows(plan, ctx);
  PlanEstimate est;
  est.rows = rows.rows;
  est.source = rows.rows ? rows.source : EstimateSource::kUnknown;
  // Bytes stay bit-identical to the legacy heuristic unless analyzed stats
  // fill a hole it leaves (joins, aggregates over joins, ...) — broadcast
  // decisions on never-analyzed catalogs are untouched.
  est.bytes = EstimateImpl(plan, use_default_selectivity);
  if (!est.bytes && est.rows && est.source == EstimateSource::kAnalyzed) {
    est.bytes = *est.rows * kDefaultRowWidthBytes;
  }
  if (!est.rows && est.bytes) {
    est.rows = *est.bytes / kDefaultRowWidthBytes;
    est.source = EstimateSource::kHeuristic;
  }
  return est;
}

}  // namespace ssql
