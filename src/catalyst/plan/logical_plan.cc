#include "catalyst/plan/logical_plan.h"

#include <unordered_set>

#include "catalyst/expr/aggregates.h"
#include "catalyst/expr/predicates.h"

namespace ssql {

PlanPtr LogicalPlan::WithNewExpressions(ExprVector) const { return self(); }

bool LogicalPlan::resolved() const {
  for (const auto& c : Children()) {
    if (!c->resolved()) return false;
  }
  for (const auto& e : Expressions()) {
    if (!e->resolved()) return false;
  }
  return true;
}

std::string LogicalPlan::Describe() const { return NodeName(); }

std::string LogicalPlan::TreeString() const {
  std::string out;
  TreeStringInternal(0, &out);
  return out;
}

void LogicalPlan::TreeStringInternal(int indent, std::string* out) const {
  for (int i = 0; i < indent; ++i) *out += "  ";
  *out += Describe();
  *out += "\n";
  for (const auto& c : Children()) c->TreeStringInternal(indent + 1, out);
}

PlanPtr LogicalPlan::TransformUp(const PlanRewrite& rule) const {
  PlanVector children = Children();
  bool changed = false;
  for (auto& c : children) {
    PlanPtr replaced = c->TransformUp(rule);
    if (replaced.get() != c.get()) {
      c = std::move(replaced);
      changed = true;
    }
  }
  PlanPtr with_children = changed ? WithNewChildren(std::move(children)) : self();
  PlanPtr result = rule(with_children);
  return result ? result : with_children;
}

PlanPtr LogicalPlan::TransformDown(const PlanRewrite& rule) const {
  PlanPtr replaced = rule(self());
  if (!replaced) replaced = self();
  PlanVector children = replaced->Children();
  bool changed = false;
  for (auto& c : children) {
    PlanPtr new_child = c->TransformDown(rule);
    if (new_child.get() != c.get()) {
      c = std::move(new_child);
      changed = true;
    }
  }
  return changed ? replaced->WithNewChildren(std::move(children)) : replaced;
}

PlanPtr LogicalPlan::MapExpressions(const ExprRewrite& rule) const {
  ExprVector exprs = Expressions();
  if (exprs.empty()) return self();
  bool changed = false;
  for (auto& e : exprs) {
    ExprPtr replaced = e->TransformUp(rule);
    if (replaced.get() != e.get()) {
      e = std::move(replaced);
      changed = true;
    }
  }
  return changed ? WithNewExpressions(std::move(exprs)) : self();
}

PlanPtr LogicalPlan::TransformAllExpressions(const ExprRewrite& rule) const {
  return TransformUp(
      [&rule](const PlanPtr& p) -> PlanPtr { return p->MapExpressions(rule); });
}

void LogicalPlan::Foreach(
    const std::function<void(const LogicalPlan&)>& fn) const {
  fn(*this);
  for (const auto& c : Children()) c->Foreach(fn);
}

// ---------------------------------------------------------------------------
// LocalRelation
// ---------------------------------------------------------------------------

PlanPtr LocalRelation::FromSchema(const SchemaPtr& schema, std::vector<Row> rows) {
  AttributeVector output;
  output.reserve(schema->num_fields());
  for (const Field& f : schema->fields()) {
    output.push_back(AttributeReference::Make(f.name, f.type, f.nullable));
  }
  return Make(std::move(output), std::move(rows));
}

std::string LocalRelation::Describe() const {
  std::string s = "LocalRelation [";
  for (size_t i = 0; i < output_.size(); ++i) {
    if (i > 0) s += ", ";
    s += output_[i]->ToString();
  }
  s += "], rows=" + std::to_string(rows_->size());
  return s;
}

// ---------------------------------------------------------------------------
// LogicalRelation
// ---------------------------------------------------------------------------

PlanPtr LogicalRelation::Make(std::shared_ptr<SourceRelation> source) {
  SchemaPtr schema = source->schema();
  AttributeVector output;
  std::vector<int> required;
  output.reserve(schema->num_fields());
  for (size_t i = 0; i < schema->num_fields(); ++i) {
    const Field& f = schema->field(i);
    output.push_back(AttributeReference::Make(f.name, f.type, f.nullable));
    required.push_back(static_cast<int>(i));
  }
  return std::make_shared<LogicalRelation>(std::move(source), std::move(output),
                                           std::move(required), ExprVector{});
}

PlanPtr LogicalRelation::WithRequiredColumns(std::vector<int> cols) const {
  return std::make_shared<LogicalRelation>(source_, full_output_, std::move(cols),
                                           pushed_filters_);
}

PlanPtr LogicalRelation::WithPushedFilters(ExprVector filters) const {
  return std::make_shared<LogicalRelation>(source_, full_output_,
                                           required_columns_, std::move(filters));
}

AttributeVector LogicalRelation::Output() const {
  AttributeVector out;
  out.reserve(required_columns_.size());
  for (int i : required_columns_) out.push_back(full_output_[i]);
  return out;
}

std::string LogicalRelation::Describe() const {
  std::string s = "Relation " + source_->name() + " [";
  auto out = Output();
  for (size_t i = 0; i < out.size(); ++i) {
    if (i > 0) s += ", ";
    s += out[i]->ToString();
  }
  s += "]";
  if (!pushed_filters_.empty()) {
    s += " PushedFilters: [";
    for (size_t i = 0; i < pushed_filters_.size(); ++i) {
      if (i > 0) s += ", ";
      s += pushed_filters_[i]->ToString();
    }
    s += "]";
  }
  return s;
}

// ---------------------------------------------------------------------------
// Project
// ---------------------------------------------------------------------------

AttributeVector Project::Output() const {
  AttributeVector out;
  out.reserve(projections_.size());
  for (const auto& p : projections_) out.push_back(p->ToAttribute());
  return out;
}

ExprVector Project::Expressions() const {
  ExprVector out;
  out.reserve(projections_.size());
  for (const auto& p : projections_) out.push_back(p);
  return out;
}

PlanPtr Project::WithNewExpressions(ExprVector exprs) const {
  std::vector<NamedExprPtr> named;
  named.reserve(exprs.size());
  for (size_t i = 0; i < exprs.size(); ++i) {
    named.push_back(ToNamed(exprs[i], projections_[i]->name()));
  }
  return Make(std::move(named), child_);
}

bool Project::resolved() const {
  if (!LogicalPlan::resolved()) return false;
  // A Project containing aggregate functions is not a valid final plan;
  // the analyzer must rewrite it to an Aggregate.
  for (const auto& p : projections_) {
    if (ContainsAggregate(p)) return false;
  }
  return true;
}

std::string Project::Describe() const {
  std::string s = "Project [";
  for (size_t i = 0; i < projections_.size(); ++i) {
    if (i > 0) s += ", ";
    s += projections_[i]->ToString();
  }
  return s + "]";
}

// ---------------------------------------------------------------------------
// Aggregate
// ---------------------------------------------------------------------------

AttributeVector Aggregate::Output() const {
  AttributeVector out;
  out.reserve(aggregates_.size());
  for (const auto& a : aggregates_) out.push_back(a->ToAttribute());
  return out;
}

ExprVector Aggregate::Expressions() const {
  ExprVector out;
  out.reserve(groupings_.size() + aggregates_.size());
  for (const auto& g : groupings_) out.push_back(g);
  for (const auto& a : aggregates_) out.push_back(a);
  return out;
}

PlanPtr Aggregate::WithNewExpressions(ExprVector exprs) const {
  ExprVector groupings(exprs.begin(),
                       exprs.begin() + static_cast<long>(groupings_.size()));
  std::vector<NamedExprPtr> aggregates;
  aggregates.reserve(aggregates_.size());
  for (size_t i = 0; i < aggregates_.size(); ++i) {
    aggregates.push_back(
        ToNamed(exprs[groupings_.size() + i], aggregates_[i]->name()));
  }
  return Make(std::move(groupings), std::move(aggregates), child_);
}

bool Aggregate::resolved() const { return LogicalPlan::resolved(); }

std::string Aggregate::Describe() const {
  std::string s = "Aggregate [";
  for (size_t i = 0; i < groupings_.size(); ++i) {
    if (i > 0) s += ", ";
    s += groupings_[i]->ToString();
  }
  s += "], [";
  for (size_t i = 0; i < aggregates_.size(); ++i) {
    if (i > 0) s += ", ";
    s += aggregates_[i]->ToString();
  }
  return s + "]";
}

// ---------------------------------------------------------------------------
// Sort
// ---------------------------------------------------------------------------

ExprVector Sort::Expressions() const {
  ExprVector out;
  out.reserve(orders_.size());
  for (const auto& o : orders_) out.push_back(o);
  return out;
}

PlanPtr Sort::WithNewExpressions(ExprVector exprs) const {
  std::vector<std::shared_ptr<const SortOrder>> orders;
  orders.reserve(exprs.size());
  for (size_t i = 0; i < exprs.size(); ++i) {
    if (auto so = std::dynamic_pointer_cast<const SortOrder>(exprs[i])) {
      orders.push_back(std::move(so));
    } else {
      orders.push_back(SortOrder::Make(exprs[i], orders_[i]->ascending()));
    }
  }
  return Make(std::move(orders), child_);
}

std::string Sort::Describe() const {
  std::string s = "Sort [";
  for (size_t i = 0; i < orders_.size(); ++i) {
    if (i > 0) s += ", ";
    s += orders_[i]->ToString();
  }
  return s + "]";
}

// ---------------------------------------------------------------------------
// SubqueryAlias / Sample / Join / Union
// ---------------------------------------------------------------------------

AttributeVector SubqueryAlias::Output() const {
  AttributeVector out;
  for (const auto& a : child_->Output()) out.push_back(a->WithQualifier(alias_));
  return out;
}

std::string Sample::Describe() const {
  return "Sample fraction=" + std::to_string(fraction_);
}

std::string JoinTypeName(JoinType t) {
  switch (t) {
    case JoinType::kInner:
      return "Inner";
    case JoinType::kLeftOuter:
      return "LeftOuter";
    case JoinType::kRightOuter:
      return "RightOuter";
    case JoinType::kFullOuter:
      return "FullOuter";
    case JoinType::kLeftSemi:
      return "LeftSemi";
    case JoinType::kLeftAnti:
      return "LeftAnti";
    case JoinType::kCross:
      return "Cross";
  }
  return "?";
}

AttributeVector Join::Output() const {
  AttributeVector out;
  auto left_out = left_->Output();
  auto right_out = right_->Output();
  bool left_nullable = join_type_ == JoinType::kRightOuter ||
                       join_type_ == JoinType::kFullOuter;
  bool right_nullable = join_type_ == JoinType::kLeftOuter ||
                        join_type_ == JoinType::kFullOuter;
  for (const auto& a : left_out) {
    out.push_back(left_nullable ? a->WithNullability(true) : a);
  }
  if (join_type_ != JoinType::kLeftSemi && join_type_ != JoinType::kLeftAnti) {
    for (const auto& a : right_out) {
      out.push_back(right_nullable ? a->WithNullability(true) : a);
    }
  }
  return out;
}

std::string Join::Describe() const {
  std::string s = "Join " + JoinTypeName(join_type_);
  if (condition_) s += ", " + condition_->ToString();
  return s;
}

AttributeVector Union::Output() const { return children_[0]->Output(); }

// ---------------------------------------------------------------------------
// Expression/plan helpers
// ---------------------------------------------------------------------------

void CollectReferences(const ExprPtr& expr, AttributeVector* out) {
  expr->Foreach([out](const Expression& e) {
    if (const auto* a = dynamic_cast<const AttributeReference*>(&e)) {
      out->push_back(a->ToAttribute());
    }
  });
}

bool ReferencesSubsetOf(const ExprPtr& expr, const AttributeVector& attrs) {
  std::unordered_set<ExprId> available;
  for (const auto& a : attrs) available.insert(a->expr_id());
  bool ok = true;
  expr->Foreach([&](const Expression& e) {
    if (const auto* a = dynamic_cast<const AttributeReference*>(&e)) {
      if (available.find(a->expr_id()) == available.end()) ok = false;
    }
  });
  return ok;
}

ExprVector SplitConjuncts(const ExprPtr& condition) {
  ExprVector out;
  if (!condition) return out;
  if (const auto* a = As<And>(condition)) {
    ExprVector left = SplitConjuncts(a->left());
    ExprVector right = SplitConjuncts(a->right());
    out.insert(out.end(), left.begin(), left.end());
    out.insert(out.end(), right.begin(), right.end());
    return out;
  }
  out.push_back(condition);
  return out;
}

ExprPtr CombineConjuncts(const ExprVector& conjuncts) {
  if (conjuncts.empty()) return nullptr;
  ExprPtr result = conjuncts[0];
  for (size_t i = 1; i < conjuncts.size(); ++i) {
    result = And::Make(result, conjuncts[i]);
  }
  return result;
}

}  // namespace ssql
