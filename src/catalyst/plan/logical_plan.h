#ifndef SSQL_CATALYST_PLAN_LOGICAL_PLAN_H_
#define SSQL_CATALYST_PLAN_LOGICAL_PLAN_H_

#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "catalyst/expr/attribute.h"
#include "catalyst/expr/expression.h"
#include "types/schema.h"

namespace ssql {

class LogicalPlan;
using PlanPtr = std::shared_ptr<const LogicalPlan>;
using PlanVector = std::vector<PlanPtr>;
using PlanRewrite = std::function<PlanPtr(const PlanPtr&)>;

/// How much EXPLAIN reveals. Lives next to the logical plan because both
/// the SQL front end (EXPLAIN statements) and the DataFrame API
/// (DataFrame::Explain) consume it.
enum class ExplainMode {
  kSimple,    // physical plan only
  kExtended,  // analyzed + optimized logical plans, join selection, physical
  kAnalyze,   // run the query, then render the plan with actuals
};

/// Base class of logical operators — the second tree family of Catalyst
/// (Section 4.3): analysis and logical optimization are rewrites over these
/// nodes, sharing the same TransformUp/TransformDown machinery as
/// expressions.
class LogicalPlan : public std::enable_shared_from_this<LogicalPlan> {
 public:
  virtual ~LogicalPlan() = default;

  virtual std::string NodeName() const = 0;
  virtual PlanVector Children() const = 0;
  virtual PlanPtr WithNewChildren(PlanVector children) const = 0;

  /// The attributes this operator produces, with stable expression IDs.
  virtual AttributeVector Output() const = 0;

  /// Expressions embedded in this node (projections, conditions, ...).
  virtual ExprVector Expressions() const { return {}; }
  /// Rebuilds this node with rewritten expressions (same arity/order as
  /// Expressions()).
  virtual PlanPtr WithNewExpressions(ExprVector exprs) const;

  /// Resolved when all children and all embedded expressions are resolved.
  virtual bool resolved() const;

  /// One-line description used in EXPLAIN output.
  virtual std::string Describe() const;

  /// Indented multi-line plan rendering (EXPLAIN).
  std::string TreeString() const;

  PlanPtr TransformUp(const PlanRewrite& rule) const;
  PlanPtr TransformDown(const PlanRewrite& rule) const;

  /// Rewrites every expression in every node of the plan tree —
  /// Catalyst's transformAllExpressions, used by e.g. DecimalAggregates.
  PlanPtr TransformAllExpressions(const ExprRewrite& rule) const;

  /// Applies the expression rewrite to this node's expressions only.
  PlanPtr MapExpressions(const ExprRewrite& rule) const;

  void Foreach(const std::function<void(const LogicalPlan&)>& fn) const;

  bool Equals(const LogicalPlan& other) const {
    return TreeString() == other.TreeString();
  }

  PlanPtr self() const { return shared_from_this(); }

 private:
  void TreeStringInternal(int indent, std::string* out) const;
};

template <typename T>
const T* AsPlan(const PlanPtr& p) {
  return dynamic_cast<const T*>(p.get());
}
template <typename T>
const T* AsPlan(const LogicalPlan& p) {
  return dynamic_cast<const T*>(&p);
}

// ---------------------------------------------------------------------------
// Leaf nodes
// ---------------------------------------------------------------------------

/// A table name the analyzer has not yet looked up in the Catalog.
class UnresolvedRelation : public LogicalPlan {
 public:
  explicit UnresolvedRelation(std::string name) : name_(std::move(name)) {}
  static PlanPtr Make(std::string name) {
    return std::make_shared<UnresolvedRelation>(std::move(name));
  }
  const std::string& name() const { return name_; }

  std::string NodeName() const override { return "UnresolvedRelation"; }
  PlanVector Children() const override { return {}; }
  PlanPtr WithNewChildren(PlanVector) const override { return self(); }
  AttributeVector Output() const override {
    throw AnalysisError("unresolved relation '" + name_ + "'");
  }
  bool resolved() const override { return false; }
  std::string Describe() const override {
    return "UnresolvedRelation " + name_;
  }

 private:
  std::string name_;
};

/// Driver-local rows with a schema (DataFrames created from vectors, the
/// results of `parallelize`, parser literals, ...).
class LocalRelation : public LogicalPlan {
 public:
  LocalRelation(AttributeVector output, std::shared_ptr<const std::vector<Row>> rows)
      : output_(std::move(output)), rows_(std::move(rows)) {}

  static PlanPtr Make(AttributeVector output, std::vector<Row> rows) {
    return std::make_shared<LocalRelation>(
        std::move(output), std::make_shared<const std::vector<Row>>(std::move(rows)));
  }
  /// Builds output attributes from a schema, assigning fresh expr IDs.
  static PlanPtr FromSchema(const SchemaPtr& schema, std::vector<Row> rows);

  const std::vector<Row>& rows() const { return *rows_; }
  std::shared_ptr<const std::vector<Row>> shared_rows() const { return rows_; }

  std::string NodeName() const override { return "LocalRelation"; }
  PlanVector Children() const override { return {}; }
  PlanPtr WithNewChildren(PlanVector) const override { return self(); }
  AttributeVector Output() const override { return output_; }
  std::string Describe() const override;

 private:
  AttributeVector output_;
  std::shared_ptr<const std::vector<Row>> rows_;
};

/// Minimal interface a data source relation exposes to the planner; the
/// full data source API (scan interfaces, pushdown) lives in
/// datasources/data_source.h which implements this.
class SourceRelation {
 public:
  virtual ~SourceRelation() = default;
  /// Display name, e.g. "csv:/tmp/users.csv".
  virtual std::string name() const = 0;
  /// Full schema of the underlying data.
  virtual SchemaPtr schema() const = 0;
  /// Estimated total size in bytes, if known — drives broadcast join
  /// selection (Section 4.3.3, footnote 5).
  virtual std::optional<uint64_t> EstimatedSizeBytes() const {
    return std::nullopt;
  }
  /// Whether the source can evaluate `conjunct` itself (predicate
  /// pushdown, Section 4.4.1). Sources that return true must filter
  /// exactly; the optimizer then removes the conjunct from the plan.
  virtual bool CanHandleFilter(const Expression& conjunct) const {
    (void)conjunct;
    return false;
  }
};

/// A scan over an external data source. Carries the pruned column set and
/// pushed-down filters the optimizer has negotiated (Section 4.4.1); both
/// start maximal/empty and are narrowed by rules.
class LogicalRelation : public LogicalPlan {
 public:
  LogicalRelation(std::shared_ptr<SourceRelation> source, AttributeVector full_output,
                  std::vector<int> required_columns, ExprVector pushed_filters)
      : source_(std::move(source)),
        full_output_(std::move(full_output)),
        required_columns_(std::move(required_columns)),
        pushed_filters_(std::move(pushed_filters)) {}

  /// Creates a scan of all columns with fresh attribute IDs.
  static PlanPtr Make(std::shared_ptr<SourceRelation> source);

  const std::shared_ptr<SourceRelation>& source() const { return source_; }
  const AttributeVector& full_output() const { return full_output_; }
  const std::vector<int>& required_columns() const { return required_columns_; }
  const ExprVector& pushed_filters() const { return pushed_filters_; }

  /// Copy with a narrower column set (ColumnPruning rule).
  PlanPtr WithRequiredColumns(std::vector<int> cols) const;
  /// Copy with additional pushed-down filter conjuncts.
  PlanPtr WithPushedFilters(ExprVector filters) const;

  std::string NodeName() const override { return "Relation"; }
  PlanVector Children() const override { return {}; }
  PlanPtr WithNewChildren(PlanVector) const override { return self(); }
  AttributeVector Output() const override;
  std::string Describe() const override;

 private:
  std::shared_ptr<SourceRelation> source_;
  AttributeVector full_output_;
  std::vector<int> required_columns_;
  ExprVector pushed_filters_;
};

// ---------------------------------------------------------------------------
// Unary nodes
// ---------------------------------------------------------------------------

/// SELECT list / DataFrame Select().
class Project : public LogicalPlan {
 public:
  Project(std::vector<NamedExprPtr> projections, PlanPtr child)
      : projections_(std::move(projections)), child_(std::move(child)) {}
  static PlanPtr Make(std::vector<NamedExprPtr> projections, PlanPtr child) {
    return std::make_shared<Project>(std::move(projections), std::move(child));
  }

  const std::vector<NamedExprPtr>& projections() const { return projections_; }
  const PlanPtr& child() const { return child_; }

  std::string NodeName() const override { return "Project"; }
  PlanVector Children() const override { return {child_}; }
  PlanPtr WithNewChildren(PlanVector c) const override {
    return Make(projections_, c[0]);
  }
  AttributeVector Output() const override;
  ExprVector Expressions() const override;
  PlanPtr WithNewExpressions(ExprVector exprs) const override;
  bool resolved() const override;
  std::string Describe() const override;

 private:
  std::vector<NamedExprPtr> projections_;
  PlanPtr child_;
};

/// WHERE / DataFrame Where().
class Filter : public LogicalPlan {
 public:
  Filter(ExprPtr condition, PlanPtr child)
      : condition_(std::move(condition)), child_(std::move(child)) {}
  static PlanPtr Make(ExprPtr condition, PlanPtr child) {
    return std::make_shared<Filter>(std::move(condition), std::move(child));
  }

  const ExprPtr& condition() const { return condition_; }
  const PlanPtr& child() const { return child_; }

  std::string NodeName() const override { return "Filter"; }
  PlanVector Children() const override { return {child_}; }
  PlanPtr WithNewChildren(PlanVector c) const override {
    return Make(condition_, c[0]);
  }
  AttributeVector Output() const override { return child_->Output(); }
  ExprVector Expressions() const override { return {condition_}; }
  PlanPtr WithNewExpressions(ExprVector exprs) const override {
    return Make(exprs[0], child_);
  }
  std::string Describe() const override {
    return "Filter " + condition_->ToString();
  }

 private:
  ExprPtr condition_;
  PlanPtr child_;
};

/// GROUP BY / DataFrame GroupBy().Agg(). `aggregates` is the full output
/// list (grouping columns and/or aggregate expressions, possibly nested in
/// arithmetic).
class Aggregate : public LogicalPlan {
 public:
  Aggregate(ExprVector groupings, std::vector<NamedExprPtr> aggregates,
            PlanPtr child)
      : groupings_(std::move(groupings)),
        aggregates_(std::move(aggregates)),
        child_(std::move(child)) {}
  static PlanPtr Make(ExprVector groupings, std::vector<NamedExprPtr> aggregates,
                      PlanPtr child) {
    return std::make_shared<Aggregate>(std::move(groupings), std::move(aggregates),
                                       std::move(child));
  }

  const ExprVector& groupings() const { return groupings_; }
  const std::vector<NamedExprPtr>& aggregates() const { return aggregates_; }
  const PlanPtr& child() const { return child_; }

  std::string NodeName() const override { return "Aggregate"; }
  PlanVector Children() const override { return {child_}; }
  PlanPtr WithNewChildren(PlanVector c) const override {
    return Make(groupings_, aggregates_, c[0]);
  }
  AttributeVector Output() const override;
  ExprVector Expressions() const override;
  PlanPtr WithNewExpressions(ExprVector exprs) const override;
  bool resolved() const override;
  std::string Describe() const override;

 private:
  ExprVector groupings_;
  std::vector<NamedExprPtr> aggregates_;
  PlanPtr child_;
};

/// Sort key: an expression plus direction. Modeled as an expression so the
/// generic transform machinery reaches through it.
class SortOrder : public Expression {
 public:
  SortOrder(ExprPtr child, bool ascending)
      : child_(std::move(child)), ascending_(ascending) {}
  static std::shared_ptr<const SortOrder> Make(ExprPtr child, bool ascending) {
    return std::make_shared<SortOrder>(std::move(child), ascending);
  }
  const ExprPtr& child() const { return child_; }
  bool ascending() const { return ascending_; }

  std::string NodeName() const override { return "SortOrder"; }
  ExprVector Children() const override { return {child_}; }
  ExprPtr WithNewChildren(ExprVector c) const override {
    return Make(c[0], ascending_);
  }
  DataTypePtr data_type() const override { return child_->data_type(); }
  Value Eval(const Row& row) const override { return child_->Eval(row); }
  std::string ToString() const override {
    return child_->ToString() + (ascending_ ? " ASC" : " DESC");
  }

 private:
  ExprPtr child_;
  bool ascending_;
};

/// ORDER BY.
class Sort : public LogicalPlan {
 public:
  Sort(std::vector<std::shared_ptr<const SortOrder>> orders, PlanPtr child)
      : orders_(std::move(orders)), child_(std::move(child)) {}
  static PlanPtr Make(std::vector<std::shared_ptr<const SortOrder>> orders,
                      PlanPtr child) {
    return std::make_shared<Sort>(std::move(orders), std::move(child));
  }

  const std::vector<std::shared_ptr<const SortOrder>>& orders() const {
    return orders_;
  }
  const PlanPtr& child() const { return child_; }

  std::string NodeName() const override { return "Sort"; }
  PlanVector Children() const override { return {child_}; }
  PlanPtr WithNewChildren(PlanVector c) const override { return Make(orders_, c[0]); }
  AttributeVector Output() const override { return child_->Output(); }
  ExprVector Expressions() const override;
  PlanPtr WithNewExpressions(ExprVector exprs) const override;
  std::string Describe() const override;

 private:
  std::vector<std::shared_ptr<const SortOrder>> orders_;
  PlanPtr child_;
};

/// LIMIT n.
class Limit : public LogicalPlan {
 public:
  Limit(int64_t n, PlanPtr child) : n_(n), child_(std::move(child)) {}
  static PlanPtr Make(int64_t n, PlanPtr child) {
    return std::make_shared<Limit>(n, std::move(child));
  }
  int64_t n() const { return n_; }
  const PlanPtr& child() const { return child_; }

  std::string NodeName() const override { return "Limit"; }
  PlanVector Children() const override { return {child_}; }
  PlanPtr WithNewChildren(PlanVector c) const override { return Make(n_, c[0]); }
  AttributeVector Output() const override { return child_->Output(); }
  std::string Describe() const override {
    return "Limit " + std::to_string(n_);
  }

 private:
  int64_t n_;
  PlanPtr child_;
};

/// SELECT DISTINCT.
class Distinct : public LogicalPlan {
 public:
  explicit Distinct(PlanPtr child) : child_(std::move(child)) {}
  static PlanPtr Make(PlanPtr child) {
    return std::make_shared<Distinct>(std::move(child));
  }
  const PlanPtr& child() const { return child_; }

  std::string NodeName() const override { return "Distinct"; }
  PlanVector Children() const override { return {child_}; }
  PlanPtr WithNewChildren(PlanVector c) const override { return Make(c[0]); }
  AttributeVector Output() const override { return child_->Output(); }
  std::string Describe() const override { return "Distinct"; }

 private:
  PlanPtr child_;
};

/// Names a subtree; output attributes gain the alias as qualifier, so
/// `t.col` resolves (FROM x AS t / registerTempTable).
class SubqueryAlias : public LogicalPlan {
 public:
  SubqueryAlias(std::string alias, PlanPtr child)
      : alias_(std::move(alias)), child_(std::move(child)) {}
  static PlanPtr Make(std::string alias, PlanPtr child) {
    return std::make_shared<SubqueryAlias>(std::move(alias), std::move(child));
  }
  const std::string& alias() const { return alias_; }
  const PlanPtr& child() const { return child_; }

  std::string NodeName() const override { return "SubqueryAlias"; }
  PlanVector Children() const override { return {child_}; }
  PlanPtr WithNewChildren(PlanVector c) const override { return Make(alias_, c[0]); }
  AttributeVector Output() const override;
  std::string Describe() const override { return "SubqueryAlias " + alias_; }

 private:
  std::string alias_;
  PlanPtr child_;
};

/// Bernoulli sample of the child (used by tests and the online-aggregation
/// module's batched relations).
class Sample : public LogicalPlan {
 public:
  Sample(double fraction, uint64_t seed, PlanPtr child)
      : fraction_(fraction), seed_(seed), child_(std::move(child)) {}
  static PlanPtr Make(double fraction, uint64_t seed, PlanPtr child) {
    return std::make_shared<Sample>(fraction, seed, std::move(child));
  }
  double fraction() const { return fraction_; }
  uint64_t seed() const { return seed_; }
  const PlanPtr& child() const { return child_; }

  std::string NodeName() const override { return "Sample"; }
  PlanVector Children() const override { return {child_}; }
  PlanPtr WithNewChildren(PlanVector c) const override {
    return Make(fraction_, seed_, c[0]);
  }
  AttributeVector Output() const override { return child_->Output(); }
  std::string Describe() const override;

 private:
  double fraction_;
  uint64_t seed_;
  PlanPtr child_;
};

// ---------------------------------------------------------------------------
// Binary / n-ary nodes
// ---------------------------------------------------------------------------

enum class JoinType {
  kInner,
  kLeftOuter,
  kRightOuter,
  kFullOuter,
  kLeftSemi,
  kLeftAnti,
  kCross,
};

std::string JoinTypeName(JoinType t);

/// JOIN with an optional condition.
class Join : public LogicalPlan {
 public:
  Join(PlanPtr left, PlanPtr right, JoinType join_type, ExprPtr condition)
      : left_(std::move(left)),
        right_(std::move(right)),
        join_type_(join_type),
        condition_(std::move(condition)) {}
  static PlanPtr Make(PlanPtr left, PlanPtr right, JoinType join_type,
                      ExprPtr condition) {
    return std::make_shared<Join>(std::move(left), std::move(right), join_type,
                                  std::move(condition));
  }

  const PlanPtr& left() const { return left_; }
  const PlanPtr& right() const { return right_; }
  JoinType join_type() const { return join_type_; }
  const ExprPtr& condition() const { return condition_; }  // may be null

  std::string NodeName() const override { return "Join"; }
  PlanVector Children() const override { return {left_, right_}; }
  PlanPtr WithNewChildren(PlanVector c) const override {
    return Make(c[0], c[1], join_type_, condition_);
  }
  AttributeVector Output() const override;
  ExprVector Expressions() const override {
    return condition_ ? ExprVector{condition_} : ExprVector{};
  }
  PlanPtr WithNewExpressions(ExprVector exprs) const override {
    if (exprs.empty()) return self();
    return Make(left_, right_, join_type_, exprs[0]);
  }
  std::string Describe() const override;

 private:
  PlanPtr left_;
  PlanPtr right_;
  JoinType join_type_;
  ExprPtr condition_;
};

/// UNION ALL of same-arity children.
class Union : public LogicalPlan {
 public:
  explicit Union(PlanVector children) : children_(std::move(children)) {}
  static PlanPtr Make(PlanVector children) {
    return std::make_shared<Union>(std::move(children));
  }

  std::string NodeName() const override { return "Union"; }
  PlanVector Children() const override { return children_; }
  PlanPtr WithNewChildren(PlanVector c) const override { return Make(std::move(c)); }
  AttributeVector Output() const override;
  std::string Describe() const override { return "Union"; }

 private:
  PlanVector children_;
};

/// `value IN (SELECT ...)` — a predicate holding a whole query plan.
/// Never survives analysis: the analyzer rewrites a Filter containing it
/// into a left-semi join (NOT IN into a left-anti join). Uncorrelated
/// subqueries only.
class InSubquery : public Expression {
 public:
  InSubquery(ExprPtr value, PlanPtr subquery)
      : value_(std::move(value)), subquery_(std::move(subquery)) {}
  static ExprPtr Make(ExprPtr value, PlanPtr subquery) {
    return std::make_shared<InSubquery>(std::move(value), std::move(subquery));
  }

  const ExprPtr& value() const { return value_; }
  const PlanPtr& subquery() const { return subquery_; }

  std::string NodeName() const override { return "InSubquery"; }
  ExprVector Children() const override { return {value_}; }
  ExprPtr WithNewChildren(ExprVector c) const override {
    return Make(c[0], subquery_);
  }
  DataTypePtr data_type() const override { return DataType::Boolean(); }
  bool resolved() const override { return false; }  // must be rewritten
  Value Eval(const Row&) const override {
    throw ExecutionError("IN subquery must be rewritten to a join");
  }
  std::string ToString() const override {
    return value_->ToString() + " IN (subquery)";
  }

 private:
  ExprPtr value_;
  PlanPtr subquery_;
};

/// Collects all attributes referenced by `expr`.
void CollectReferences(const ExprPtr& expr, AttributeVector* out);

/// True if every attribute referenced by `expr` appears in `attrs`.
bool ReferencesSubsetOf(const ExprPtr& expr, const AttributeVector& attrs);

/// Splits a conjunctive predicate into its AND-ed factors.
ExprVector SplitConjuncts(const ExprPtr& condition);

/// Rebuilds a conjunction from factors (empty -> null pointer).
ExprPtr CombineConjuncts(const ExprVector& conjuncts);

}  // namespace ssql

#endif  // SSQL_CATALYST_PLAN_LOGICAL_PLAN_H_
