#include "catalyst/tree/rule_executor.h"

#include "engine/query_profile.h"
#include "util/status.h"
#include "util/trace.h"

namespace ssql {

PlanPtr RuleExecutor::Execute(const PlanPtr& plan,
                              std::vector<TraceEntry>* trace,
                              QueryProfile* profile) const {
  PlanPtr current = plan;
  for (const RuleBatch& batch : batches_) {
    int iteration = 0;
    while (iteration < batch.max_iterations) {
      ++iteration;
      std::string before = current->TreeString();
      for (const PlanRule& rule : batch.rules) {
        std::string rule_before = current->TreeString();
        int64_t rule_start_ns = profile != nullptr ? TraceNowNs() : 0;
        PlanPtr next = rule.apply(current);
        // "Effective" means the rewrite changed the tree, not merely that a
        // new node was allocated — rules often rebuild identical subtrees.
        // Only rendered when someone is listening (trace/profile).
        bool effective = (trace != nullptr || profile != nullptr) && next &&
                         next.get() != current.get() &&
                         next->TreeString() != rule_before;
        if (profile != nullptr) {
          profile->AddRuleStat(batch.name, rule.name, effective,
                               TraceNowNs() - rule_start_ns);
        }
        if (next && next.get() != current.get()) {
          if (trace != nullptr && effective) {
            trace->push_back({batch.name, rule.name, iteration});
          }
          current = std::move(next);
        }
      }
      // Fixed point: the whole batch produced no textual change.
      if (current->TreeString() == before) break;
      if (iteration == batch.max_iterations && batch.max_iterations > 1) {
        // Hitting the cap usually signals a rule that oscillates; the tree
        // is still valid, so proceed, but this is a bug worth surfacing in
        // debug builds.
        break;
      }
    }
  }
  return current;
}

}  // namespace ssql
