#include "catalyst/tree/rule_executor.h"

#include "util/status.h"

namespace ssql {

PlanPtr RuleExecutor::Execute(const PlanPtr& plan,
                              std::vector<TraceEntry>* trace) const {
  PlanPtr current = plan;
  for (const RuleBatch& batch : batches_) {
    int iteration = 0;
    while (iteration < batch.max_iterations) {
      ++iteration;
      std::string before = current->TreeString();
      for (const PlanRule& rule : batch.rules) {
        std::string rule_before = current->TreeString();
        PlanPtr next = rule.apply(current);
        if (next && next.get() != current.get()) {
          if (trace != nullptr && next->TreeString() != rule_before) {
            trace->push_back({batch.name, rule.name, iteration});
          }
          current = std::move(next);
        }
      }
      // Fixed point: the whole batch produced no textual change.
      if (current->TreeString() == before) break;
      if (iteration == batch.max_iterations && batch.max_iterations > 1) {
        // Hitting the cap usually signals a rule that oscillates; the tree
        // is still valid, so proceed, but this is a bug worth surfacing in
        // debug builds.
        break;
      }
    }
  }
  return current;
}

}  // namespace ssql
