#ifndef SSQL_CATALYST_TREE_RULE_EXECUTOR_H_
#define SSQL_CATALYST_TREE_RULE_EXECUTOR_H_

#include <functional>
#include <string>
#include <vector>

#include "catalyst/plan/logical_plan.h"

namespace ssql {

class QueryProfile;

/// A whole-plan rewrite rule — Catalyst's Rule[LogicalPlan] (Section 4.2).
/// Rules return a new plan (or the input unchanged); most are written as a
/// TransformUp/TransformDown with pattern-matching lambdas.
struct PlanRule {
  std::string name;
  std::function<PlanPtr(const PlanPtr&)> apply;
};

/// A named group of rules executed together. `max_iterations == 1` is
/// Catalyst's Once strategy; larger values run the batch repeatedly until
/// the tree reaches a fixed point or the iteration cap (Section 4.2,
/// "Catalyst groups rules into batches, and executes each batch until it
/// reaches a fixed point").
struct RuleBatch {
  std::string name;
  int max_iterations;
  std::vector<PlanRule> rules;
};

/// Runs batches of rules over logical plans. Optionally records a trace of
/// effective rule applications, which tests use to assert optimizer
/// behaviour and which powers EXPLAIN-style debugging.
class RuleExecutor {
 public:
  explicit RuleExecutor(std::vector<RuleBatch> batches)
      : batches_(std::move(batches)) {}

  struct TraceEntry {
    std::string batch;
    std::string rule;
    int iteration;
  };

  /// Applies all batches in order; returns the rewritten plan. If `trace`
  /// is non-null, appends one entry per rule application that changed the
  /// plan. If `profile` is non-null, per-rule invocation counts, effective
  /// rewrites, and wall time are accumulated on it (the "EXPLAIN-style
  /// debugging" statistics shown by EXPLAIN ANALYZE).
  PlanPtr Execute(const PlanPtr& plan,
                  std::vector<TraceEntry>* trace = nullptr,
                  QueryProfile* profile = nullptr) const;

  const std::vector<RuleBatch>& batches() const { return batches_; }

 private:
  std::vector<RuleBatch> batches_;
};

}  // namespace ssql

#endif  // SSQL_CATALYST_TREE_RULE_EXECUTOR_H_
