#ifndef SSQL_CATALYST_OPTIMIZER_EXPRESSION_RULES_H_
#define SSQL_CATALYST_OPTIMIZER_EXPRESSION_RULES_H_

#include "catalyst/expr/expression.h"

namespace ssql {

/// Expression-level optimizer rewrites (Section 4.3.2). Each is a single
/// node-local pattern usable with TransformUp; `OptimizeExpressionsRule`
/// composes them for the optimizer pipeline. All are identity-preserving
/// when nothing matches, so they are fixed-point safe.

/// Evaluates foldable subtrees to literals: 1+2 -> 3, and with repetition
/// (x+0)+(3+3) -> x+6 (the paper's Section 4.2 example).
ExprPtr ConstantFoldingRule(const ExprPtr& e);

/// Null-propagates strict operators with a known-null input:
/// x + null -> null, null < e -> null, etc.
ExprPtr NullPropagationRule(const ExprPtr& e);

/// Boolean algebra: true AND x -> x, false OR x -> x, NOT(NOT x) -> x,
/// x = x -> true (for non-nullable deterministic x), ...
ExprPtr BooleanSimplificationRule(const ExprPtr& e);

/// The paper's 12-line LIKE rule: patterns without wildcards become
/// equality, 'abc%' -> StartsWith, '%abc' -> EndsWith, '%abc%' -> Contains.
ExprPtr SimplifyLikeRule(const ExprPtr& e);

/// Removes casts to the expression's own type.
ExprPtr SimplifyCastRule(const ExprPtr& e);

/// CASE WHEN true THEN a ... -> a; drops always-false branches.
ExprPtr SimplifyCaseWhenRule(const ExprPtr& e);

/// Applies all of the above to one node (composition used by the
/// optimizer's expression batch).
ExprPtr OptimizeExpressionNode(const ExprPtr& e);

}  // namespace ssql

#endif  // SSQL_CATALYST_OPTIMIZER_EXPRESSION_RULES_H_
