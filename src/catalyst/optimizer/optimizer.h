#ifndef SSQL_CATALYST_OPTIMIZER_OPTIMIZER_H_
#define SSQL_CATALYST_OPTIMIZER_OPTIMIZER_H_

#include "catalyst/tree/rule_executor.h"

namespace ssql {

/// Options controlling which rule batches run; the Figure 8 "Shark-mode"
/// baseline disables source pushdown (and the planner separately disables
/// codegen/join selection).
struct OptimizerOptions {
  bool pushdown_enabled = true;
};

/// The logical optimization phase (Section 4.3.2): batches of rule-based
/// rewrites run to fixed point — constant folding, predicate pushdown,
/// projection pruning, null propagation, Boolean simplification, LIKE
/// simplification and the DecimalAggregates rule.
class Optimizer {
 public:
  explicit Optimizer(OptimizerOptions options = OptimizerOptions());

  /// Rewrites an analyzed plan. Optionally records which rules fired
  /// (`trace`) and per-rule invocation/effective/time statistics
  /// (`profile`).
  PlanPtr Optimize(const PlanPtr& plan,
                   std::vector<RuleExecutor::TraceEntry>* trace = nullptr,
                   QueryProfile* profile = nullptr) const;

 private:
  RuleExecutor executor_;
};

}  // namespace ssql

#endif  // SSQL_CATALYST_OPTIMIZER_OPTIMIZER_H_
