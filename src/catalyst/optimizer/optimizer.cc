#include "catalyst/optimizer/optimizer.h"

#include "catalyst/optimizer/plan_rules.h"

namespace ssql {

namespace {

std::vector<RuleBatch> MakeBatches(const OptimizerOptions& options) {
  std::vector<RuleBatch> batches;

  batches.push_back(RuleBatch{
      "Finish Analysis",
      1,
      {{"EliminateSubqueryAliases", EliminateSubqueryAliasesRule}}});

  batches.push_back(RuleBatch{
      "Operator Optimizations",
      100,
      {
          {"CombineFilters", CombineFiltersRule},
          {"CombineProjects", CombineProjectsRule},
          {"CombineLimits", CombineLimitsRule},
          {"PushProjectThroughLimit", PushProjectThroughLimitRule},
          {"OptimizeExpressions", OptimizeExpressionsRule},
          {"PushFilterThroughProject", PushFilterThroughProjectRule},
          {"PushFilterThroughJoin", PushFilterThroughJoinRule},
          {"PushFilterThroughAggregate", PushFilterThroughAggregateRule},
          {"SimplifyFilters", SimplifyFiltersRule},
          {"DecimalAggregates", DecimalAggregatesRule},
      }});

  if (options.pushdown_enabled) {
    batches.push_back(RuleBatch{
        "Data Source Pushdown",
        1,
        {
            {"PushFiltersIntoRelation", PushFiltersIntoRelationRule},
            {"PruneColumns", PruneColumnsRule},
        }});
  }

  return batches;
}

}  // namespace

Optimizer::Optimizer(OptimizerOptions options)
    : executor_(MakeBatches(options)) {}

PlanPtr Optimizer::Optimize(const PlanPtr& plan,
                            std::vector<RuleExecutor::TraceEntry>* trace,
                            QueryProfile* profile) const {
  return executor_.Execute(plan, trace, profile);
}

}  // namespace ssql
