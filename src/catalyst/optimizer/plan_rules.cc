#include "catalyst/optimizer/plan_rules.h"

#include <unordered_map>
#include <unordered_set>

#include "catalyst/expr/aggregates.h"
#include "catalyst/expr/arithmetic.h"
#include "catalyst/expr/literal.h"
#include "catalyst/expr/predicates.h"
#include "catalyst/optimizer/expression_rules.h"
#include "types/schema.h"

namespace ssql {

ExprPtr SubstituteAttributes(
    const ExprPtr& expr, const std::unordered_map<ExprId, ExprPtr>& mapping) {
  return expr->TransformUp([&mapping](const ExprPtr& e) -> ExprPtr {
    const auto* attr = As<AttributeReference>(e);
    if (attr == nullptr) return e;
    auto it = mapping.find(attr->expr_id());
    return it == mapping.end() ? e : it->second;
  });
}

namespace {

/// Builds the alias-substitution map for a Project's output.
std::unordered_map<ExprId, ExprPtr> AliasMap(
    const std::vector<NamedExprPtr>& projections) {
  std::unordered_map<ExprId, ExprPtr> mapping;
  for (const auto& p : projections) {
    if (const auto* alias = As<Alias>(p)) {
      mapping[alias->expr_id()] = alias->child();
    }
    // Plain attributes map to themselves; no entry needed.
  }
  return mapping;
}

/// True when all projections are deterministic (safe to push through).
bool AllDeterministic(const std::vector<NamedExprPtr>& projections) {
  for (const auto& p : projections) {
    if (!p->deterministic()) return false;
  }
  return true;
}

}  // namespace

PlanPtr EliminateSubqueryAliasesRule(const PlanPtr& plan) {
  return plan->TransformUp([](const PlanPtr& p) -> PlanPtr {
    const auto* alias = AsPlan<SubqueryAlias>(p);
    return alias == nullptr ? p : alias->child();
  });
}

PlanPtr CombineFiltersRule(const PlanPtr& plan) {
  return plan->TransformUp([](const PlanPtr& p) -> PlanPtr {
    const auto* outer = AsPlan<Filter>(p);
    if (outer == nullptr) return p;
    const auto* inner = AsPlan<Filter>(outer->child());
    if (inner == nullptr) return p;
    return Filter::Make(And::Make(inner->condition(), outer->condition()),
                        inner->child());
  });
}

PlanPtr CombineProjectsRule(const PlanPtr& plan) {
  return plan->TransformUp([](const PlanPtr& p) -> PlanPtr {
    const auto* outer = AsPlan<Project>(p);
    if (outer == nullptr) return p;
    const auto* inner = AsPlan<Project>(outer->child());
    if (inner == nullptr) return p;
    if (!AllDeterministic(inner->projections())) return p;
    auto mapping = AliasMap(inner->projections());
    std::vector<NamedExprPtr> merged;
    merged.reserve(outer->projections().size());
    for (const auto& proj : outer->projections()) {
      ExprPtr substituted = SubstituteAttributes(proj, mapping);
      if (auto named =
              std::dynamic_pointer_cast<const NamedExpression>(substituted)) {
        merged.push_back(std::move(named));
      } else {
        // An outer attribute was replaced by the inner alias's expression:
        // keep the outer expression ID so parents (Sort, further Projects)
        // still bind.
        merged.push_back(
            Alias::MakeWithId(substituted, proj->name(), proj->expr_id()));
      }
    }
    return Project::Make(std::move(merged), inner->child());
  });
}

PlanPtr CombineLimitsRule(const PlanPtr& plan) {
  return plan->TransformUp([](const PlanPtr& p) -> PlanPtr {
    const auto* outer = AsPlan<Limit>(p);
    if (outer == nullptr) return p;
    const auto* inner = AsPlan<Limit>(outer->child());
    if (inner == nullptr) return p;
    return Limit::Make(std::min(outer->n(), inner->n()), inner->child());
  });
}

PlanPtr PushProjectThroughLimitRule(const PlanPtr& plan) {
  return plan->TransformUp([](const PlanPtr& p) -> PlanPtr {
    const auto* project = AsPlan<Project>(p);
    if (project == nullptr) return p;
    const auto* limit = AsPlan<Limit>(project->child());
    if (limit == nullptr) return p;
    if (!AllDeterministic(project->projections())) return p;
    return Limit::Make(limit->n(),
                       Project::Make(project->projections(), limit->child()));
  });
}

PlanPtr OptimizeExpressionsRule(const PlanPtr& plan) {
  return plan->TransformAllExpressions(
      [](const ExprPtr& e) -> ExprPtr { return OptimizeExpressionNode(e); });
}

PlanPtr PushFilterThroughProjectRule(const PlanPtr& plan) {
  return plan->TransformUp([](const PlanPtr& p) -> PlanPtr {
    const auto* filter = AsPlan<Filter>(p);
    if (filter == nullptr) return p;
    const auto* project = AsPlan<Project>(filter->child());
    if (project == nullptr) return p;
    if (!AllDeterministic(project->projections())) return p;
    if (!filter->condition()->deterministic()) return p;
    auto mapping = AliasMap(project->projections());
    ExprPtr pushed = SubstituteAttributes(filter->condition(), mapping);
    return Project::Make(project->projections(),
                         Filter::Make(pushed, project->child()));
  });
}

PlanPtr PushFilterThroughJoinRule(const PlanPtr& plan) {
  return plan->TransformUp([](const PlanPtr& p) -> PlanPtr {
    // Normalize: treat a Filter directly above a Join and the join's own
    // condition as one pool of conjuncts.
    const auto* filter = AsPlan<Filter>(p);
    const Join* join = filter != nullptr ? AsPlan<Join>(filter->child())
                                         : AsPlan<Join>(p);
    if (join == nullptr) return p;
    if (join->join_type() != JoinType::kInner &&
        join->join_type() != JoinType::kCross) {
      return p;
    }
    ExprVector pool;
    if (filter != nullptr) {
      for (auto& c : SplitConjuncts(filter->condition())) pool.push_back(c);
    }
    for (auto& c : SplitConjuncts(join->condition())) pool.push_back(c);
    if (pool.empty()) return p;

    AttributeVector left_out = join->left()->Output();
    AttributeVector right_out = join->right()->Output();
    ExprVector left_only, right_only, rest;
    for (const auto& c : pool) {
      if (!c->deterministic()) {
        rest.push_back(c);
      } else if (ReferencesSubsetOf(c, left_out)) {
        left_only.push_back(c);
      } else if (ReferencesSubsetOf(c, right_out)) {
        right_only.push_back(c);
      } else {
        rest.push_back(c);
      }
    }
    if (left_only.empty() && right_only.empty()) return p;

    PlanPtr new_left = join->left();
    if (!left_only.empty()) {
      new_left = Filter::Make(CombineConjuncts(left_only), new_left);
    }
    PlanPtr new_right = join->right();
    if (!right_only.empty()) {
      new_right = Filter::Make(CombineConjuncts(right_only), new_right);
    }
    JoinType type = join->join_type();
    ExprPtr new_cond = CombineConjuncts(rest);
    if (type == JoinType::kCross && new_cond) type = JoinType::kInner;
    return Join::Make(new_left, new_right, type, new_cond);
  });
}

PlanPtr PushFilterThroughAggregateRule(const PlanPtr& plan) {
  return plan->TransformUp([](const PlanPtr& p) -> PlanPtr {
    const auto* filter = AsPlan<Filter>(p);
    if (filter == nullptr) return p;
    const auto* agg = AsPlan<Aggregate>(filter->child());
    if (agg == nullptr) return p;
    // Map aggregate output attributes that alias plain grouping
    // expressions back to those expressions.
    std::unordered_map<ExprId, ExprPtr> mapping;
    std::unordered_set<std::string> grouping_keys;
    for (const auto& g : agg->groupings()) grouping_keys.insert(g->ToString());
    for (const auto& out : agg->aggregates()) {
      if (const auto* alias = As<Alias>(out)) {
        if (grouping_keys.count(alias->child()->ToString()) > 0) {
          mapping[alias->expr_id()] = alias->child();
        }
      }
    }
    AttributeVector pushable_attrs;
    for (const auto& g : agg->groupings()) {
      CollectReferences(g, &pushable_attrs);
    }
    ExprVector keep, push;
    for (const auto& c : SplitConjuncts(filter->condition())) {
      if (!c->deterministic() || ContainsAggregate(c)) {
        keep.push_back(c);
        continue;
      }
      ExprPtr rewritten = SubstituteAttributes(c, mapping);
      if (ReferencesSubsetOf(rewritten, pushable_attrs)) {
        push.push_back(rewritten);
      } else {
        keep.push_back(c);
      }
    }
    if (push.empty()) return p;
    PlanPtr pushed = Filter::Make(CombineConjuncts(push), agg->child());
    PlanPtr new_agg = Aggregate::Make(agg->groupings(), agg->aggregates(), pushed);
    if (keep.empty()) return new_agg;
    return Filter::Make(CombineConjuncts(keep), new_agg);
  });
}

PlanPtr SimplifyFiltersRule(const PlanPtr& plan) {
  return plan->TransformUp([](const PlanPtr& p) -> PlanPtr {
    const auto* filter = AsPlan<Filter>(p);
    if (filter == nullptr) return p;
    const auto* lit = As<Literal>(filter->condition());
    if (lit == nullptr) return p;
    if (!lit->value().is_null() && lit->value().bool_value()) {
      return filter->child();
    }
    // Always-false/null filter: empty relation with the same output.
    return LocalRelation::Make(filter->Output(), {});
  });
}

PlanPtr DecimalAggregatesRule(const PlanPtr& plan) {
  return plan->TransformAllExpressions([](const ExprPtr& e) -> ExprPtr {
    const auto* sum = As<Sum>(e);
    if (sum == nullptr || !sum->child()->resolved()) return e;
    if (As<MakeDecimal>(e) != nullptr) return e;
    const DataTypePtr& t = sum->child()->data_type();
    if (t->id() != TypeId::kDecimal) return e;
    const auto& dt = AsDecimal(*t);
    if (dt.precision() + 10 > Decimal::kMaxLongDigits) return e;
    // Avoid re-applying to an already rewritten tree.
    if (As<UnscaledValue>(sum->child()) != nullptr) return e;
    return MakeDecimal::Make(Sum::Make(UnscaledValue::Make(sum->child())),
                             dt.precision() + 10, dt.scale());
  });
}

PlanPtr PushFiltersIntoRelationRule(const PlanPtr& plan) {
  return plan->TransformUp([](const PlanPtr& p) -> PlanPtr {
    const auto* filter = AsPlan<Filter>(p);
    if (filter == nullptr) return p;
    const auto* rel = AsPlan<LogicalRelation>(filter->child());
    if (rel == nullptr) return p;
    AttributeVector rel_out = rel->Output();
    ExprVector keep, push;
    for (const auto& c : SplitConjuncts(filter->condition())) {
      if (c->deterministic() && ReferencesSubsetOf(c, rel_out) &&
          rel->source() != nullptr && rel->source()->CanHandleFilter(*c)) {
        push.push_back(c);
      } else {
        keep.push_back(c);
      }
    }
    if (push.empty()) return p;
    ExprVector all_pushed = rel->pushed_filters();
    all_pushed.insert(all_pushed.end(), push.begin(), push.end());
    PlanPtr new_rel = rel->WithPushedFilters(std::move(all_pushed));
    if (keep.empty()) return new_rel;
    return Filter::Make(CombineConjuncts(keep), new_rel);
  });
}

PlanPtr PruneColumnsRule(const PlanPtr& plan) {
  // Collect every attribute id referenced by any expression in the tree,
  // plus the root output and all Union children outputs (positional).
  std::unordered_set<ExprId> referenced;
  for (const auto& a : plan->Output()) referenced.insert(a->expr_id());
  plan->Foreach([&referenced](const LogicalPlan& node) {
    for (const auto& e : node.Expressions()) {
      AttributeVector attrs;
      CollectReferences(e, &attrs);
      for (const auto& a : attrs) referenced.insert(a->expr_id());
    }
    if (AsPlan<Union>(node) != nullptr) {
      for (const auto& child : node.Children()) {
        for (const auto& a : child->Output()) referenced.insert(a->expr_id());
      }
    }
  });

  return plan->TransformUp([&referenced](const PlanPtr& p) -> PlanPtr {
    const auto* rel = AsPlan<LogicalRelation>(p);
    if (rel == nullptr) return p;
    std::vector<int> required;
    for (int i : rel->required_columns()) {
      if (referenced.count(rel->full_output()[i]->expr_id()) > 0) {
        required.push_back(i);
      }
    }
    if (required.size() == rel->required_columns().size()) return p;
    return rel->WithRequiredColumns(std::move(required));
  });
}

}  // namespace ssql
