#ifndef SSQL_CATALYST_OPTIMIZER_PLAN_RULES_H_
#define SSQL_CATALYST_OPTIMIZER_PLAN_RULES_H_

#include "catalyst/plan/logical_plan.h"

namespace ssql {

/// Plan-level optimizer rules (Section 4.3.2). Each is a whole-plan
/// function suitable for a RuleBatch; all reuse unchanged subtrees.

/// Qualifiers are only needed during analysis; drop alias nodes.
PlanPtr EliminateSubqueryAliasesRule(const PlanPtr& plan);

/// Filter(a, Filter(b, c)) -> Filter(a AND b, c).
PlanPtr CombineFiltersRule(const PlanPtr& plan);

/// Project over Project -> one Project with aliases substituted in.
PlanPtr CombineProjectsRule(const PlanPtr& plan);

/// Limit(a, Limit(b, c)) -> Limit(min(a,b), c).
PlanPtr CombineLimitsRule(const PlanPtr& plan);

/// Project(Limit(n, x)) -> Limit(n, Project(x)): normalizes limits upward
/// so adjacent limits combine and projects merge.
PlanPtr PushProjectThroughLimitRule(const PlanPtr& plan);

/// Applies the expression rewrites of expression_rules.h everywhere.
PlanPtr OptimizeExpressionsRule(const PlanPtr& plan);

/// Filter above Project moves below it (predicate pushdown step 1).
PlanPtr PushFilterThroughProjectRule(const PlanPtr& plan);

/// Filter conjuncts that only touch one side of an inner join move into
/// that side (predicate pushdown step 2). Also splits the join's own
/// condition into per-side filters plus the cross-side residue.
PlanPtr PushFilterThroughJoinRule(const PlanPtr& plan);

/// Filter conjuncts over grouping columns move below the Aggregate.
PlanPtr PushFilterThroughAggregateRule(const PlanPtr& plan);

/// Filter(true) disappears; Filter(false/null) becomes an empty relation.
PlanPtr SimplifyFiltersRule(const PlanPtr& plan);

/// The paper's DecimalAggregates rule (Section 4.3.2): SUM over a decimal
/// with precision + 10 <= 18 becomes integer arithmetic on the unscaled
/// value, rewrapped with MakeDecimal.
PlanPtr DecimalAggregatesRule(const PlanPtr& plan);

/// Moves filter conjuncts the data source can evaluate into the
/// LogicalRelation (Section 4.4.1 pushdown). Exactness is guaranteed by
/// the sources in this repo, so handled conjuncts leave the Filter.
PlanPtr PushFiltersIntoRelationRule(const PlanPtr& plan);

/// Narrows every LogicalRelation to the columns actually referenced
/// anywhere above it (projection pruning).
PlanPtr PruneColumnsRule(const PlanPtr& plan);

/// Replaces attribute references with `mapping[expr_id]` (alias
/// substitution helper shared by several rules; exposed for tests).
ExprPtr SubstituteAttributes(
    const ExprPtr& expr,
    const std::unordered_map<ExprId, ExprPtr>& mapping);

}  // namespace ssql

#endif  // SSQL_CATALYST_OPTIMIZER_PLAN_RULES_H_
