#include "catalyst/optimizer/expression_rules.h"

#include "catalyst/expr/arithmetic.h"
#include "catalyst/expr/case_when.h"
#include "catalyst/expr/cast.h"
#include "catalyst/expr/literal.h"
#include "catalyst/expr/predicates.h"
#include "catalyst/expr/string_ops.h"

namespace ssql {

namespace {

bool IsNullLiteral(const ExprPtr& e) {
  const auto* lit = As<Literal>(e);
  return lit != nullptr && lit->value().is_null();
}

bool IsTrueLiteral(const ExprPtr& e) {
  const auto* lit = As<Literal>(e);
  return lit != nullptr && !lit->value().is_null() &&
         lit->value().type_id() == TypeId::kBoolean && lit->value().bool_value();
}

bool IsFalseLiteral(const ExprPtr& e) {
  const auto* lit = As<Literal>(e);
  return lit != nullptr && !lit->value().is_null() &&
         lit->value().type_id() == TypeId::kBoolean && !lit->value().bool_value();
}

}  // namespace

ExprPtr ConstantFoldingRule(const ExprPtr& e) {
  if (As<Literal>(e) != nullptr) return e;
  if (!e->resolved() || !e->foldable()) return e;
  static const Row kEmptyRow;
  return Literal::Make(e->Eval(kEmptyRow), e->data_type());
}

ExprPtr NullPropagationRule(const ExprPtr& e) {
  // Strict operators: any null literal input nulls the result.
  if (As<BinaryArithmetic>(e) != nullptr || As<BinaryComparison>(e) != nullptr ||
      As<Like>(e) != nullptr || As<UnaryMinus>(e) != nullptr ||
      As<Abs>(e) != nullptr || As<Upper>(e) != nullptr ||
      As<Lower>(e) != nullptr) {
    for (const auto& c : e->Children()) {
      if (IsNullLiteral(c)) {
        return e->resolved() ? Literal::Null(e->data_type())
                             : Literal::Null(DataType::Null());
      }
    }
  }
  if (const auto* n = As<Not>(e)) {
    if (IsNullLiteral(n->child())) return Literal::Null(DataType::Boolean());
  }
  if (const auto* isnull = As<IsNull>(e)) {
    if (IsNullLiteral(isnull->child())) return Literal::True();
    if (isnull->child()->resolved() && !isnull->child()->nullable()) {
      return Literal::False();
    }
  }
  if (const auto* isnotnull = As<IsNotNull>(e)) {
    if (IsNullLiteral(isnotnull->child())) return Literal::False();
    if (isnotnull->child()->resolved() && !isnotnull->child()->nullable()) {
      return Literal::True();
    }
  }
  return e;
}

ExprPtr BooleanSimplificationRule(const ExprPtr& e) {
  if (const auto* a = As<And>(e)) {
    if (IsTrueLiteral(a->left())) return a->right();
    if (IsTrueLiteral(a->right())) return a->left();
    if (IsFalseLiteral(a->left()) || IsFalseLiteral(a->right())) {
      return Literal::False();
    }
    return e;
  }
  if (const auto* o = As<Or>(e)) {
    if (IsFalseLiteral(o->left())) return o->right();
    if (IsFalseLiteral(o->right())) return o->left();
    if (IsTrueLiteral(o->left()) || IsTrueLiteral(o->right())) {
      return Literal::True();
    }
    return e;
  }
  if (const auto* n = As<Not>(e)) {
    if (IsTrueLiteral(n->child())) return Literal::False();
    if (IsFalseLiteral(n->child())) return Literal::True();
    if (const auto* inner = As<Not>(n->child())) return inner->child();
    return e;
  }
  if (const auto* eq = As<EqualTo>(e)) {
    // col = col (same expr-id) is true for non-nullable deterministic exprs.
    if (eq->left()->resolved() && eq->left()->deterministic() &&
        !eq->left()->nullable() && eq->left()->Equals(*eq->right())) {
      return Literal::True();
    }
  }
  return e;
}

ExprPtr SimplifyLikeRule(const ExprPtr& e) {
  const auto* like = As<Like>(e);
  if (like == nullptr) return e;
  const auto* pattern = As<Literal>(like->right());
  if (pattern == nullptr || pattern->value().is_null()) return e;
  const std::string& p = pattern->value().str();
  // Only handle patterns whose only wildcards are leading/trailing '%'.
  auto clean = [](const std::string& s) {
    return s.find('%') == std::string::npos && s.find('_') == std::string::npos &&
           s.find('\\') == std::string::npos;
  };
  if (clean(p)) {
    return EqualTo::Make(like->left(),
                         Literal::Make(Value(p), DataType::String()));
  }
  if (p.size() >= 2 && p.back() == '%' && clean(p.substr(0, p.size() - 1))) {
    return StartsWith::Make(
        like->left(),
        Literal::Make(Value(p.substr(0, p.size() - 1)), DataType::String()));
  }
  if (p.size() >= 2 && p.front() == '%' && clean(p.substr(1))) {
    return EndsWith::Make(like->left(),
                          Literal::Make(Value(p.substr(1)), DataType::String()));
  }
  if (p.size() >= 3 && p.front() == '%' && p.back() == '%' &&
      clean(p.substr(1, p.size() - 2))) {
    return StringContains::Make(
        like->left(),
        Literal::Make(Value(p.substr(1, p.size() - 2)), DataType::String()));
  }
  return e;
}

ExprPtr SimplifyCastRule(const ExprPtr& e) {
  const auto* cast = As<Cast>(e);
  if (cast == nullptr || !cast->child()->resolved()) return e;
  if (cast->child()->data_type()->Equals(*e->data_type())) {
    return cast->child();
  }
  return e;
}

ExprPtr SimplifyCaseWhenRule(const ExprPtr& e) {
  const auto* cw = As<CaseWhen>(e);
  if (cw == nullptr) return e;
  ExprVector children = cw->Children();
  size_t n = cw->num_branches();
  ExprVector kept;
  bool changed = false;
  for (size_t i = 0; i < n; ++i) {
    const ExprPtr& cond = children[2 * i];
    if (IsTrueLiteral(cond)) {
      // Everything after an always-true branch is dead.
      if (i == 0 && kept.empty()) return children[1];
      kept.push_back(Literal::True());
      kept.push_back(children[2 * i + 1]);
      changed = true;
      return CaseWhen::Make(std::move(kept), /*has_else=*/false);
    }
    if (IsFalseLiteral(cond) || IsNullLiteral(cond)) {
      changed = true;  // drop dead branch
      continue;
    }
    kept.push_back(cond);
    kept.push_back(children[2 * i + 1]);
  }
  if (!changed) return e;
  if (kept.empty()) {
    return cw->has_else() ? children.back()
                          : Literal::Null(e->resolved() ? e->data_type()
                                                        : DataType::Null());
  }
  if (cw->has_else()) kept.push_back(children.back());
  return CaseWhen::Make(std::move(kept), cw->has_else());
}

ExprPtr OptimizeExpressionNode(const ExprPtr& e) {
  ExprPtr current = e;
  current = NullPropagationRule(current);
  current = BooleanSimplificationRule(current);
  current = SimplifyLikeRule(current);
  current = SimplifyCastRule(current);
  current = SimplifyCaseWhenRule(current);
  current = ConstantFoldingRule(current);
  return current;
}

}  // namespace ssql
