#ifndef SSQL_CATALYST_CODEGEN_COMPILED_EXPRESSION_H_
#define SSQL_CATALYST_CODEGEN_COMPILED_EXPRESSION_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "catalyst/expr/expression.h"

namespace ssql {

class ColumnVector;
class RowBatch;

/// The code-generation phase (Section 4.3.4), transposed to C++.
///
/// The paper lowers expression trees to Scala ASTs via quasiquotes and
/// compiles them to JVM bytecode, eliminating the per-row cost of walking
/// an interpreted tree (virtual dispatch, branches, boxed values). Without
/// a JIT we lower to the closest C++ analogue: a flat, typed register
/// program executed by a tight dispatch loop. Operands live in primitive
/// register banks (int64/double/string-ref) with separate null flags, so
/// row evaluation performs no allocation and no virtual calls.
///
/// Mirroring the paper's mixed mode ("it was straightforward to combine
/// code-generated evaluation with interpreted evaluation"), any
/// subexpression the compiler does not understand — UDFs, complex types,
/// decimals — compiles to a kCallExpr instruction that invokes the tree
/// interpreter for just that subtree.
class CompiledExpression {
 public:
  /// Compiles a *bound* expression (no AttributeReferences; use
  /// BindReferences first). Returns std::nullopt only if the root type is
  /// unsupported even via fallback (never, in practice).
  static std::optional<CompiledExpression> Compile(const ExprPtr& expr);

  /// Fraction of tree nodes lowered to native instructions (1.0 = fully
  /// compiled, no interpreter fallbacks). Exposed for tests/EXPLAIN.
  double compiled_fraction() const { return compiled_fraction_; }

  /// Per-thread evaluation state: register banks + scratch strings.
  /// Create one Evaluator per worker; Evaluate() does not allocate on the
  /// steady state path.
  class Evaluator {
   public:
    /// Evaluates the program against `row`, returning a boxed result.
    Value Evaluate(const Row& row);

    /// Typed fast paths for hot loops (predicates / numeric projections).
    bool EvaluateBool(const Row& row, bool* is_null);
    int64_t EvaluateInt64(const Row& row, bool* is_null);
    double EvaluateDouble(const Row& row, bool* is_null);

   private:
    friend class CompiledExpression;
    explicit Evaluator(const CompiledExpression* program);
    void Run(const Row& row);

    const CompiledExpression* program_;
    std::vector<int64_t> i64_;
    std::vector<double> f64_;
    std::vector<const std::string*> str_;
    std::vector<std::string> scratch_;
    std::vector<uint8_t> null_;
    std::vector<Value> boxed_;  // results of fallback calls with complex types
  };

  Evaluator NewEvaluator() const { return Evaluator(this); }

  /// Per-thread vectorized evaluation state: one dense lane-vector per
  /// register, evaluated with one tight loop per instruction over the live
  /// rows of a RowBatch instead of re-entering the program per row. Null
  /// semantics mirror Evaluator op for op (same three-valued logic, same
  /// division-by-zero nulling), so batched and row execution produce
  /// bit-identical results. Column loads gather from the ColumnVector banks
  /// unconditionally — legal because null bank slots hold defined zeros —
  /// and interpreter fallbacks (kCallExpr) box the live rows lazily, once
  /// per batch.
  class VectorEvaluator {
   public:
    /// Evaluates the program over the live rows of `batch`, appending one
    /// value per live row to `out` (whose type must be result_type()).
    void EvaluateColumn(const RowBatch& batch, ColumnVector* out);

    /// Predicate form: appends the physical indices of live rows where the
    /// program yields true-and-not-null (SQL WHERE semantics) to
    /// `sel_out`. Requires result_kind() == kBool.
    void EvaluateSelection(const RowBatch& batch,
                           std::vector<uint32_t>* sel_out);

   private:
    friend class CompiledExpression;
    explicit VectorEvaluator(const CompiledExpression* program);
    void Run(const RowBatch& batch);
    /// Boxes the batch's live rows into rows_ for interpreter fallbacks
    /// (at most once per Run).
    void EnsureRowsBoxed(const RowBatch& batch);

    const CompiledExpression* program_;
    size_t n_ = 0;  // live rows in the current Run
    // Register banks, register-major: bank[reg][lane].
    std::vector<std::vector<int64_t>> i64_;
    std::vector<std::vector<double>> f64_;
    std::vector<std::vector<const std::string*>> str_;
    std::vector<std::vector<std::string>> scratch_;
    std::vector<std::vector<uint8_t>> null_;
    std::vector<std::vector<Value>> boxed_;
    std::vector<Row> rows_;  // boxed live rows for fallbacks
    bool rows_boxed_ = false;
  };

  VectorEvaluator NewVectorEvaluator() const { return VectorEvaluator(this); }

  /// Result type classes of the register program.
  enum class Kind : uint8_t { kBool, kI64, kF64, kStr, kBoxed };
  Kind result_kind() const { return result_kind_; }
  DataTypePtr result_type() const { return result_type_; }

 private:
  enum class Op : uint8_t {
    kLoadColI64,   // i64[dst] = row[aux] as int-like
    kLoadColF64,
    kLoadColStr,
    kLoadColBool,
    kLoadConstI64,  // i64[dst] = iconst[aux]
    kLoadConstF64,
    kLoadConstStr,
    kLoadConstBool,
    kLoadNull,  // null[dst] = 1
    kAddI64,
    kSubI64,
    kMulI64,
    kDivI64,
    kRemI64,
    kNegI64,
    kAddF64,
    kSubF64,
    kMulF64,
    kDivF64,
    kNegF64,
    kI64ToF64,
    kF64ToI64,
    kCmpI64,  // i64[dst] = sign(i64[a] - i64[b]); then k*From ops
    kCmpF64,
    kCmpStr,
    kCmpBool,
    kEqFrom,  // bool from comparison result in i64[a], aux = op
    kAnd,     // 3-valued
    kOr,
    kNot,
    kIsNull,
    kIsNotNull,
    kStartsWith,
    kEndsWith,
    kContains,
    kLike,
    kUpper,
    kLower,
    kSubstr,  // str[dst] = substr(str[a], i64[b], i64[aux2]) -- via regs
    kLength,
    kConcat2,
    kCallExpr,  // boxed[dst] = fallback_exprs[aux]->Eval(row)
  };

  /// One instruction; `aux` meaning depends on the opcode (constant index,
  /// comparison code, fallback index).
  struct Instr {
    Op op;
    uint16_t dst;
    uint16_t a;
    uint16_t b;
    int32_t aux;
  };

  struct CompileState;
  struct Slot {
    Kind kind;
    uint16_t reg;
  };
  static Slot CompileNode(const ExprPtr& e, CompileState* state);

  std::vector<Instr> instrs_;
  std::vector<int64_t> iconsts_;
  std::vector<double> fconsts_;
  std::vector<std::string> sconsts_;
  std::vector<ExprPtr> fallbacks_;
  uint16_t num_regs_ = 0;
  uint16_t result_reg_ = 0;
  Kind result_kind_ = Kind::kBoxed;
  DataTypePtr result_type_;
  double compiled_fraction_ = 1.0;
  int total_nodes_ = 0;
  int fallback_nodes_ = 0;
};

}  // namespace ssql

#endif  // SSQL_CATALYST_CODEGEN_COMPILED_EXPRESSION_H_
