#include "catalyst/codegen/compiled_expression.h"

#include <cctype>
#include <cmath>

#include "catalyst/expr/arithmetic.h"
#include "catalyst/expr/cast.h"
#include "catalyst/expr/literal.h"
#include "catalyst/expr/predicates.h"
#include "catalyst/expr/string_ops.h"
#include "util/string_util.h"

namespace ssql {

namespace {

// Comparison codes for kEqFrom's aux operand.
constexpr int kCmpEq = 0;
constexpr int kCmpNe = 1;
constexpr int kCmpLt = 2;
constexpr int kCmpLe = 3;
constexpr int kCmpGt = 4;
constexpr int kCmpGe = 5;

bool IsIntLike(TypeId id) {
  return id == TypeId::kInt32 || id == TypeId::kInt64 || id == TypeId::kDate ||
         id == TypeId::kTimestamp || id == TypeId::kBoolean;
}

}  // namespace

struct CompiledExpression::CompileState {
  CompiledExpression* program;
  uint16_t NewReg() { return program->num_regs_++; }
  void Emit(Op op, uint16_t dst, uint16_t a = 0, uint16_t b = 0, int32_t aux = 0) {
    program->instrs_.push_back(Instr{op, dst, a, b, aux});
  }
};

CompiledExpression::Slot CompiledExpression::CompileNode(const ExprPtr& e,
                                                         CompileState* state) {
  CompiledExpression* prog = state->program;
  ++prog->total_nodes_;

  auto fallback = [&]() -> Slot {
    ++prog->fallback_nodes_;
    uint16_t dst = state->NewReg();
    int idx = static_cast<int>(prog->fallbacks_.size());
    prog->fallbacks_.push_back(e);
    TypeId id = e->data_type()->id();
    Kind kind;
    if (IsIntLike(id)) {
      kind = id == TypeId::kBoolean ? Kind::kBool : Kind::kI64;
    } else if (id == TypeId::kDouble) {
      kind = Kind::kF64;
    } else if (id == TypeId::kString) {
      kind = Kind::kStr;
    } else {
      kind = Kind::kBoxed;
    }
    state->Emit(Op::kCallExpr, dst, 0, static_cast<uint16_t>(kind), idx);
    return Slot{kind, dst};
  };

  // Column loads.
  if (const auto* ref = As<BoundReference>(e)) {
    TypeId id = ref->data_type()->id();
    uint16_t dst = state->NewReg();
    if (id == TypeId::kBoolean) {
      state->Emit(Op::kLoadColBool, dst, 0, 0, ref->ordinal());
      return Slot{Kind::kBool, dst};
    }
    if (IsIntLike(id)) {
      state->Emit(Op::kLoadColI64, dst, 0, 0, ref->ordinal());
      return Slot{Kind::kI64, dst};
    }
    if (id == TypeId::kDouble) {
      state->Emit(Op::kLoadColF64, dst, 0, 0, ref->ordinal());
      return Slot{Kind::kF64, dst};
    }
    if (id == TypeId::kString) {
      state->Emit(Op::kLoadColStr, dst, 0, 0, ref->ordinal());
      return Slot{Kind::kStr, dst};
    }
    return fallback();
  }

  // Literals.
  if (const auto* lit = As<Literal>(e)) {
    uint16_t dst = state->NewReg();
    const Value& v = lit->value();
    TypeId id = lit->data_type()->id();
    if (v.is_null()) {
      Kind kind = id == TypeId::kBoolean ? Kind::kBool
                  : IsIntLike(id)        ? Kind::kI64
                  : id == TypeId::kDouble ? Kind::kF64
                  : id == TypeId::kString ? Kind::kStr
                                          : Kind::kBoxed;
      state->Emit(Op::kLoadNull, dst, 0, static_cast<uint16_t>(kind));
      return Slot{kind, dst};
    }
    if (id == TypeId::kBoolean) {
      state->Emit(Op::kLoadConstBool, dst, 0, 0, v.bool_value() ? 1 : 0);
      return Slot{Kind::kBool, dst};
    }
    if (IsIntLike(id)) {
      int idx = static_cast<int>(prog->iconsts_.size());
      prog->iconsts_.push_back(v.AsInt64());
      state->Emit(Op::kLoadConstI64, dst, 0, 0, idx);
      return Slot{Kind::kI64, dst};
    }
    if (id == TypeId::kDouble) {
      int idx = static_cast<int>(prog->fconsts_.size());
      prog->fconsts_.push_back(v.f64());
      state->Emit(Op::kLoadConstF64, dst, 0, 0, idx);
      return Slot{Kind::kF64, dst};
    }
    if (id == TypeId::kString) {
      int idx = static_cast<int>(prog->sconsts_.size());
      prog->sconsts_.push_back(v.str());
      state->Emit(Op::kLoadConstStr, dst, 0, 0, idx);
      return Slot{Kind::kStr, dst};
    }
    return fallback();
  }

  // Numeric binary arithmetic.
  if (const auto* arith = As<BinaryArithmetic>(e)) {
    TypeId out = e->data_type()->id();
    if (out != TypeId::kInt32 && out != TypeId::kInt64 && out != TypeId::kDouble) {
      return fallback();
    }
    Slot l = CompileNode(arith->left(), state);
    Slot r = CompileNode(arith->right(), state);
    if ((l.kind != Kind::kI64 && l.kind != Kind::kF64) ||
        (r.kind != Kind::kI64 && r.kind != Kind::kF64)) {
      return fallback();
    }
    bool is_f64 = out == TypeId::kDouble;
    // Promote mixed operands.
    if (is_f64 && l.kind == Kind::kI64) {
      uint16_t p = state->NewReg();
      state->Emit(Op::kI64ToF64, p, l.reg);
      l = Slot{Kind::kF64, p};
    }
    if (is_f64 && r.kind == Kind::kI64) {
      uint16_t p = state->NewReg();
      state->Emit(Op::kI64ToF64, p, r.reg);
      r = Slot{Kind::kF64, p};
    }
    uint16_t dst = state->NewReg();
    Op op;
    if (As<Add>(e)) {
      op = is_f64 ? Op::kAddF64 : Op::kAddI64;
    } else if (As<Subtract>(e)) {
      op = is_f64 ? Op::kSubF64 : Op::kSubI64;
    } else if (As<Multiply>(e)) {
      op = is_f64 ? Op::kMulF64 : Op::kMulI64;
    } else if (As<Divide>(e)) {
      op = is_f64 ? Op::kDivF64 : Op::kDivI64;
    } else if (As<Remainder>(e) && !is_f64) {
      op = Op::kRemI64;
    } else {
      return fallback();
    }
    state->Emit(op, dst, l.reg, r.reg);
    return Slot{is_f64 ? Kind::kF64 : Kind::kI64, dst};
  }

  if (const auto* neg = As<UnaryMinus>(e)) {
    Slot c = CompileNode(neg->Children()[0], state);
    if (c.kind == Kind::kI64) {
      uint16_t dst = state->NewReg();
      state->Emit(Op::kNegI64, dst, c.reg);
      return Slot{Kind::kI64, dst};
    }
    if (c.kind == Kind::kF64) {
      uint16_t dst = state->NewReg();
      state->Emit(Op::kNegF64, dst, c.reg);
      return Slot{Kind::kF64, dst};
    }
    return fallback();
  }

  // Comparisons.
  if (const auto* cmp = As<BinaryComparison>(e)) {
    Slot l = CompileNode(cmp->left(), state);
    Slot r = CompileNode(cmp->right(), state);
    Op cmp_op;
    if (l.kind == Kind::kI64 && r.kind == Kind::kI64) {
      cmp_op = Op::kCmpI64;
    } else if ((l.kind == Kind::kF64 || l.kind == Kind::kI64) &&
               (r.kind == Kind::kF64 || r.kind == Kind::kI64)) {
      if (l.kind == Kind::kI64) {
        uint16_t p = state->NewReg();
        state->Emit(Op::kI64ToF64, p, l.reg);
        l = Slot{Kind::kF64, p};
      }
      if (r.kind == Kind::kI64) {
        uint16_t p = state->NewReg();
        state->Emit(Op::kI64ToF64, p, r.reg);
        r = Slot{Kind::kF64, p};
      }
      cmp_op = Op::kCmpF64;
    } else if (l.kind == Kind::kStr && r.kind == Kind::kStr) {
      cmp_op = Op::kCmpStr;
    } else if (l.kind == Kind::kBool && r.kind == Kind::kBool) {
      cmp_op = Op::kCmpBool;
    } else {
      return fallback();
    }
    uint16_t sign = state->NewReg();
    state->Emit(cmp_op, sign, l.reg, r.reg);
    int code;
    if (As<EqualTo>(e)) {
      code = kCmpEq;
    } else if (As<NotEqualTo>(e)) {
      code = kCmpNe;
    } else if (As<LessThan>(e)) {
      code = kCmpLt;
    } else if (As<LessThanOrEqual>(e)) {
      code = kCmpLe;
    } else if (As<GreaterThan>(e)) {
      code = kCmpGt;
    } else {
      code = kCmpGe;
    }
    uint16_t dst = state->NewReg();
    state->Emit(Op::kEqFrom, dst, sign, 0, code);
    return Slot{Kind::kBool, dst};
  }

  // Boolean connectives.
  if (As<And>(e) != nullptr || As<Or>(e) != nullptr) {
    const auto* bin = As<BinaryExpression>(e);
    Slot l = CompileNode(bin->left(), state);
    Slot r = CompileNode(bin->right(), state);
    if (l.kind != Kind::kBool || r.kind != Kind::kBool) {
      return fallback();
    }
    uint16_t dst = state->NewReg();
    state->Emit(As<And>(e) != nullptr ? Op::kAnd : Op::kOr, dst, l.reg, r.reg);
    return Slot{Kind::kBool, dst};
  }
  if (const auto* n = As<Not>(e)) {
    Slot c = CompileNode(n->child(), state);
    if (c.kind != Kind::kBool) {
      return fallback();
    }
    uint16_t dst = state->NewReg();
    state->Emit(Op::kNot, dst, c.reg);
    return Slot{Kind::kBool, dst};
  }

  // Null checks work on every register kind.
  if (const auto* isnull = As<IsNull>(e)) {
    Slot c = CompileNode(isnull->child(), state);
    uint16_t dst = state->NewReg();
    state->Emit(Op::kIsNull, dst, c.reg);
    return Slot{Kind::kBool, dst};
  }
  if (const auto* isnotnull = As<IsNotNull>(e)) {
    Slot c = CompileNode(isnotnull->child(), state);
    uint16_t dst = state->NewReg();
    state->Emit(Op::kIsNotNull, dst, c.reg);
    return Slot{Kind::kBool, dst};
  }

  // String predicates and functions.
  auto binary_str = [&](const BinaryExpression* bin, Op op) -> Slot {
    Slot l = CompileNode(bin->left(), state);
    Slot r = CompileNode(bin->right(), state);
    if (l.kind != Kind::kStr || r.kind != Kind::kStr) {
      return fallback();
    }
    uint16_t dst = state->NewReg();
    state->Emit(op, dst, l.reg, r.reg);
    return Slot{Kind::kBool, dst};
  };
  if (const auto* sw = As<StartsWith>(e)) return binary_str(sw, Op::kStartsWith);
  if (const auto* ew = As<EndsWith>(e)) return binary_str(ew, Op::kEndsWith);
  if (const auto* sc = As<StringContains>(e)) return binary_str(sc, Op::kContains);
  if (const auto* lk = As<Like>(e)) return binary_str(lk, Op::kLike);

  if (As<Upper>(e) != nullptr || As<Lower>(e) != nullptr) {
    Slot c = CompileNode(e->Children()[0], state);
    if (c.kind != Kind::kStr) {
      return fallback();
    }
    uint16_t dst = state->NewReg();
    state->Emit(As<Upper>(e) != nullptr ? Op::kUpper : Op::kLower, dst, c.reg);
    return Slot{Kind::kStr, dst};
  }
  if (const auto* len = As<StringLength>(e)) {
    Slot c = CompileNode(len->Children()[0], state);
    if (c.kind != Kind::kStr) {
      return fallback();
    }
    uint16_t dst = state->NewReg();
    state->Emit(Op::kLength, dst, c.reg);
    return Slot{Kind::kI64, dst};
  }
  if (const auto* sub = As<Substring>(e)) {
    ExprVector children = sub->Children();
    Slot s = CompileNode(children[0], state);
    Slot pos = CompileNode(children[1], state);
    Slot n = CompileNode(children[2], state);
    if (s.kind != Kind::kStr || pos.kind != Kind::kI64 || n.kind != Kind::kI64) {
      return fallback();
    }
    uint16_t dst = state->NewReg();
    state->Emit(Op::kSubstr, dst, s.reg, pos.reg, n.reg);
    return Slot{Kind::kStr, dst};
  }
  if (const auto* concat = As<Concat>(e)) {
    ExprVector children = concat->Children();
    if (children.size() == 2) {
      Slot l = CompileNode(children[0], state);
      Slot r = CompileNode(children[1], state);
      if (l.kind == Kind::kStr && r.kind == Kind::kStr) {
        uint16_t dst = state->NewReg();
        state->Emit(Op::kConcat2, dst, l.reg, r.reg);
        return Slot{Kind::kStr, dst};
      }
    }
    return fallback();
  }

  // Casts between numeric register kinds compile to conversions; identity
  // casts are free.
  if (const auto* cast = As<Cast>(e)) {
    TypeId to = cast->data_type()->id();
    TypeId from = cast->child()->data_type()->id();
    if (IsIntLike(from) && IsIntLike(to)) {
      return CompileNode(cast->child(), state);
    }
    if (IsIntLike(from) && to == TypeId::kDouble) {
      Slot c = CompileNode(cast->child(), state);
      if (c.kind == Kind::kI64 || c.kind == Kind::kBool) {
        uint16_t dst = state->NewReg();
        state->Emit(Op::kI64ToF64, dst, c.reg);
        return Slot{Kind::kF64, dst};
      }
      return fallback();
    }
    if (from == TypeId::kDouble && IsIntLike(to)) {
      Slot c = CompileNode(cast->child(), state);
      if (c.kind == Kind::kF64) {
        uint16_t dst = state->NewReg();
        state->Emit(Op::kF64ToI64, dst, c.reg);
        return Slot{Kind::kI64, dst};
      }
      return fallback();
    }
    return fallback();
  }

  return fallback();
}

std::optional<CompiledExpression> CompiledExpression::Compile(const ExprPtr& expr) {
  CompiledExpression prog;
  prog.result_type_ = expr->data_type();
  CompileState state{&prog};
  Slot result = CompileNode(expr, &state);
  prog.result_reg_ = result.reg;
  prog.result_kind_ = result.kind;
  prog.compiled_fraction_ =
      prog.total_nodes_ == 0
          ? 1.0
          : 1.0 - static_cast<double>(prog.fallback_nodes_) / prog.total_nodes_;
  return prog;
}

CompiledExpression::Evaluator::Evaluator(const CompiledExpression* program)
    : program_(program),
      i64_(program->num_regs_, 0),
      f64_(program->num_regs_, 0.0),
      str_(program->num_regs_, nullptr),
      scratch_(program->num_regs_),
      null_(program->num_regs_, 0),
      boxed_(program->num_regs_) {}

void CompiledExpression::Evaluator::Run(const Row& row) {
  const auto& instrs = program_->instrs_;
  for (const Instr& in : instrs) {
    switch (in.op) {
      case Op::kLoadColI64: {
        const Value& v = row.Get(in.aux);
        null_[in.dst] = v.is_null();
        if (!null_[in.dst]) i64_[in.dst] = v.AsInt64();
        break;
      }
      case Op::kLoadColF64: {
        const Value& v = row.Get(in.aux);
        null_[in.dst] = v.is_null();
        if (!null_[in.dst]) f64_[in.dst] = v.f64();
        break;
      }
      case Op::kLoadColStr: {
        const Value& v = row.Get(in.aux);
        null_[in.dst] = v.is_null();
        if (!null_[in.dst]) str_[in.dst] = &v.str();
        break;
      }
      case Op::kLoadColBool: {
        const Value& v = row.Get(in.aux);
        null_[in.dst] = v.is_null();
        if (!null_[in.dst]) i64_[in.dst] = v.bool_value() ? 1 : 0;
        break;
      }
      case Op::kLoadConstI64:
        i64_[in.dst] = program_->iconsts_[in.aux];
        null_[in.dst] = 0;
        break;
      case Op::kLoadConstF64:
        f64_[in.dst] = program_->fconsts_[in.aux];
        null_[in.dst] = 0;
        break;
      case Op::kLoadConstStr:
        str_[in.dst] = &program_->sconsts_[in.aux];
        null_[in.dst] = 0;
        break;
      case Op::kLoadConstBool:
        i64_[in.dst] = in.aux;
        null_[in.dst] = 0;
        break;
      case Op::kLoadNull:
        null_[in.dst] = 1;
        break;
      case Op::kAddI64:
        null_[in.dst] = null_[in.a] | null_[in.b];
        i64_[in.dst] = i64_[in.a] + i64_[in.b];
        break;
      case Op::kSubI64:
        null_[in.dst] = null_[in.a] | null_[in.b];
        i64_[in.dst] = i64_[in.a] - i64_[in.b];
        break;
      case Op::kMulI64:
        null_[in.dst] = null_[in.a] | null_[in.b];
        i64_[in.dst] = i64_[in.a] * i64_[in.b];
        break;
      case Op::kDivI64:
        null_[in.dst] = null_[in.a] | null_[in.b] || i64_[in.b] == 0;
        if (!null_[in.dst]) i64_[in.dst] = i64_[in.a] / i64_[in.b];
        break;
      case Op::kRemI64:
        null_[in.dst] = null_[in.a] | null_[in.b] || i64_[in.b] == 0;
        if (!null_[in.dst]) i64_[in.dst] = i64_[in.a] % i64_[in.b];
        break;
      case Op::kNegI64:
        null_[in.dst] = null_[in.a];
        i64_[in.dst] = -i64_[in.a];
        break;
      case Op::kAddF64:
        null_[in.dst] = null_[in.a] | null_[in.b];
        f64_[in.dst] = f64_[in.a] + f64_[in.b];
        break;
      case Op::kSubF64:
        null_[in.dst] = null_[in.a] | null_[in.b];
        f64_[in.dst] = f64_[in.a] - f64_[in.b];
        break;
      case Op::kMulF64:
        null_[in.dst] = null_[in.a] | null_[in.b];
        f64_[in.dst] = f64_[in.a] * f64_[in.b];
        break;
      case Op::kDivF64:
        null_[in.dst] = null_[in.a] | null_[in.b] || f64_[in.b] == 0.0;
        if (!null_[in.dst]) f64_[in.dst] = f64_[in.a] / f64_[in.b];
        break;
      case Op::kNegF64:
        null_[in.dst] = null_[in.a];
        f64_[in.dst] = -f64_[in.a];
        break;
      case Op::kI64ToF64:
        null_[in.dst] = null_[in.a];
        f64_[in.dst] = static_cast<double>(i64_[in.a]);
        break;
      case Op::kF64ToI64:
        null_[in.dst] = null_[in.a];
        i64_[in.dst] = static_cast<int64_t>(f64_[in.a]);
        break;
      case Op::kCmpI64:
        null_[in.dst] = null_[in.a] | null_[in.b];
        i64_[in.dst] = i64_[in.a] < i64_[in.b] ? -1 : (i64_[in.a] > i64_[in.b] ? 1 : 0);
        break;
      case Op::kCmpF64:
        null_[in.dst] = null_[in.a] | null_[in.b];
        i64_[in.dst] = f64_[in.a] < f64_[in.b] ? -1 : (f64_[in.a] > f64_[in.b] ? 1 : 0);
        break;
      case Op::kCmpStr:
        null_[in.dst] = null_[in.a] | null_[in.b];
        if (!null_[in.dst]) {
          int c = str_[in.a]->compare(*str_[in.b]);
          i64_[in.dst] = c < 0 ? -1 : (c > 0 ? 1 : 0);
        }
        break;
      case Op::kCmpBool:
        null_[in.dst] = null_[in.a] | null_[in.b];
        i64_[in.dst] = i64_[in.a] - i64_[in.b];
        break;
      case Op::kEqFrom: {
        null_[in.dst] = null_[in.a];
        int64_t s = i64_[in.a];
        bool r = false;
        switch (in.aux) {
          case kCmpEq:
            r = s == 0;
            break;
          case kCmpNe:
            r = s != 0;
            break;
          case kCmpLt:
            r = s < 0;
            break;
          case kCmpLe:
            r = s <= 0;
            break;
          case kCmpGt:
            r = s > 0;
            break;
          case kCmpGe:
            r = s >= 0;
            break;
        }
        i64_[in.dst] = r ? 1 : 0;
        break;
      }
      case Op::kAnd: {
        // 3-valued logic over (value, null) pairs.
        bool la = null_[in.a] == 0;
        bool lb = null_[in.b] == 0;
        bool va = la && i64_[in.a] != 0;
        bool vb = lb && i64_[in.b] != 0;
        if ((la && !va) || (lb && !vb)) {
          i64_[in.dst] = 0;
          null_[in.dst] = 0;
        } else if (!la || !lb) {
          null_[in.dst] = 1;
        } else {
          i64_[in.dst] = 1;
          null_[in.dst] = 0;
        }
        break;
      }
      case Op::kOr: {
        bool la = null_[in.a] == 0;
        bool lb = null_[in.b] == 0;
        bool va = la && i64_[in.a] != 0;
        bool vb = lb && i64_[in.b] != 0;
        if (va || vb) {
          i64_[in.dst] = 1;
          null_[in.dst] = 0;
        } else if (!la || !lb) {
          null_[in.dst] = 1;
        } else {
          i64_[in.dst] = 0;
          null_[in.dst] = 0;
        }
        break;
      }
      case Op::kNot:
        null_[in.dst] = null_[in.a];
        i64_[in.dst] = i64_[in.a] != 0 ? 0 : 1;
        break;
      case Op::kIsNull:
        i64_[in.dst] = null_[in.a] ? 1 : 0;
        null_[in.dst] = 0;
        break;
      case Op::kIsNotNull:
        i64_[in.dst] = null_[in.a] ? 0 : 1;
        null_[in.dst] = 0;
        break;
      case Op::kStartsWith:
        null_[in.dst] = null_[in.a] | null_[in.b];
        if (!null_[in.dst]) {
          const std::string& s = *str_[in.a];
          const std::string& p = *str_[in.b];
          i64_[in.dst] =
              s.size() >= p.size() && s.compare(0, p.size(), p) == 0 ? 1 : 0;
        }
        break;
      case Op::kEndsWith:
        null_[in.dst] = null_[in.a] | null_[in.b];
        if (!null_[in.dst]) {
          const std::string& s = *str_[in.a];
          const std::string& p = *str_[in.b];
          i64_[in.dst] = s.size() >= p.size() &&
                                 s.compare(s.size() - p.size(), p.size(), p) == 0
                             ? 1
                             : 0;
        }
        break;
      case Op::kContains:
        null_[in.dst] = null_[in.a] | null_[in.b];
        if (!null_[in.dst]) {
          i64_[in.dst] = str_[in.a]->find(*str_[in.b]) != std::string::npos ? 1 : 0;
        }
        break;
      case Op::kLike:
        null_[in.dst] = null_[in.a] | null_[in.b];
        if (!null_[in.dst]) {
          i64_[in.dst] = LikeMatch(*str_[in.a], *str_[in.b]) ? 1 : 0;
        }
        break;
      case Op::kUpper:
      case Op::kLower: {
        null_[in.dst] = null_[in.a];
        if (!null_[in.dst]) {
          std::string& out = scratch_[in.dst];
          out = *str_[in.a];
          for (char& c : out) {
            c = in.op == Op::kUpper
                    ? static_cast<char>(std::toupper(static_cast<unsigned char>(c)))
                    : static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
          }
          str_[in.dst] = &out;
        }
        break;
      }
      case Op::kSubstr: {
        null_[in.dst] = null_[in.a] | null_[in.b] | null_[in.aux];
        if (!null_[in.dst]) {
          const std::string& s = *str_[in.a];
          int64_t p = i64_[in.b];
          int64_t n = i64_[static_cast<uint16_t>(in.aux)];
          if (n < 0) n = 0;
          int64_t start = p > 0 ? p - 1
                          : p < 0 ? std::max<int64_t>(
                                        0, static_cast<int64_t>(s.size()) + p)
                                  : 0;
          std::string& out = scratch_[in.dst];
          if (start >= static_cast<int64_t>(s.size())) {
            out.clear();
          } else {
            out = s.substr(static_cast<size_t>(start), static_cast<size_t>(n));
          }
          str_[in.dst] = &out;
        }
        break;
      }
      case Op::kLength:
        null_[in.dst] = null_[in.a];
        if (!null_[in.dst]) i64_[in.dst] = static_cast<int64_t>(str_[in.a]->size());
        break;
      case Op::kConcat2:
        null_[in.dst] = null_[in.a] | null_[in.b];
        if (!null_[in.dst]) {
          std::string& out = scratch_[in.dst];
          out = *str_[in.a];
          out += *str_[in.b];
          str_[in.dst] = &out;
        }
        break;
      case Op::kCallExpr: {
        Value v = program_->fallbacks_[in.aux]->Eval(row);
        null_[in.dst] = v.is_null();
        Kind kind = static_cast<Kind>(in.b);
        if (!v.is_null()) {
          switch (kind) {
            case Kind::kBool:
              i64_[in.dst] = v.bool_value() ? 1 : 0;
              break;
            case Kind::kI64:
              i64_[in.dst] = v.AsInt64();
              break;
            case Kind::kF64:
              f64_[in.dst] = v.AsDouble();
              break;
            case Kind::kStr:
              scratch_[in.dst] = v.str();
              str_[in.dst] = &scratch_[in.dst];
              break;
            case Kind::kBoxed:
              boxed_[in.dst] = std::move(v);
              break;
          }
        } else if (kind == Kind::kBoxed) {
          boxed_[in.dst] = Value::Null();
        }
        break;
      }
    }
  }
}

Value CompiledExpression::Evaluator::Evaluate(const Row& row) {
  Run(row);
  uint16_t r = program_->result_reg_;
  if (null_[r] && program_->result_kind_ != Kind::kBoxed) return Value::Null();
  switch (program_->result_kind_) {
    case Kind::kBool:
      return Value(i64_[r] != 0);
    case Kind::kI64:
      switch (program_->result_type_->id()) {
        case TypeId::kInt32:
          return Value(static_cast<int32_t>(i64_[r]));
        case TypeId::kDate:
          return Value(DateValue{static_cast<int32_t>(i64_[r])});
        case TypeId::kTimestamp:
          return Value(TimestampValue{i64_[r]});
        default:
          return Value(i64_[r]);
      }
    case Kind::kF64:
      return Value(f64_[r]);
    case Kind::kStr:
      return Value(*str_[r]);
    case Kind::kBoxed:
      return boxed_[r];
  }
  return Value::Null();
}

bool CompiledExpression::Evaluator::EvaluateBool(const Row& row, bool* is_null) {
  Run(row);
  uint16_t r = program_->result_reg_;
  *is_null = null_[r] != 0;
  return i64_[r] != 0;
}

int64_t CompiledExpression::Evaluator::EvaluateInt64(const Row& row,
                                                     bool* is_null) {
  Run(row);
  uint16_t r = program_->result_reg_;
  *is_null = null_[r] != 0;
  return i64_[r];
}

double CompiledExpression::Evaluator::EvaluateDouble(const Row& row,
                                                     bool* is_null) {
  Run(row);
  uint16_t r = program_->result_reg_;
  *is_null = null_[r] != 0;
  return f64_[r];
}

}  // namespace ssql
