#include <cctype>

#include "catalyst/codegen/compiled_expression.h"
#include "columnar/row_batch.h"
#include "util/string_util.h"

namespace ssql {

// Comparison codes for kEqFrom's aux operand (shared with the row
// evaluator; see compiled_expression.cc).
namespace {
constexpr int kCmpEq = 0;
constexpr int kCmpNe = 1;
constexpr int kCmpLt = 2;
constexpr int kCmpLe = 3;
constexpr int kCmpGt = 4;
constexpr int kCmpGe = 5;
}  // namespace

CompiledExpression::VectorEvaluator::VectorEvaluator(
    const CompiledExpression* program)
    : program_(program),
      i64_(program->num_regs_),
      f64_(program->num_regs_),
      str_(program->num_regs_),
      scratch_(program->num_regs_),
      null_(program->num_regs_),
      boxed_(program->num_regs_) {}

void CompiledExpression::VectorEvaluator::EnsureRowsBoxed(
    const RowBatch& batch) {
  if (rows_boxed_) return;
  rows_.clear();
  rows_.reserve(n_);
  for (size_t k = 0; k < n_; ++k) {
    rows_.push_back(batch.BoxRow(batch.ActiveIndex(k)));
  }
  rows_boxed_ = true;
}

void CompiledExpression::VectorEvaluator::Run(const RowBatch& batch) {
  n_ = batch.ActiveRows();
  rows_boxed_ = false;
  const bool has_sel = batch.has_selection();
  const uint32_t* sel = has_sel ? batch.selection().data() : nullptr;
  const size_t n = n_;

  // Lane accessors: grow a register's lane vector on first touch this Run.
  // Operand lanes a correct program always defines before use; going
  // through the same accessors for reads keeps even degenerate programs
  // (e.g. a null literal's untouched value bank) in bounds — the lanes
  // value-initialize and the null mask makes them unobservable, exactly
  // like the row evaluator's stale scalar registers.
  auto lanes_i64 = [&](uint16_t r) -> int64_t* {
    if (i64_[r].size() < n) i64_[r].resize(n);
    return i64_[r].data();
  };
  auto lanes_f64 = [&](uint16_t r) -> double* {
    if (f64_[r].size() < n) f64_[r].resize(n);
    return f64_[r].data();
  };
  auto lanes_str = [&](uint16_t r) -> const std::string** {
    if (str_[r].size() < n) str_[r].resize(n, nullptr);
    return str_[r].data();
  };
  auto lanes_scratch = [&](uint16_t r) -> std::string* {
    if (scratch_[r].size() < n) scratch_[r].resize(n);
    return scratch_[r].data();
  };
  auto lanes_null = [&](uint16_t r) -> uint8_t* {
    if (null_[r].size() < n) null_[r].resize(n);
    return null_[r].data();
  };
  auto lanes_boxed = [&](uint16_t r) -> Value* {
    if (boxed_[r].size() < n) boxed_[r].resize(n);
    return boxed_[r].data();
  };

  for (const Instr& in : program_->instrs_) {
    switch (in.op) {
      // ---- column loads: gather through the selection. Null bank slots
      // hold defined zeros, so the gather is unconditional.
      case Op::kLoadColI64:
      case Op::kLoadColBool: {
        const ColumnVector& col = batch.column(static_cast<size_t>(in.aux));
        const int64_t* vals = col.ints().data();
        const uint8_t* nulls = col.nulls().data();
        int64_t* d = lanes_i64(in.dst);
        uint8_t* dn = lanes_null(in.dst);
        for (size_t k = 0; k < n; ++k) {
          size_t i = sel ? sel[k] : k;
          d[k] = vals[i];
          dn[k] = nulls[i];
        }
        break;
      }
      case Op::kLoadColF64: {
        const ColumnVector& col = batch.column(static_cast<size_t>(in.aux));
        const double* vals = col.doubles().data();
        const uint8_t* nulls = col.nulls().data();
        double* d = lanes_f64(in.dst);
        uint8_t* dn = lanes_null(in.dst);
        for (size_t k = 0; k < n; ++k) {
          size_t i = sel ? sel[k] : k;
          d[k] = vals[i];
          dn[k] = nulls[i];
        }
        break;
      }
      case Op::kLoadColStr: {
        const ColumnVector& col = batch.column(static_cast<size_t>(in.aux));
        const std::string* vals = col.strings().data();
        const uint8_t* nulls = col.nulls().data();
        const std::string** d = lanes_str(in.dst);
        uint8_t* dn = lanes_null(in.dst);
        for (size_t k = 0; k < n; ++k) {
          size_t i = sel ? sel[k] : k;
          d[k] = &vals[i];
          dn[k] = nulls[i];
        }
        break;
      }
      // ---- constants: broadcast.
      case Op::kLoadConstI64: {
        int64_t c = program_->iconsts_[in.aux];
        int64_t* d = lanes_i64(in.dst);
        uint8_t* dn = lanes_null(in.dst);
        for (size_t k = 0; k < n; ++k) {
          d[k] = c;
          dn[k] = 0;
        }
        break;
      }
      case Op::kLoadConstF64: {
        double c = program_->fconsts_[in.aux];
        double* d = lanes_f64(in.dst);
        uint8_t* dn = lanes_null(in.dst);
        for (size_t k = 0; k < n; ++k) {
          d[k] = c;
          dn[k] = 0;
        }
        break;
      }
      case Op::kLoadConstStr: {
        const std::string* c = &program_->sconsts_[in.aux];
        const std::string** d = lanes_str(in.dst);
        uint8_t* dn = lanes_null(in.dst);
        for (size_t k = 0; k < n; ++k) {
          d[k] = c;
          dn[k] = 0;
        }
        break;
      }
      case Op::kLoadConstBool: {
        int64_t c = in.aux;
        int64_t* d = lanes_i64(in.dst);
        uint8_t* dn = lanes_null(in.dst);
        for (size_t k = 0; k < n; ++k) {
          d[k] = c;
          dn[k] = 0;
        }
        break;
      }
      case Op::kLoadNull: {
        uint8_t* dn = lanes_null(in.dst);
        for (size_t k = 0; k < n; ++k) dn[k] = 1;
        break;
      }
      // ---- int64 arithmetic: value computed unconditionally, null is the
      // OR of the operand nulls (same as the row path).
      case Op::kAddI64:
      case Op::kSubI64:
      case Op::kMulI64: {
        const int64_t* a = lanes_i64(in.a);
        const int64_t* b = lanes_i64(in.b);
        const uint8_t* na = lanes_null(in.a);
        const uint8_t* nb = lanes_null(in.b);
        int64_t* d = lanes_i64(in.dst);
        uint8_t* dn = lanes_null(in.dst);
        switch (in.op) {
          case Op::kAddI64:
            for (size_t k = 0; k < n; ++k) {
              dn[k] = na[k] | nb[k];
              d[k] = a[k] + b[k];
            }
            break;
          case Op::kSubI64:
            for (size_t k = 0; k < n; ++k) {
              dn[k] = na[k] | nb[k];
              d[k] = a[k] - b[k];
            }
            break;
          default:
            for (size_t k = 0; k < n; ++k) {
              dn[k] = na[k] | nb[k];
              d[k] = a[k] * b[k];
            }
            break;
        }
        break;
      }
      case Op::kDivI64:
      case Op::kRemI64: {
        const int64_t* a = lanes_i64(in.a);
        const int64_t* b = lanes_i64(in.b);
        const uint8_t* na = lanes_null(in.a);
        const uint8_t* nb = lanes_null(in.b);
        int64_t* d = lanes_i64(in.dst);
        uint8_t* dn = lanes_null(in.dst);
        for (size_t k = 0; k < n; ++k) {
          // Mirrors the row path: x/0 and x%0 yield NULL, not a fault.
          dn[k] = (na[k] | nb[k]) != 0 || b[k] == 0;
          if (!dn[k]) {
            d[k] = in.op == Op::kDivI64 ? a[k] / b[k] : a[k] % b[k];
          }
        }
        break;
      }
      case Op::kNegI64: {
        const int64_t* a = lanes_i64(in.a);
        const uint8_t* na = lanes_null(in.a);
        int64_t* d = lanes_i64(in.dst);
        uint8_t* dn = lanes_null(in.dst);
        for (size_t k = 0; k < n; ++k) {
          dn[k] = na[k];
          d[k] = -a[k];
        }
        break;
      }
      // ---- double arithmetic.
      case Op::kAddF64:
      case Op::kSubF64:
      case Op::kMulF64: {
        const double* a = lanes_f64(in.a);
        const double* b = lanes_f64(in.b);
        const uint8_t* na = lanes_null(in.a);
        const uint8_t* nb = lanes_null(in.b);
        double* d = lanes_f64(in.dst);
        uint8_t* dn = lanes_null(in.dst);
        switch (in.op) {
          case Op::kAddF64:
            for (size_t k = 0; k < n; ++k) {
              dn[k] = na[k] | nb[k];
              d[k] = a[k] + b[k];
            }
            break;
          case Op::kSubF64:
            for (size_t k = 0; k < n; ++k) {
              dn[k] = na[k] | nb[k];
              d[k] = a[k] - b[k];
            }
            break;
          default:
            for (size_t k = 0; k < n; ++k) {
              dn[k] = na[k] | nb[k];
              d[k] = a[k] * b[k];
            }
            break;
        }
        break;
      }
      case Op::kDivF64: {
        const double* a = lanes_f64(in.a);
        const double* b = lanes_f64(in.b);
        const uint8_t* na = lanes_null(in.a);
        const uint8_t* nb = lanes_null(in.b);
        double* d = lanes_f64(in.dst);
        uint8_t* dn = lanes_null(in.dst);
        for (size_t k = 0; k < n; ++k) {
          dn[k] = (na[k] | nb[k]) != 0 || b[k] == 0.0;
          if (!dn[k]) d[k] = a[k] / b[k];
        }
        break;
      }
      case Op::kNegF64: {
        const double* a = lanes_f64(in.a);
        const uint8_t* na = lanes_null(in.a);
        double* d = lanes_f64(in.dst);
        uint8_t* dn = lanes_null(in.dst);
        for (size_t k = 0; k < n; ++k) {
          dn[k] = na[k];
          d[k] = -a[k];
        }
        break;
      }
      case Op::kI64ToF64: {
        const int64_t* a = lanes_i64(in.a);
        const uint8_t* na = lanes_null(in.a);
        double* d = lanes_f64(in.dst);
        uint8_t* dn = lanes_null(in.dst);
        for (size_t k = 0; k < n; ++k) {
          dn[k] = na[k];
          d[k] = static_cast<double>(a[k]);
        }
        break;
      }
      case Op::kF64ToI64: {
        const double* a = lanes_f64(in.a);
        const uint8_t* na = lanes_null(in.a);
        int64_t* d = lanes_i64(in.dst);
        uint8_t* dn = lanes_null(in.dst);
        for (size_t k = 0; k < n; ++k) {
          dn[k] = na[k];
          d[k] = static_cast<int64_t>(a[k]);
        }
        break;
      }
      // ---- comparisons.
      case Op::kCmpI64: {
        const int64_t* a = lanes_i64(in.a);
        const int64_t* b = lanes_i64(in.b);
        const uint8_t* na = lanes_null(in.a);
        const uint8_t* nb = lanes_null(in.b);
        int64_t* d = lanes_i64(in.dst);
        uint8_t* dn = lanes_null(in.dst);
        for (size_t k = 0; k < n; ++k) {
          dn[k] = na[k] | nb[k];
          d[k] = a[k] < b[k] ? -1 : (a[k] > b[k] ? 1 : 0);
        }
        break;
      }
      case Op::kCmpF64: {
        const double* a = lanes_f64(in.a);
        const double* b = lanes_f64(in.b);
        const uint8_t* na = lanes_null(in.a);
        const uint8_t* nb = lanes_null(in.b);
        int64_t* d = lanes_i64(in.dst);
        uint8_t* dn = lanes_null(in.dst);
        for (size_t k = 0; k < n; ++k) {
          dn[k] = na[k] | nb[k];
          d[k] = a[k] < b[k] ? -1 : (a[k] > b[k] ? 1 : 0);
        }
        break;
      }
      case Op::kCmpStr: {
        const std::string** a = lanes_str(in.a);
        const std::string** b = lanes_str(in.b);
        const uint8_t* na = lanes_null(in.a);
        const uint8_t* nb = lanes_null(in.b);
        int64_t* d = lanes_i64(in.dst);
        uint8_t* dn = lanes_null(in.dst);
        for (size_t k = 0; k < n; ++k) {
          dn[k] = na[k] | nb[k];
          if (!dn[k]) {
            int c = a[k]->compare(*b[k]);
            d[k] = c < 0 ? -1 : (c > 0 ? 1 : 0);
          }
        }
        break;
      }
      case Op::kCmpBool: {
        const int64_t* a = lanes_i64(in.a);
        const int64_t* b = lanes_i64(in.b);
        const uint8_t* na = lanes_null(in.a);
        const uint8_t* nb = lanes_null(in.b);
        int64_t* d = lanes_i64(in.dst);
        uint8_t* dn = lanes_null(in.dst);
        for (size_t k = 0; k < n; ++k) {
          dn[k] = na[k] | nb[k];
          d[k] = a[k] - b[k];
        }
        break;
      }
      case Op::kEqFrom: {
        const int64_t* a = lanes_i64(in.a);
        const uint8_t* na = lanes_null(in.a);
        int64_t* d = lanes_i64(in.dst);
        uint8_t* dn = lanes_null(in.dst);
        switch (in.aux) {
          case kCmpEq:
            for (size_t k = 0; k < n; ++k) {
              dn[k] = na[k];
              d[k] = a[k] == 0 ? 1 : 0;
            }
            break;
          case kCmpNe:
            for (size_t k = 0; k < n; ++k) {
              dn[k] = na[k];
              d[k] = a[k] != 0 ? 1 : 0;
            }
            break;
          case kCmpLt:
            for (size_t k = 0; k < n; ++k) {
              dn[k] = na[k];
              d[k] = a[k] < 0 ? 1 : 0;
            }
            break;
          case kCmpLe:
            for (size_t k = 0; k < n; ++k) {
              dn[k] = na[k];
              d[k] = a[k] <= 0 ? 1 : 0;
            }
            break;
          case kCmpGt:
            for (size_t k = 0; k < n; ++k) {
              dn[k] = na[k];
              d[k] = a[k] > 0 ? 1 : 0;
            }
            break;
          default:
            for (size_t k = 0; k < n; ++k) {
              dn[k] = na[k];
              d[k] = a[k] >= 0 ? 1 : 0;
            }
            break;
        }
        break;
      }
      // ---- three-valued connectives (same truth table as the row path).
      case Op::kAnd: {
        const int64_t* a = lanes_i64(in.a);
        const int64_t* b = lanes_i64(in.b);
        const uint8_t* na = lanes_null(in.a);
        const uint8_t* nb = lanes_null(in.b);
        int64_t* d = lanes_i64(in.dst);
        uint8_t* dn = lanes_null(in.dst);
        for (size_t k = 0; k < n; ++k) {
          bool la = na[k] == 0;
          bool lb = nb[k] == 0;
          bool va = la && a[k] != 0;
          bool vb = lb && b[k] != 0;
          if ((la && !va) || (lb && !vb)) {
            d[k] = 0;
            dn[k] = 0;
          } else if (!la || !lb) {
            dn[k] = 1;
          } else {
            d[k] = 1;
            dn[k] = 0;
          }
        }
        break;
      }
      case Op::kOr: {
        const int64_t* a = lanes_i64(in.a);
        const int64_t* b = lanes_i64(in.b);
        const uint8_t* na = lanes_null(in.a);
        const uint8_t* nb = lanes_null(in.b);
        int64_t* d = lanes_i64(in.dst);
        uint8_t* dn = lanes_null(in.dst);
        for (size_t k = 0; k < n; ++k) {
          bool la = na[k] == 0;
          bool lb = nb[k] == 0;
          bool va = la && a[k] != 0;
          bool vb = lb && b[k] != 0;
          if (va || vb) {
            d[k] = 1;
            dn[k] = 0;
          } else if (!la || !lb) {
            dn[k] = 1;
          } else {
            d[k] = 0;
            dn[k] = 0;
          }
        }
        break;
      }
      case Op::kNot: {
        const int64_t* a = lanes_i64(in.a);
        const uint8_t* na = lanes_null(in.a);
        int64_t* d = lanes_i64(in.dst);
        uint8_t* dn = lanes_null(in.dst);
        for (size_t k = 0; k < n; ++k) {
          dn[k] = na[k];
          d[k] = a[k] != 0 ? 0 : 1;
        }
        break;
      }
      case Op::kIsNull: {
        const uint8_t* na = lanes_null(in.a);
        int64_t* d = lanes_i64(in.dst);
        uint8_t* dn = lanes_null(in.dst);
        for (size_t k = 0; k < n; ++k) {
          d[k] = na[k] ? 1 : 0;
          dn[k] = 0;
        }
        break;
      }
      case Op::kIsNotNull: {
        const uint8_t* na = lanes_null(in.a);
        int64_t* d = lanes_i64(in.dst);
        uint8_t* dn = lanes_null(in.dst);
        for (size_t k = 0; k < n; ++k) {
          d[k] = na[k] ? 0 : 1;
          dn[k] = 0;
        }
        break;
      }
      // ---- string predicates and functions.
      case Op::kStartsWith:
      case Op::kEndsWith:
      case Op::kContains:
      case Op::kLike: {
        const std::string** a = lanes_str(in.a);
        const std::string** b = lanes_str(in.b);
        const uint8_t* na = lanes_null(in.a);
        const uint8_t* nb = lanes_null(in.b);
        int64_t* d = lanes_i64(in.dst);
        uint8_t* dn = lanes_null(in.dst);
        for (size_t k = 0; k < n; ++k) {
          dn[k] = na[k] | nb[k];
          if (dn[k]) continue;
          const std::string& s = *a[k];
          const std::string& p = *b[k];
          switch (in.op) {
            case Op::kStartsWith:
              d[k] = s.size() >= p.size() && s.compare(0, p.size(), p) == 0
                         ? 1
                         : 0;
              break;
            case Op::kEndsWith:
              d[k] = s.size() >= p.size() &&
                             s.compare(s.size() - p.size(), p.size(), p) == 0
                         ? 1
                         : 0;
              break;
            case Op::kContains:
              d[k] = s.find(p) != std::string::npos ? 1 : 0;
              break;
            default:
              d[k] = LikeMatch(s, p) ? 1 : 0;
              break;
          }
        }
        break;
      }
      case Op::kUpper:
      case Op::kLower: {
        const std::string** a = lanes_str(in.a);
        const uint8_t* na = lanes_null(in.a);
        const std::string** d = lanes_str(in.dst);
        std::string* sc = lanes_scratch(in.dst);
        uint8_t* dn = lanes_null(in.dst);
        for (size_t k = 0; k < n; ++k) {
          dn[k] = na[k];
          if (dn[k]) continue;
          std::string& out = sc[k];
          out = *a[k];
          for (char& c : out) {
            c = in.op == Op::kUpper
                    ? static_cast<char>(
                          std::toupper(static_cast<unsigned char>(c)))
                    : static_cast<char>(
                          std::tolower(static_cast<unsigned char>(c)));
          }
          d[k] = &out;
        }
        break;
      }
      case Op::kSubstr: {
        const std::string** a = lanes_str(in.a);
        const int64_t* pos = lanes_i64(in.b);
        const int64_t* len = lanes_i64(static_cast<uint16_t>(in.aux));
        const uint8_t* na = lanes_null(in.a);
        const uint8_t* nb = lanes_null(in.b);
        const uint8_t* nc = lanes_null(static_cast<uint16_t>(in.aux));
        const std::string** d = lanes_str(in.dst);
        std::string* sc = lanes_scratch(in.dst);
        uint8_t* dn = lanes_null(in.dst);
        for (size_t k = 0; k < n; ++k) {
          dn[k] = na[k] | nb[k] | nc[k];
          if (dn[k]) continue;
          const std::string& s = *a[k];
          int64_t p = pos[k];
          int64_t m = len[k];
          if (m < 0) m = 0;
          int64_t start = p > 0 ? p - 1
                          : p < 0 ? std::max<int64_t>(
                                        0, static_cast<int64_t>(s.size()) + p)
                                  : 0;
          std::string& out = sc[k];
          if (start >= static_cast<int64_t>(s.size())) {
            out.clear();
          } else {
            out = s.substr(static_cast<size_t>(start), static_cast<size_t>(m));
          }
          d[k] = &out;
        }
        break;
      }
      case Op::kLength: {
        const std::string** a = lanes_str(in.a);
        const uint8_t* na = lanes_null(in.a);
        int64_t* d = lanes_i64(in.dst);
        uint8_t* dn = lanes_null(in.dst);
        for (size_t k = 0; k < n; ++k) {
          dn[k] = na[k];
          if (!dn[k]) d[k] = static_cast<int64_t>(a[k]->size());
        }
        break;
      }
      case Op::kConcat2: {
        const std::string** a = lanes_str(in.a);
        const std::string** b = lanes_str(in.b);
        const uint8_t* na = lanes_null(in.a);
        const uint8_t* nb = lanes_null(in.b);
        const std::string** d = lanes_str(in.dst);
        std::string* sc = lanes_scratch(in.dst);
        uint8_t* dn = lanes_null(in.dst);
        for (size_t k = 0; k < n; ++k) {
          dn[k] = na[k] | nb[k];
          if (dn[k]) continue;
          std::string& out = sc[k];
          out = *a[k];
          out += *b[k];
          d[k] = &out;
        }
        break;
      }
      // ---- interpreter fallback: box the live rows once per batch, then
      // evaluate the subtree row-at-a-time into this register's lanes.
      case Op::kCallExpr: {
        EnsureRowsBoxed(batch);
        Kind kind = static_cast<Kind>(in.b);
        uint8_t* dn = lanes_null(in.dst);
        for (size_t k = 0; k < n; ++k) {
          Value v = program_->fallbacks_[in.aux]->Eval(rows_[k]);
          dn[k] = v.is_null();
          if (!v.is_null()) {
            switch (kind) {
              case Kind::kBool:
                lanes_i64(in.dst)[k] = v.bool_value() ? 1 : 0;
                break;
              case Kind::kI64:
                lanes_i64(in.dst)[k] = v.AsInt64();
                break;
              case Kind::kF64:
                lanes_f64(in.dst)[k] = v.AsDouble();
                break;
              case Kind::kStr: {
                std::string* sc = lanes_scratch(in.dst);
                sc[k] = v.str();
                lanes_str(in.dst)[k] = &sc[k];
                break;
              }
              case Kind::kBoxed:
                lanes_boxed(in.dst)[k] = std::move(v);
                break;
            }
          } else if (kind == Kind::kBoxed) {
            lanes_boxed(in.dst)[k] = Value::Null();
          }
        }
        break;
      }
    }
  }
}

void CompiledExpression::VectorEvaluator::EvaluateColumn(const RowBatch& batch,
                                                         ColumnVector* out) {
  Run(batch);
  const size_t n = n_;
  uint16_t r = program_->result_reg_;
  // Result lanes exist whenever the program emitted at least one
  // instruction; null-literal-only programs may have left value banks
  // untouched, so go through the sized null bank first.
  if (null_[r].size() < n) null_[r].resize(n, 1);
  const uint8_t* nulls = null_[r].data();
  out->Reserve(out->size() + n);
  switch (program_->result_kind_) {
    case Kind::kBool: {
      if (i64_[r].size() < n) i64_[r].resize(n);
      const int64_t* vals = i64_[r].data();
      for (size_t k = 0; k < n; ++k) {
        if (nulls[k]) {
          out->AppendNull();
        } else {
          out->AppendInt64(vals[k] != 0 ? 1 : 0);
        }
      }
      break;
    }
    case Kind::kI64: {
      if (i64_[r].size() < n) i64_[r].resize(n);
      const int64_t* vals = i64_[r].data();
      for (size_t k = 0; k < n; ++k) {
        if (nulls[k]) {
          out->AppendNull();
        } else {
          out->AppendInt64(vals[k]);
        }
      }
      break;
    }
    case Kind::kF64: {
      if (f64_[r].size() < n) f64_[r].resize(n);
      const double* vals = f64_[r].data();
      for (size_t k = 0; k < n; ++k) {
        if (nulls[k]) {
          out->AppendNull();
        } else {
          out->AppendDouble(vals[k]);
        }
      }
      break;
    }
    case Kind::kStr: {
      if (str_[r].size() < n) str_[r].resize(n, nullptr);
      const std::string** vals = str_[r].data();
      for (size_t k = 0; k < n; ++k) {
        if (nulls[k]) {
          out->AppendNull();
        } else {
          out->AppendString(*vals[k]);
        }
      }
      break;
    }
    case Kind::kBoxed: {
      if (boxed_[r].size() < n) boxed_[r].resize(n);
      const Value* vals = boxed_[r].data();
      for (size_t k = 0; k < n; ++k) {
        out->Append(nulls[k] ? Value::Null() : vals[k]);
      }
      break;
    }
  }
}

void CompiledExpression::VectorEvaluator::EvaluateSelection(
    const RowBatch& batch, std::vector<uint32_t>* sel_out) {
  Run(batch);
  const size_t n = n_;
  uint16_t r = program_->result_reg_;
  if (null_[r].size() < n) null_[r].resize(n, 1);
  if (i64_[r].size() < n) i64_[r].resize(n);
  const uint8_t* nulls = null_[r].data();
  const int64_t* vals = i64_[r].data();
  // WHERE semantics: a row passes only when the predicate is true AND not
  // null (same as the row path's `value && !is_null`).
  for (size_t k = 0; k < n; ++k) {
    if (!nulls[k] && vals[k] != 0) {
      sel_out->push_back(static_cast<uint32_t>(batch.ActiveIndex(k)));
    }
  }
}

}  // namespace ssql
