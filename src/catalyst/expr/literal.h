#ifndef SSQL_CATALYST_EXPR_LITERAL_H_
#define SSQL_CATALYST_EXPR_LITERAL_H_

#include <memory>
#include <string>

#include "catalyst/expr/expression.h"

namespace ssql {

/// A constant value with an explicit type (Section 4.1's Literal node).
class Literal : public Expression {
 public:
  Literal(Value value, DataTypePtr type)
      : value_(std::move(value)), type_(std::move(type)) {}

  static ExprPtr Make(Value value, DataTypePtr type) {
    return std::make_shared<Literal>(std::move(value), std::move(type));
  }
  /// Infers the type from the value's runtime tag.
  static ExprPtr Infer(Value value);
  static ExprPtr Null(DataTypePtr type) {
    return Make(Value::Null(), std::move(type));
  }
  static ExprPtr True() { return Make(Value(true), DataType::Boolean()); }
  static ExprPtr False() { return Make(Value(false), DataType::Boolean()); }

  const Value& value() const { return value_; }

  std::string NodeName() const override { return "Literal"; }
  ExprVector Children() const override { return {}; }
  ExprPtr WithNewChildren(ExprVector) const override { return self(); }
  DataTypePtr data_type() const override { return type_; }
  bool nullable() const override { return value_.is_null(); }
  bool foldable() const override { return true; }
  Value Eval(const Row&) const override { return value_; }
  std::string ToString() const override;

 private:
  Value value_;
  DataTypePtr type_;
};

}  // namespace ssql

#endif  // SSQL_CATALYST_EXPR_LITERAL_H_
