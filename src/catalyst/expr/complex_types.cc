#include "catalyst/expr/complex_types.h"

namespace ssql {

Value GetStructField::Eval(const Row& row) const {
  Value v = child_->Eval(row);
  if (v.is_null()) return Value::Null();
  const auto& fields = v.struct_data().fields;
  if (ordinal_ < 0 || static_cast<size_t>(ordinal_) >= fields.size()) {
    return Value::Null();
  }
  return fields[ordinal_];
}

Value GetArrayItem::Eval(const Row& row) const {
  Value arr = left()->Eval(row);
  if (arr.is_null()) return Value::Null();
  Value idx = right()->Eval(row);
  if (idx.is_null()) return Value::Null();
  int64_t i = idx.AsInt64();
  const auto& elems = arr.array().elements;
  if (i < 0 || i >= static_cast<int64_t>(elems.size())) return Value::Null();
  return elems[i];
}

Value GetMapValue::Eval(const Row& row) const {
  Value m = left()->Eval(row);
  if (m.is_null()) return Value::Null();
  Value key = right()->Eval(row);
  if (key.is_null()) return Value::Null();
  for (const auto& [k, v] : m.map().entries) {
    if (k.Equals(key)) return v;
  }
  return Value::Null();
}

Value SizeOf::Eval(const Row& row) const {
  Value v = child_->Eval(row);
  if (v.is_null()) return Value::Null();
  if (v.type_id() == TypeId::kArray) {
    return Value(static_cast<int32_t>(v.array().elements.size()));
  }
  if (v.type_id() == TypeId::kMap) {
    return Value(static_cast<int32_t>(v.map().entries.size()));
  }
  return Value::Null();
}

Value ArrayContains::Eval(const Row& row) const {
  Value arr = left()->Eval(row);
  if (arr.is_null()) return Value::Null();
  Value needle = right()->Eval(row);
  if (needle.is_null()) return Value::Null();
  for (const auto& e : arr.array().elements) {
    if (e.Equals(needle)) return Value(true);
  }
  return Value(false);
}

Value CreateStruct::Eval(const Row& row) const {
  std::vector<Value> fields;
  fields.reserve(children_.size());
  for (const auto& c : children_) fields.push_back(c->Eval(row));
  return Value::Struct(std::move(fields));
}

}  // namespace ssql
