#ifndef SSQL_CATALYST_EXPR_CAST_H_
#define SSQL_CATALYST_EXPR_CAST_H_

#include <memory>
#include <string>

#include "catalyst/expr/expression.h"

namespace ssql {

/// Type conversion. The analyzer inserts implicit casts during type
/// coercion (Section 4.3.1, "propagating and coercing types"); users can
/// also cast explicitly via CAST(e AS type).
class Cast : public Expression {
 public:
  Cast(ExprPtr child, DataTypePtr target)
      : child_(std::move(child)), target_(std::move(target)) {}

  static ExprPtr Make(ExprPtr child, DataTypePtr target) {
    return std::make_shared<Cast>(std::move(child), std::move(target));
  }

  const ExprPtr& child() const { return child_; }

  /// Whether a cast from `from` to `to` is defined at all.
  static bool CanCast(const DataType& from, const DataType& to);

  /// Performs the conversion on a single value; returns null for
  /// unconvertible inputs (e.g. "abc" -> int), matching SQL CAST.
  static Value Convert(const Value& value, const DataType& to);

  std::string NodeName() const override { return "Cast"; }
  ExprVector Children() const override { return {child_}; }
  ExprPtr WithNewChildren(ExprVector c) const override {
    return Make(c[0], target_);
  }
  DataTypePtr data_type() const override { return target_; }
  bool nullable() const override { return true; }
  Value Eval(const Row& row) const override {
    return Convert(child_->Eval(row), *target_);
  }
  std::string ToString() const override {
    return "CAST(" + child_->ToString() + " AS " + target_->ToString() + ")";
  }

 private:
  ExprPtr child_;
  DataTypePtr target_;
};

}  // namespace ssql

#endif  // SSQL_CATALYST_EXPR_CAST_H_
