#ifndef SSQL_CATALYST_EXPR_ATTRIBUTE_H_
#define SSQL_CATALYST_EXPR_ATTRIBUTE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "catalyst/expr/expression.h"

namespace ssql {

/// Globally unique identity for a named expression. Analysis assigns each
/// resolved attribute a unique ID so later phases can tell two columns named
/// "id" apart (Section 4.3.1).
using ExprId = int64_t;
ExprId NextExprId();

/// An expression that binds a name: Alias or AttributeReference.
class NamedExpression : public Expression {
 public:
  virtual const std::string& name() const = 0;
  virtual ExprId expr_id() const = 0;
  /// The attribute this expression exposes to parent operators.
  virtual AttributePtr ToAttribute() const = 0;
};

using NamedExprPtr = std::shared_ptr<const NamedExpression>;

/// A resolved reference to a column of a child operator's output.
class AttributeReference : public NamedExpression {
 public:
  AttributeReference(std::string name, DataTypePtr type, bool nullable,
                     ExprId id, std::string qualifier = "")
      : name_(std::move(name)),
        type_(std::move(type)),
        nullable_(nullable),
        id_(id),
        qualifier_(std::move(qualifier)) {}

  static AttributePtr Make(std::string name, DataTypePtr type, bool nullable,
                           std::string qualifier = "") {
    return std::make_shared<AttributeReference>(std::move(name), std::move(type),
                                                nullable, NextExprId(),
                                                std::move(qualifier));
  }

  const std::string& name() const override { return name_; }
  ExprId expr_id() const override { return id_; }
  const std::string& qualifier() const { return qualifier_; }
  AttributePtr ToAttribute() const override {
    return std::static_pointer_cast<const AttributeReference>(self());
  }

  /// Same column, new qualifier (used by SubqueryAlias).
  AttributePtr WithQualifier(const std::string& qualifier) const {
    return std::make_shared<AttributeReference>(name_, type_, nullable_, id_,
                                                qualifier);
  }
  /// Same column identity, different nullability (outer joins).
  AttributePtr WithNullability(bool nullable) const {
    return std::make_shared<AttributeReference>(name_, type_, nullable, id_,
                                                qualifier_);
  }

  std::string NodeName() const override { return "AttributeReference"; }
  ExprVector Children() const override { return {}; }
  ExprPtr WithNewChildren(ExprVector) const override { return self(); }
  DataTypePtr data_type() const override { return type_; }
  bool nullable() const override { return nullable_; }
  bool foldable() const override { return false; }
  Value Eval(const Row&) const override {
    throw ExecutionError("AttributeReference " + name_ +
                         " must be bound before evaluation");
  }
  std::string ToString() const override {
    return name_ + "#" + std::to_string(id_);
  }

 private:
  std::string name_;
  DataTypePtr type_;
  bool nullable_;
  ExprId id_;
  std::string qualifier_;
};

/// A not-yet-resolved column name, possibly qualified ("t.col") or a nested
/// field path ("loc.lat"); produced by the parser and the DataFrame DSL,
/// eliminated by the analyzer. A NamedExpression (name = last path part)
/// so it can appear directly in projection lists, like Spark's.
class UnresolvedAttribute : public NamedExpression {
 public:
  /// `parts` is the dotted name split into components.
  explicit UnresolvedAttribute(std::vector<std::string> parts)
      : parts_(std::move(parts)) {}

  static ExprPtr Make(std::vector<std::string> parts) {
    return std::make_shared<UnresolvedAttribute>(std::move(parts));
  }

  const std::vector<std::string>& parts() const { return parts_; }

  const std::string& name() const override { return parts_.back(); }
  ExprId expr_id() const override {
    throw AnalysisError("unresolved attribute '" + ToString() + "' has no id");
  }
  AttributePtr ToAttribute() const override {
    throw AnalysisError("unresolved attribute '" + ToString() + "'");
  }

  std::string NodeName() const override { return "UnresolvedAttribute"; }
  ExprVector Children() const override { return {}; }
  ExprPtr WithNewChildren(ExprVector) const override { return self(); }
  DataTypePtr data_type() const override {
    throw AnalysisError("unresolved attribute '" + ToString() + "'");
  }
  bool resolved() const override { return false; }
  bool foldable() const override { return false; }
  Value Eval(const Row&) const override {
    throw ExecutionError("cannot evaluate unresolved attribute");
  }
  std::string ToString() const override;

 private:
  std::vector<std::string> parts_;
};

/// `SELECT *` (optionally `t.*`).
class UnresolvedStar : public NamedExpression {
 public:
  explicit UnresolvedStar(std::string qualifier = "")
      : qualifier_(std::move(qualifier)) {}

  static ExprPtr Make(std::string qualifier = "") {
    return std::make_shared<UnresolvedStar>(std::move(qualifier));
  }

  const std::string& qualifier() const { return qualifier_; }

  const std::string& name() const override {
    static const std::string kStar = "*";
    return kStar;
  }
  ExprId expr_id() const override {
    throw AnalysisError("star has no expression id");
  }
  AttributePtr ToAttribute() const override {
    throw AnalysisError("unexpanded star");
  }

  std::string NodeName() const override { return "UnresolvedStar"; }
  ExprVector Children() const override { return {}; }
  ExprPtr WithNewChildren(ExprVector) const override { return self(); }
  DataTypePtr data_type() const override {
    throw AnalysisError("unresolved star");
  }
  bool resolved() const override { return false; }
  Value Eval(const Row&) const override {
    throw ExecutionError("cannot evaluate star");
  }
  std::string ToString() const override {
    return qualifier_.empty() ? "*" : qualifier_ + ".*";
  }

 private:
  std::string qualifier_;
};

/// A function call by name, resolved against the FunctionRegistry by the
/// analyzer (builtin aggregates/scalars and registered UDFs).
class UnresolvedFunction : public Expression {
 public:
  UnresolvedFunction(std::string name, ExprVector args, bool distinct = false)
      : name_(std::move(name)), args_(std::move(args)), distinct_(distinct) {}

  static ExprPtr Make(std::string name, ExprVector args, bool distinct = false) {
    return std::make_shared<UnresolvedFunction>(std::move(name), std::move(args),
                                                distinct);
  }

  const std::string& name() const { return name_; }
  bool distinct() const { return distinct_; }

  std::string NodeName() const override { return "UnresolvedFunction"; }
  ExprVector Children() const override { return args_; }
  ExprPtr WithNewChildren(ExprVector children) const override {
    return Make(name_, std::move(children), distinct_);
  }
  DataTypePtr data_type() const override {
    throw AnalysisError("unresolved function '" + name_ + "'");
  }
  bool resolved() const override { return false; }
  Value Eval(const Row&) const override {
    throw ExecutionError("cannot evaluate unresolved function");
  }
  std::string ToString() const override;

 private:
  std::string name_;
  ExprVector args_;
  bool distinct_;
};

/// Binds a name to a computed expression (`expr AS name`). May carry a
/// qualifier so self-join deduplication can preserve `t.col` access.
class Alias : public NamedExpression {
 public:
  Alias(ExprPtr child, std::string name, ExprId id, std::string qualifier = "")
      : child_(std::move(child)),
        name_(std::move(name)),
        id_(id),
        qualifier_(std::move(qualifier)) {}

  static std::shared_ptr<const Alias> Make(ExprPtr child, std::string name,
                                           std::string qualifier = "") {
    return std::make_shared<Alias>(std::move(child), std::move(name),
                                   NextExprId(), std::move(qualifier));
  }
  static std::shared_ptr<const Alias> MakeWithId(ExprPtr child, std::string name,
                                                 ExprId id,
                                                 std::string qualifier = "") {
    return std::make_shared<Alias>(std::move(child), std::move(name), id,
                                   std::move(qualifier));
  }

  const ExprPtr& child() const { return child_; }
  const std::string& name() const override { return name_; }
  ExprId expr_id() const override { return id_; }
  const std::string& qualifier() const { return qualifier_; }
  AttributePtr ToAttribute() const override {
    return std::make_shared<AttributeReference>(name_, child_->data_type(),
                                                child_->nullable(), id_,
                                                qualifier_);
  }

  std::string NodeName() const override { return "Alias"; }
  ExprVector Children() const override { return {child_}; }
  ExprPtr WithNewChildren(ExprVector children) const override {
    return MakeWithId(children[0], name_, id_, qualifier_);
  }
  DataTypePtr data_type() const override { return child_->data_type(); }
  bool nullable() const override { return child_->nullable(); }
  Value Eval(const Row& row) const override { return child_->Eval(row); }
  std::string ToString() const override {
    return child_->ToString() + " AS " + name_ + "#" + std::to_string(id_);
  }

 private:
  ExprPtr child_;
  std::string name_;
  ExprId id_;
  std::string qualifier_;
};

/// Wraps any expression as a NamedExpression: attributes pass through,
/// anything else gets an Alias with `fallback_name`.
NamedExprPtr ToNamed(const ExprPtr& expr, const std::string& fallback_name);

}  // namespace ssql

#endif  // SSQL_CATALYST_EXPR_ATTRIBUTE_H_
