#ifndef SSQL_CATALYST_EXPR_PREDICATES_H_
#define SSQL_CATALYST_EXPR_PREDICATES_H_

#include <memory>
#include <string>

#include "catalyst/expr/arithmetic.h"
#include "catalyst/expr/expression.h"

namespace ssql {

/// Comparisons; null-propagating, boolean-typed.
class BinaryComparison : public BinaryExpression {
 public:
  using BinaryExpression::BinaryExpression;
  DataTypePtr data_type() const override { return DataType::Boolean(); }
  Value Eval(const Row& row) const override;

 protected:
  /// Decides from the three-way comparison of the two operand values.
  virtual bool FromCompare(int cmp) const = 0;
};

#define SSQL_DECLARE_CMP(CLASS, SYM)                              \
  class CLASS : public BinaryComparison {                         \
   public:                                                        \
    using BinaryComparison::BinaryComparison;                     \
    static ExprPtr Make(ExprPtr l, ExprPtr r) {                   \
      return std::make_shared<CLASS>(std::move(l), std::move(r)); \
    }                                                             \
    std::string NodeName() const override { return #CLASS; }     \
    std::string Symbol() const override { return SYM; }          \
    ExprPtr WithNewChildren(ExprVector c) const override {        \
      return Make(c[0], c[1]);                                    \
    }                                                             \
                                                                  \
   protected:                                                     \
    bool FromCompare(int cmp) const override;                     \
  };

SSQL_DECLARE_CMP(EqualTo, "=")
SSQL_DECLARE_CMP(NotEqualTo, "!=")
SSQL_DECLARE_CMP(LessThan, "<")
SSQL_DECLARE_CMP(LessThanOrEqual, "<=")
SSQL_DECLARE_CMP(GreaterThan, ">")
SSQL_DECLARE_CMP(GreaterThanOrEqual, ">=")

#undef SSQL_DECLARE_CMP

/// Logical AND with SQL three-valued logic:
/// false AND anything == false, true AND null == null.
class And : public BinaryExpression {
 public:
  using BinaryExpression::BinaryExpression;
  static ExprPtr Make(ExprPtr l, ExprPtr r) {
    return std::make_shared<And>(std::move(l), std::move(r));
  }
  std::string NodeName() const override { return "And"; }
  std::string Symbol() const override { return "AND"; }
  ExprPtr WithNewChildren(ExprVector c) const override { return Make(c[0], c[1]); }
  DataTypePtr data_type() const override { return DataType::Boolean(); }
  Value Eval(const Row& row) const override;
};

/// Logical OR with SQL three-valued logic.
class Or : public BinaryExpression {
 public:
  using BinaryExpression::BinaryExpression;
  static ExprPtr Make(ExprPtr l, ExprPtr r) {
    return std::make_shared<Or>(std::move(l), std::move(r));
  }
  std::string NodeName() const override { return "Or"; }
  std::string Symbol() const override { return "OR"; }
  ExprPtr WithNewChildren(ExprVector c) const override { return Make(c[0], c[1]); }
  DataTypePtr data_type() const override { return DataType::Boolean(); }
  Value Eval(const Row& row) const override;
};

/// Logical negation; null stays null.
class Not : public Expression {
 public:
  explicit Not(ExprPtr child) : child_(std::move(child)) {}
  static ExprPtr Make(ExprPtr child) {
    return std::make_shared<Not>(std::move(child));
  }
  const ExprPtr& child() const { return child_; }
  std::string NodeName() const override { return "Not"; }
  ExprVector Children() const override { return {child_}; }
  ExprPtr WithNewChildren(ExprVector c) const override { return Make(c[0]); }
  DataTypePtr data_type() const override { return DataType::Boolean(); }
  Value Eval(const Row& row) const override;
  std::string ToString() const override {
    return "NOT " + child_->ToString();
  }

 private:
  ExprPtr child_;
};

/// IS NULL — never null itself.
class IsNull : public Expression {
 public:
  explicit IsNull(ExprPtr child) : child_(std::move(child)) {}
  static ExprPtr Make(ExprPtr child) {
    return std::make_shared<IsNull>(std::move(child));
  }
  const ExprPtr& child() const { return child_; }
  std::string NodeName() const override { return "IsNull"; }
  ExprVector Children() const override { return {child_}; }
  ExprPtr WithNewChildren(ExprVector c) const override { return Make(c[0]); }
  DataTypePtr data_type() const override { return DataType::Boolean(); }
  bool nullable() const override { return false; }
  Value Eval(const Row& row) const override {
    return Value(child_->Eval(row).is_null());
  }
  std::string ToString() const override {
    return child_->ToString() + " IS NULL";
  }

 private:
  ExprPtr child_;
};

/// IS NOT NULL — never null itself.
class IsNotNull : public Expression {
 public:
  explicit IsNotNull(ExprPtr child) : child_(std::move(child)) {}
  static ExprPtr Make(ExprPtr child) {
    return std::make_shared<IsNotNull>(std::move(child));
  }
  const ExprPtr& child() const { return child_; }
  std::string NodeName() const override { return "IsNotNull"; }
  ExprVector Children() const override { return {child_}; }
  ExprPtr WithNewChildren(ExprVector c) const override { return Make(c[0]); }
  DataTypePtr data_type() const override { return DataType::Boolean(); }
  bool nullable() const override { return false; }
  Value Eval(const Row& row) const override {
    return Value(!child_->Eval(row).is_null());
  }
  std::string ToString() const override {
    return child_->ToString() + " IS NOT NULL";
  }

 private:
  ExprPtr child_;
};

/// `value IN (list...)`. Null semantics: null IN (...) is null; a non-null
/// value not matching a list containing null is null.
class In : public Expression {
 public:
  In(ExprPtr value, ExprVector list);
  static ExprPtr Make(ExprPtr value, ExprVector list) {
    return std::make_shared<In>(std::move(value), std::move(list));
  }
  const ExprPtr& value() const { return children_[0]; }
  std::string NodeName() const override { return "In"; }
  ExprVector Children() const override { return children_; }
  ExprPtr WithNewChildren(ExprVector c) const override;
  DataTypePtr data_type() const override { return DataType::Boolean(); }
  Value Eval(const Row& row) const override;
  std::string ToString() const override;

 private:
  ExprVector children_;  // [0] = value, rest = list
};

}  // namespace ssql

#endif  // SSQL_CATALYST_EXPR_PREDICATES_H_
