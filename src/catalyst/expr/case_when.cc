#include "catalyst/expr/case_when.h"

namespace ssql {

Value CaseWhen::Eval(const Row& row) const {
  size_t n = num_branches();
  for (size_t i = 0; i < n; ++i) {
    Value cond = children_[2 * i]->Eval(row);
    if (!cond.is_null() && cond.bool_value()) {
      return children_[2 * i + 1]->Eval(row);
    }
  }
  if (has_else_) return children_.back()->Eval(row);
  return Value::Null();
}

std::string CaseWhen::ToString() const {
  std::string s = "CASE";
  size_t n = num_branches();
  for (size_t i = 0; i < n; ++i) {
    s += " WHEN " + children_[2 * i]->ToString() + " THEN " +
         children_[2 * i + 1]->ToString();
  }
  if (has_else_) s += " ELSE " + children_.back()->ToString();
  return s + " END";
}

Value Coalesce::Eval(const Row& row) const {
  for (const auto& c : children_) {
    Value v = c->Eval(row);
    if (!v.is_null()) return v;
  }
  return Value::Null();
}

}  // namespace ssql
