#include "catalyst/expr/string_ops.h"

#include "util/string_util.h"

namespace ssql {

namespace {

/// Evaluates both sides of a binary string expression; returns false if
/// either is null (result should be null).
bool EvalStringPair(const BinaryExpression& e, const Row& row, Value* l,
                    Value* r) {
  *l = e.left()->Eval(row);
  if (l->is_null()) return false;
  *r = e.right()->Eval(row);
  return !r->is_null();
}

}  // namespace

Value Like::Eval(const Row& row) const {
  Value l, r;
  if (!EvalStringPair(*this, row, &l, &r)) return Value::Null();
  return Value(LikeMatch(l.str(), r.str()));
}

Value StartsWith::Eval(const Row& row) const {
  Value l, r;
  if (!EvalStringPair(*this, row, &l, &r)) return Value::Null();
  const std::string& s = l.str();
  const std::string& p = r.str();
  return Value(s.size() >= p.size() && s.compare(0, p.size(), p) == 0);
}

Value EndsWith::Eval(const Row& row) const {
  Value l, r;
  if (!EvalStringPair(*this, row, &l, &r)) return Value::Null();
  const std::string& s = l.str();
  const std::string& p = r.str();
  return Value(s.size() >= p.size() &&
               s.compare(s.size() - p.size(), p.size(), p) == 0);
}

Value StringContains::Eval(const Row& row) const {
  Value l, r;
  if (!EvalStringPair(*this, row, &l, &r)) return Value::Null();
  return Value(l.str().find(r.str()) != std::string::npos);
}

Value Upper::Eval(const Row& row) const {
  Value v = child_->Eval(row);
  if (v.is_null()) return v;
  return Value(ToUpper(v.str()));
}

Value Lower::Eval(const Row& row) const {
  Value v = child_->Eval(row);
  if (v.is_null()) return v;
  return Value(ToLower(v.str()));
}

Value Substring::Eval(const Row& row) const {
  Value str = children_[0]->Eval(row);
  if (str.is_null()) return Value::Null();
  Value pos = children_[1]->Eval(row);
  Value len = children_[2]->Eval(row);
  if (pos.is_null() || len.is_null()) return Value::Null();
  const std::string& s = str.str();
  int64_t p = pos.AsInt64();
  int64_t n = len.AsInt64();
  if (n < 0) n = 0;
  // SQL is 1-based; negative positions count from the end.
  int64_t start;
  if (p > 0) {
    start = p - 1;
  } else if (p < 0) {
    start = static_cast<int64_t>(s.size()) + p;
    if (start < 0) start = 0;
  } else {
    start = 0;
  }
  if (start >= static_cast<int64_t>(s.size())) return Value(std::string());
  return Value(s.substr(static_cast<size_t>(start),
                        static_cast<size_t>(n)));
}

Value StringLength::Eval(const Row& row) const {
  Value v = child_->Eval(row);
  if (v.is_null()) return v;
  return Value(static_cast<int32_t>(v.str().size()));
}

Value Concat::Eval(const Row& row) const {
  std::string out;
  for (const auto& c : children_) {
    Value v = c->Eval(row);
    if (v.is_null()) return Value::Null();
    out += v.type_id() == TypeId::kString ? v.str() : v.ToString();
  }
  return Value(std::move(out));
}

Value StringTrim::Eval(const Row& row) const {
  Value v = child_->Eval(row);
  if (v.is_null()) return v;
  return Value(std::string(ssql::Trim(v.str())));
}

Value SplitString::Eval(const Row& row) const {
  Value l, r;
  if (!EvalStringPair(*this, row, &l, &r)) return Value::Null();
  std::vector<Value> parts;
  if (r.str().empty()) {
    for (const std::string& w : SplitWhitespace(l.str())) {
      parts.emplace_back(w);
    }
  } else {
    for (const std::string& w : Split(l.str(), r.str()[0])) {
      parts.emplace_back(w);
    }
  }
  return Value::Array(std::move(parts));
}

}  // namespace ssql
