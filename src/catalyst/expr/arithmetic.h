#ifndef SSQL_CATALYST_EXPR_ARITHMETIC_H_
#define SSQL_CATALYST_EXPR_ARITHMETIC_H_

#include <memory>
#include <string>

#include "catalyst/expr/expression.h"

namespace ssql {

/// Common shape for two-child expressions.
class BinaryExpression : public Expression {
 public:
  BinaryExpression(ExprPtr left, ExprPtr right)
      : left_(std::move(left)), right_(std::move(right)) {}

  const ExprPtr& left() const { return left_; }
  const ExprPtr& right() const { return right_; }

  ExprVector Children() const override { return {left_, right_}; }

  /// Infix symbol for display ("+", "=", "AND", ...).
  virtual std::string Symbol() const = 0;
  std::string ToString() const override {
    return "(" + left_->ToString() + " " + Symbol() + " " + right_->ToString() +
           ")";
  }

 private:
  ExprPtr left_;
  ExprPtr right_;
};

/// Numeric binary operators. After type coercion both sides share one
/// numeric type; evaluation is null-propagating (null op x == null).
class BinaryArithmetic : public BinaryExpression {
 public:
  using BinaryExpression::BinaryExpression;
  DataTypePtr data_type() const override;
  Value Eval(const Row& row) const override;

 protected:
  virtual int64_t EvalInt(int64_t a, int64_t b) const = 0;
  virtual double EvalDouble(double a, double b) const = 0;
  virtual Decimal EvalDecimal(const Decimal& a, const Decimal& b) const = 0;
  /// Division-like operators return null on zero divisor.
  virtual bool NullOnZeroRight() const { return false; }
};

#define SSQL_DECLARE_ARITH(CLASS, SYM)                               \
  class CLASS : public BinaryArithmetic {                            \
   public:                                                           \
    using BinaryArithmetic::BinaryArithmetic;                        \
    static ExprPtr Make(ExprPtr l, ExprPtr r) {                      \
      return std::make_shared<CLASS>(std::move(l), std::move(r));    \
    }                                                                \
    std::string NodeName() const override { return #CLASS; }        \
    std::string Symbol() const override { return SYM; }             \
    ExprPtr WithNewChildren(ExprVector c) const override {           \
      return Make(c[0], c[1]);                                       \
    }                                                                \
                                                                     \
   protected:                                                        \
    int64_t EvalInt(int64_t a, int64_t b) const override;            \
    double EvalDouble(double a, double b) const override;            \
    Decimal EvalDecimal(const Decimal& a, const Decimal& b) const override;

SSQL_DECLARE_ARITH(Add, "+")
};
SSQL_DECLARE_ARITH(Subtract, "-")
};
SSQL_DECLARE_ARITH(Multiply, "*")
};
SSQL_DECLARE_ARITH(Divide, "/")
  bool NullOnZeroRight() const override { return true; }
};
SSQL_DECLARE_ARITH(Remainder, "%")
  bool NullOnZeroRight() const override { return true; }
};

#undef SSQL_DECLARE_ARITH

/// Unary negation.
class UnaryMinus : public Expression {
 public:
  explicit UnaryMinus(ExprPtr child) : child_(std::move(child)) {}
  static ExprPtr Make(ExprPtr child) {
    return std::make_shared<UnaryMinus>(std::move(child));
  }
  const ExprPtr& child() const { return child_; }
  std::string NodeName() const override { return "UnaryMinus"; }
  ExprVector Children() const override { return {child_}; }
  ExprPtr WithNewChildren(ExprVector c) const override { return Make(c[0]); }
  DataTypePtr data_type() const override { return child_->data_type(); }
  Value Eval(const Row& row) const override;
  std::string ToString() const override { return "(- " + child_->ToString() + ")"; }

 private:
  ExprPtr child_;
};

/// Absolute value.
class Abs : public Expression {
 public:
  explicit Abs(ExprPtr child) : child_(std::move(child)) {}
  static ExprPtr Make(ExprPtr child) {
    return std::make_shared<Abs>(std::move(child));
  }
  std::string NodeName() const override { return "Abs"; }
  ExprVector Children() const override { return {child_}; }
  ExprPtr WithNewChildren(ExprVector c) const override { return Make(c[0]); }
  DataTypePtr data_type() const override { return child_->data_type(); }
  Value Eval(const Row& row) const override;

 private:
  ExprPtr child_;
};

/// Extracts the int64 unscaled value of a decimal — half of the paper's
/// DecimalAggregates rule (Section 4.3.2): SUM over decimals that fit a
/// long is rewritten to integer arithmetic.
class UnscaledValue : public Expression {
 public:
  explicit UnscaledValue(ExprPtr child) : child_(std::move(child)) {}
  static ExprPtr Make(ExprPtr child) {
    return std::make_shared<UnscaledValue>(std::move(child));
  }
  const ExprPtr& child() const { return child_; }
  std::string NodeName() const override { return "UnscaledValue"; }
  ExprVector Children() const override { return {child_}; }
  ExprPtr WithNewChildren(ExprVector c) const override { return Make(c[0]); }
  DataTypePtr data_type() const override { return DataType::Int64(); }
  Value Eval(const Row& row) const override;

 private:
  ExprPtr child_;
};

/// Reassembles a decimal from an int64 unscaled value — the other half of
/// the DecimalAggregates rewrite.
class MakeDecimal : public Expression {
 public:
  MakeDecimal(ExprPtr child, int precision, int scale)
      : child_(std::move(child)), precision_(precision), scale_(scale) {}
  static ExprPtr Make(ExprPtr child, int precision, int scale) {
    return std::make_shared<MakeDecimal>(std::move(child), precision, scale);
  }
  const ExprPtr& child() const { return child_; }
  int precision() const { return precision_; }
  int scale() const { return scale_; }
  std::string NodeName() const override { return "MakeDecimal"; }
  ExprVector Children() const override { return {child_}; }
  ExprPtr WithNewChildren(ExprVector c) const override {
    return Make(c[0], precision_, scale_);
  }
  DataTypePtr data_type() const override {
    return DecimalType::Make(precision_, scale_);
  }
  Value Eval(const Row& row) const override;
  std::string ToString() const override {
    return "MakeDecimal(" + child_->ToString() + "," +
           std::to_string(precision_) + "," + std::to_string(scale_) + ")";
  }

 private:
  ExprPtr child_;
  int precision_;
  int scale_;
};

}  // namespace ssql

#endif  // SSQL_CATALYST_EXPR_ARITHMETIC_H_
