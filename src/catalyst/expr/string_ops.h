#ifndef SSQL_CATALYST_EXPR_STRING_OPS_H_
#define SSQL_CATALYST_EXPR_STRING_OPS_H_

#include <memory>
#include <string>

#include "catalyst/expr/arithmetic.h"
#include "catalyst/expr/expression.h"

namespace ssql {

/// SQL LIKE with % and _ wildcards. The optimizer rewrites simple patterns
/// into StartsWith/EndsWith/StringContains (the paper's 12-line LIKE rule,
/// Section 4.3.2).
class Like : public BinaryExpression {
 public:
  using BinaryExpression::BinaryExpression;
  static ExprPtr Make(ExprPtr l, ExprPtr r) {
    return std::make_shared<Like>(std::move(l), std::move(r));
  }
  std::string NodeName() const override { return "Like"; }
  std::string Symbol() const override { return "LIKE"; }
  ExprPtr WithNewChildren(ExprVector c) const override { return Make(c[0], c[1]); }
  DataTypePtr data_type() const override { return DataType::Boolean(); }
  Value Eval(const Row& row) const override;
};

#define SSQL_DECLARE_STRPRED(CLASS)                               \
  class CLASS : public BinaryExpression {                         \
   public:                                                        \
    using BinaryExpression::BinaryExpression;                     \
    static ExprPtr Make(ExprPtr l, ExprPtr r) {                   \
      return std::make_shared<CLASS>(std::move(l), std::move(r)); \
    }                                                             \
    std::string NodeName() const override { return #CLASS; }     \
    std::string Symbol() const override { return #CLASS; }       \
    ExprPtr WithNewChildren(ExprVector c) const override {        \
      return Make(c[0], c[1]);                                    \
    }                                                             \
    DataTypePtr data_type() const override {                      \
      return DataType::Boolean();                                 \
    }                                                             \
    Value Eval(const Row& row) const override;                    \
  };

SSQL_DECLARE_STRPRED(StartsWith)
SSQL_DECLARE_STRPRED(EndsWith)
SSQL_DECLARE_STRPRED(StringContains)

#undef SSQL_DECLARE_STRPRED

/// UPPER / LOWER.
class Upper : public Expression {
 public:
  explicit Upper(ExprPtr child) : child_(std::move(child)) {}
  static ExprPtr Make(ExprPtr c) { return std::make_shared<Upper>(std::move(c)); }
  std::string NodeName() const override { return "Upper"; }
  ExprVector Children() const override { return {child_}; }
  ExprPtr WithNewChildren(ExprVector c) const override { return Make(c[0]); }
  DataTypePtr data_type() const override { return DataType::String(); }
  Value Eval(const Row& row) const override;

 private:
  ExprPtr child_;
};

class Lower : public Expression {
 public:
  explicit Lower(ExprPtr child) : child_(std::move(child)) {}
  static ExprPtr Make(ExprPtr c) { return std::make_shared<Lower>(std::move(c)); }
  std::string NodeName() const override { return "Lower"; }
  ExprVector Children() const override { return {child_}; }
  ExprPtr WithNewChildren(ExprVector c) const override { return Make(c[0]); }
  DataTypePtr data_type() const override { return DataType::String(); }
  Value Eval(const Row& row) const override;

 private:
  ExprPtr child_;
};

/// SUBSTRING(str, pos, len): 1-based `pos` like SQL.
class Substring : public Expression {
 public:
  Substring(ExprPtr str, ExprPtr pos, ExprPtr len)
      : children_{std::move(str), std::move(pos), std::move(len)} {}
  static ExprPtr Make(ExprPtr str, ExprPtr pos, ExprPtr len) {
    return std::make_shared<Substring>(std::move(str), std::move(pos),
                                       std::move(len));
  }
  std::string NodeName() const override { return "Substring"; }
  ExprVector Children() const override { return children_; }
  ExprPtr WithNewChildren(ExprVector c) const override {
    return Make(c[0], c[1], c[2]);
  }
  DataTypePtr data_type() const override { return DataType::String(); }
  Value Eval(const Row& row) const override;

 private:
  ExprVector children_;
};

/// LENGTH(str).
class StringLength : public Expression {
 public:
  explicit StringLength(ExprPtr child) : child_(std::move(child)) {}
  static ExprPtr Make(ExprPtr c) {
    return std::make_shared<StringLength>(std::move(c));
  }
  std::string NodeName() const override { return "StringLength"; }
  ExprVector Children() const override { return {child_}; }
  ExprPtr WithNewChildren(ExprVector c) const override { return Make(c[0]); }
  DataTypePtr data_type() const override { return DataType::Int32(); }
  Value Eval(const Row& row) const override;

 private:
  ExprPtr child_;
};

/// CONCAT(s1, s2, ...).
class Concat : public Expression {
 public:
  explicit Concat(ExprVector children) : children_(std::move(children)) {}
  static ExprPtr Make(ExprVector children) {
    return std::make_shared<Concat>(std::move(children));
  }
  std::string NodeName() const override { return "Concat"; }
  ExprVector Children() const override { return children_; }
  ExprPtr WithNewChildren(ExprVector c) const override { return Make(std::move(c)); }
  DataTypePtr data_type() const override { return DataType::String(); }
  Value Eval(const Row& row) const override;

 private:
  ExprVector children_;
};

/// TRIM(str) — strips surrounding whitespace.
class StringTrim : public Expression {
 public:
  explicit StringTrim(ExprPtr child) : child_(std::move(child)) {}
  static ExprPtr Make(ExprPtr c) { return std::make_shared<StringTrim>(std::move(c)); }
  std::string NodeName() const override { return "StringTrim"; }
  ExprVector Children() const override { return {child_}; }
  ExprPtr WithNewChildren(ExprVector c) const override { return Make(c[0]); }
  DataTypePtr data_type() const override { return DataType::String(); }
  Value Eval(const Row& row) const override;

 private:
  ExprPtr child_;
};

/// SPLIT(str, sep) -> array<string>; the Q4/word-count workhorse.
class SplitString : public BinaryExpression {
 public:
  using BinaryExpression::BinaryExpression;
  static ExprPtr Make(ExprPtr l, ExprPtr r) {
    return std::make_shared<SplitString>(std::move(l), std::move(r));
  }
  std::string NodeName() const override { return "SplitString"; }
  std::string Symbol() const override { return "SPLIT"; }
  ExprPtr WithNewChildren(ExprVector c) const override { return Make(c[0], c[1]); }
  DataTypePtr data_type() const override {
    return ArrayType::Make(DataType::String(), /*contains_null=*/false);
  }
  Value Eval(const Row& row) const override;
};

}  // namespace ssql

#endif  // SSQL_CATALYST_EXPR_STRING_OPS_H_
