#include "catalyst/expr/aggregates.h"

#include "types/schema.h"

namespace ssql {

void Count::Update(Value* acc, const Row& row) const {
  if (!children_.empty()) {
    if (children_[0]->Eval(row).is_null()) return;  // COUNT(e) skips nulls
  }
  *acc = Value(acc->i64() + 1);
}

void Count::Merge(Value* acc, const Value& other) const {
  *acc = Value(acc->i64() + other.i64());
}

std::string Count::ToString() const {
  if (is_star()) return "count(*)";
  return "count(" + children_[0]->ToString() + ")";
}

DataTypePtr Sum::data_type() const {
  const DataTypePtr& in = child_->data_type();
  switch (in->id()) {
    case TypeId::kInt32:
    case TypeId::kInt64:
      return DataType::Int64();
    case TypeId::kDouble:
      return DataType::Double();
    case TypeId::kDecimal: {
      const auto& d = AsDecimal(*in);
      int p = std::min(Decimal::kMaxLongDigits + 20, d.precision() + 10);
      return DecimalType::Make(p, d.scale());
    }
    default:
      throw AnalysisError("sum over non-numeric type " + in->ToString());
  }
}

namespace {

/// Adds `v` into the running sum `acc` (null acc means "no rows yet").
void SumInto(Value* acc, const Value& v, const DataType& result_type) {
  if (v.is_null()) return;
  if (acc->is_null()) {
    switch (result_type.id()) {
      case TypeId::kInt64:
        *acc = Value(v.AsInt64());
        return;
      case TypeId::kDouble:
        *acc = Value(v.AsDouble());
        return;
      case TypeId::kDecimal:
        *acc = Value(v.decimal());
        return;
      default:
        return;
    }
  }
  switch (result_type.id()) {
    case TypeId::kInt64:
      *acc = Value(acc->i64() + v.AsInt64());
      return;
    case TypeId::kDouble:
      *acc = Value(acc->f64() + v.AsDouble());
      return;
    case TypeId::kDecimal:
      *acc = Value(acc->decimal().Add(v.decimal()));
      return;
    default:
      return;
  }
}

}  // namespace

void Sum::Update(Value* acc, const Row& row) const {
  SumInto(acc, child_->Eval(row), *data_type());
}

void Sum::Merge(Value* acc, const Value& other) const {
  SumInto(acc, other, *data_type());
}

void Average::Update(Value* acc, const Row& row) const {
  Value v = child_->Eval(row);
  if (v.is_null()) return;
  const auto& fields = acc->struct_data().fields;
  *acc = Value::Struct(
      {Value(fields[0].f64() + v.AsDouble()), Value(fields[1].i64() + 1)});
}

void Average::Merge(Value* acc, const Value& other) const {
  const auto& a = acc->struct_data().fields;
  const auto& b = other.struct_data().fields;
  *acc = Value::Struct(
      {Value(a[0].f64() + b[0].f64()), Value(a[1].i64() + b[1].i64())});
}

Value Average::Finish(const Value& acc) const {
  const auto& fields = acc.struct_data().fields;
  int64_t count = fields[1].i64();
  if (count == 0) return Value::Null();
  return Value(fields[0].f64() / static_cast<double>(count));
}

void MinMax::Update(Value* acc, const Row& row) const {
  Value v = child_->Eval(row);
  Merge(acc, v);
}

void MinMax::Merge(Value* acc, const Value& other) const {
  if (other.is_null()) return;
  if (acc->is_null()) {
    *acc = other;
    return;
  }
  int cmp = other.Compare(*acc);
  if ((is_min_ && cmp < 0) || (!is_min_ && cmp > 0)) *acc = other;
}

void CountDistinct::Update(Value* acc, const Row& row) const {
  Value v = child_->Eval(row);
  if (v.is_null()) return;
  Merge(acc, Value::Array({v}));
}

void CountDistinct::Merge(Value* acc, const Value& other) const {
  std::vector<Value> merged = acc->array().elements;
  for (const auto& v : other.array().elements) {
    bool seen = false;
    for (const auto& existing : merged) {
      if (existing.Equals(v)) {
        seen = true;
        break;
      }
    }
    if (!seen) merged.push_back(v);
  }
  *acc = Value::Array(std::move(merged));
}

Value CountDistinct::Finish(const Value& acc) const {
  return Value(static_cast<int64_t>(acc.array().elements.size()));
}

bool ContainsAggregate(const ExprPtr& expr) {
  bool found = false;
  expr->Foreach([&found](const Expression& e) {
    if (dynamic_cast<const AggregateFunction*>(&e) != nullptr) found = true;
  });
  return found;
}

}  // namespace ssql
