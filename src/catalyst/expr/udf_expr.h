#ifndef SSQL_CATALYST_EXPR_UDF_EXPR_H_
#define SSQL_CATALYST_EXPR_UDF_EXPR_H_

#include <functional>
#include <memory>
#include <string>

#include "catalyst/expr/expression.h"

namespace ssql {

/// A user-defined scalar function registered inline from the host language
/// (Section 3.7). The engine treats the body as opaque: it is interpreted
/// per row and the codegen backend calls back into it (the paper's mixed
/// compiled/interpreted evaluation).
class ScalarUDF : public Expression {
 public:
  using Body = std::function<Value(const std::vector<Value>&)>;

  ScalarUDF(std::string name, ExprVector args, DataTypePtr return_type,
            std::shared_ptr<const Body> body, bool deterministic = true)
      : name_(std::move(name)),
        args_(std::move(args)),
        return_type_(std::move(return_type)),
        body_(std::move(body)),
        deterministic_(deterministic) {}

  static ExprPtr Make(std::string name, ExprVector args, DataTypePtr return_type,
                      Body body, bool deterministic = true) {
    return std::make_shared<ScalarUDF>(
        std::move(name), std::move(args), std::move(return_type),
        std::make_shared<const Body>(std::move(body)), deterministic);
  }

  const std::string& name() const { return name_; }

  std::string NodeName() const override { return "ScalarUDF"; }
  ExprVector Children() const override { return args_; }
  ExprPtr WithNewChildren(ExprVector c) const override {
    return std::make_shared<ScalarUDF>(name_, std::move(c), return_type_, body_,
                                       deterministic_);
  }
  DataTypePtr data_type() const override { return return_type_; }
  bool nullable() const override { return true; }
  bool deterministic() const override { return deterministic_; }
  Value Eval(const Row& row) const override {
    std::vector<Value> args;
    args.reserve(args_.size());
    for (const auto& a : args_) args.push_back(a->Eval(row));
    return (*body_)(args);
  }
  std::string ToString() const override;

 private:
  std::string name_;
  ExprVector args_;
  DataTypePtr return_type_;
  std::shared_ptr<const Body> body_;
  bool deterministic_;
};

}  // namespace ssql

#endif  // SSQL_CATALYST_EXPR_UDF_EXPR_H_
