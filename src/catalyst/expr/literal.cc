#include "catalyst/expr/literal.h"

#include "util/string_util.h"

namespace ssql {

ExprPtr Literal::Infer(Value value) {
  DataTypePtr type;
  switch (value.type_id()) {
    case TypeId::kNull:
      type = DataType::Null();
      break;
    case TypeId::kBoolean:
      type = DataType::Boolean();
      break;
    case TypeId::kInt32:
      type = DataType::Int32();
      break;
    case TypeId::kInt64:
      type = DataType::Int64();
      break;
    case TypeId::kDouble:
      type = DataType::Double();
      break;
    case TypeId::kString:
      type = DataType::String();
      break;
    case TypeId::kDecimal:
      type = DecimalType::Make(value.decimal().precision(), value.decimal().scale());
      break;
    case TypeId::kDate:
      type = DataType::Date();
      break;
    case TypeId::kTimestamp:
      type = DataType::Timestamp();
      break;
    default:
      throw AnalysisError("cannot infer literal type for complex value");
  }
  return Make(std::move(value), std::move(type));
}

std::string Literal::ToString() const {
  if (value_.is_null()) return "null";
  if (value_.type_id() == TypeId::kString) {
    return "'" + EscapeForDisplay(value_.str()) + "'";
  }
  return value_.ToString();
}

}  // namespace ssql
