#include "catalyst/expr/predicates.h"

namespace ssql {

Value BinaryComparison::Eval(const Row& row) const {
  Value l = left()->Eval(row);
  if (l.is_null()) return Value::Null();
  Value r = right()->Eval(row);
  if (r.is_null()) return Value::Null();
  return Value(FromCompare(l.Compare(r)));
}

bool EqualTo::FromCompare(int cmp) const { return cmp == 0; }
bool NotEqualTo::FromCompare(int cmp) const { return cmp != 0; }
bool LessThan::FromCompare(int cmp) const { return cmp < 0; }
bool LessThanOrEqual::FromCompare(int cmp) const { return cmp <= 0; }
bool GreaterThan::FromCompare(int cmp) const { return cmp > 0; }
bool GreaterThanOrEqual::FromCompare(int cmp) const { return cmp >= 0; }

Value And::Eval(const Row& row) const {
  Value l = left()->Eval(row);
  if (!l.is_null() && !l.bool_value()) return Value(false);
  Value r = right()->Eval(row);
  if (!r.is_null() && !r.bool_value()) return Value(false);
  if (l.is_null() || r.is_null()) return Value::Null();
  return Value(true);
}

Value Or::Eval(const Row& row) const {
  Value l = left()->Eval(row);
  if (!l.is_null() && l.bool_value()) return Value(true);
  Value r = right()->Eval(row);
  if (!r.is_null() && r.bool_value()) return Value(true);
  if (l.is_null() || r.is_null()) return Value::Null();
  return Value(false);
}

Value Not::Eval(const Row& row) const {
  Value v = child_->Eval(row);
  if (v.is_null()) return v;
  return Value(!v.bool_value());
}

In::In(ExprPtr value, ExprVector list) {
  children_.reserve(list.size() + 1);
  children_.push_back(std::move(value));
  for (auto& e : list) children_.push_back(std::move(e));
}

ExprPtr In::WithNewChildren(ExprVector c) const {
  ExprPtr value = c[0];
  ExprVector list(c.begin() + 1, c.end());
  return Make(std::move(value), std::move(list));
}

Value In::Eval(const Row& row) const {
  Value v = children_[0]->Eval(row);
  if (v.is_null()) return Value::Null();
  bool saw_null = false;
  for (size_t i = 1; i < children_.size(); ++i) {
    Value item = children_[i]->Eval(row);
    if (item.is_null()) {
      saw_null = true;
      continue;
    }
    if (v.Equals(item)) return Value(true);
  }
  if (saw_null) return Value::Null();
  return Value(false);
}

std::string In::ToString() const {
  std::string s = children_[0]->ToString() + " IN (";
  for (size_t i = 1; i < children_.size(); ++i) {
    if (i > 1) s += ", ";
    s += children_[i]->ToString();
  }
  return s + ")";
}

}  // namespace ssql
