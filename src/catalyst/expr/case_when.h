#ifndef SSQL_CATALYST_EXPR_CASE_WHEN_H_
#define SSQL_CATALYST_EXPR_CASE_WHEN_H_

#include <memory>
#include <string>

#include "catalyst/expr/expression.h"

namespace ssql {

/// CASE WHEN c1 THEN v1 [WHEN c2 THEN v2]... [ELSE e] END.
/// Children layout: [c1, v1, c2, v2, ..., (else)]. `has_else` disambiguates
/// the trailing child.
class CaseWhen : public Expression {
 public:
  CaseWhen(ExprVector children, bool has_else)
      : children_(std::move(children)), has_else_(has_else) {}

  static ExprPtr Make(ExprVector children, bool has_else) {
    return std::make_shared<CaseWhen>(std::move(children), has_else);
  }
  /// IF(cond, a, b) convenience.
  static ExprPtr If(ExprPtr cond, ExprPtr then_value, ExprPtr else_value) {
    return Make({std::move(cond), std::move(then_value), std::move(else_value)},
                /*has_else=*/true);
  }

  size_t num_branches() const { return (children_.size() - (has_else_ ? 1 : 0)) / 2; }
  bool has_else() const { return has_else_; }

  std::string NodeName() const override { return "CaseWhen"; }
  ExprVector Children() const override { return children_; }
  ExprPtr WithNewChildren(ExprVector c) const override {
    return Make(std::move(c), has_else_);
  }
  DataTypePtr data_type() const override { return children_[1]->data_type(); }
  bool nullable() const override { return true; }
  Value Eval(const Row& row) const override;
  std::string ToString() const override;

 private:
  ExprVector children_;
  bool has_else_;
};

/// COALESCE(e1, e2, ...): first non-null argument.
class Coalesce : public Expression {
 public:
  explicit Coalesce(ExprVector children) : children_(std::move(children)) {}
  static ExprPtr Make(ExprVector children) {
    return std::make_shared<Coalesce>(std::move(children));
  }
  std::string NodeName() const override { return "Coalesce"; }
  ExprVector Children() const override { return children_; }
  ExprPtr WithNewChildren(ExprVector c) const override { return Make(std::move(c)); }
  DataTypePtr data_type() const override { return children_[0]->data_type(); }
  Value Eval(const Row& row) const override;

 private:
  ExprVector children_;
};

}  // namespace ssql

#endif  // SSQL_CATALYST_EXPR_CASE_WHEN_H_
