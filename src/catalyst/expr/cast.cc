#include "catalyst/expr/cast.h"

#include <cstdio>

#include "types/schema.h"
#include "util/string_util.h"

namespace ssql {

bool Cast::CanCast(const DataType& from, const DataType& to) {
  if (from.Equals(to)) return true;
  if (from.id() == TypeId::kNull) return true;
  // Anything atomic converts to string.
  if (to.id() == TypeId::kString && from.IsAtomic()) return true;
  // String parses to any atomic type.
  if (from.id() == TypeId::kString && to.IsAtomic()) return true;
  if (from.IsNumeric() && to.IsNumeric()) return true;
  if (from.id() == TypeId::kBoolean && to.IsNumeric()) return true;
  if (from.IsNumeric() && to.id() == TypeId::kBoolean) return true;
  if (from.id() == TypeId::kDate && to.id() == TypeId::kTimestamp) return true;
  if (from.id() == TypeId::kTimestamp && to.id() == TypeId::kDate) return true;
  return false;
}

Value Cast::Convert(const Value& value, const DataType& to) {
  if (value.is_null()) return Value::Null();
  TypeId from = value.type_id();
  switch (to.id()) {
    case TypeId::kBoolean:
      if (from == TypeId::kBoolean) return value;
      if (from == TypeId::kString) {
        if (EqualsIgnoreCase(value.str(), "true")) return Value(true);
        if (EqualsIgnoreCase(value.str(), "false")) return Value(false);
        return Value::Null();
      }
      return Value(value.AsInt64() != 0);
    case TypeId::kInt32:
      if (from == TypeId::kInt32) return value;
      if (from == TypeId::kString) {
        int64_t v;
        if (!ParseInt64(std::string(Trim(value.str())), &v)) return Value::Null();
        return Value(static_cast<int32_t>(v));
      }
      return Value(static_cast<int32_t>(value.AsInt64()));
    case TypeId::kInt64:
      if (from == TypeId::kInt64) return value;
      if (from == TypeId::kString) {
        int64_t v;
        if (!ParseInt64(std::string(Trim(value.str())), &v)) return Value::Null();
        return Value(v);
      }
      return Value(value.AsInt64());
    case TypeId::kDouble:
      if (from == TypeId::kDouble) return value;
      if (from == TypeId::kString) {
        double v;
        if (!ParseDouble(std::string(Trim(value.str())), &v)) return Value::Null();
        return Value(v);
      }
      return Value(value.AsDouble());
    case TypeId::kDecimal: {
      const auto& dt = static_cast<const DecimalType&>(to);
      if (from == TypeId::kDecimal) {
        return Value(value.decimal().Rescale(dt.precision(), dt.scale()));
      }
      if (from == TypeId::kString) {
        Decimal d;
        if (!Decimal::Parse(std::string(Trim(value.str())), &d)) {
          return Value::Null();
        }
        return Value(d.Rescale(dt.precision(), dt.scale()));
      }
      return Value(Decimal::FromDouble(value.AsDouble(), dt.precision(),
                                       dt.scale()));
    }
    case TypeId::kString:
      if (from == TypeId::kString) return value;
      return Value(value.ToString());
    case TypeId::kDate: {
      if (from == TypeId::kDate) return value;
      if (from == TypeId::kString) {
        DateValue d;
        if (!ParseDate(std::string(Trim(value.str())), &d)) return Value::Null();
        return Value(d);
      }
      if (from == TypeId::kTimestamp) {
        int64_t micros = value.timestamp().micros;
        int64_t days = micros / (86400LL * 1000000LL);
        if (micros < 0 && micros % (86400LL * 1000000LL) != 0) --days;
        return Value(DateValue{static_cast<int32_t>(days)});
      }
      return Value::Null();
    }
    case TypeId::kTimestamp: {
      if (from == TypeId::kTimestamp) return value;
      if (from == TypeId::kDate) {
        return Value(
            TimestampValue{static_cast<int64_t>(value.date().days) * 86400LL *
                           1000000LL});
      }
      if (from == TypeId::kString) {
        // Accept "YYYY-MM-DD[ HH:MM:SS]".
        std::string s(Trim(value.str()));
        DateValue d;
        std::string date_part = s.substr(0, s.find(' '));
        if (!ParseDate(date_part, &d)) return Value::Null();
        int64_t micros = static_cast<int64_t>(d.days) * 86400LL * 1000000LL;
        size_t space = s.find(' ');
        if (space != std::string::npos) {
          int h = 0, m = 0, sec = 0;
          if (std::sscanf(s.c_str() + space + 1, "%d:%d:%d", &h, &m, &sec) >= 2) {
            micros += ((h * 3600LL) + (m * 60LL) + sec) * 1000000LL;
          }
        }
        return Value(TimestampValue{micros});
      }
      return Value::Null();
    }
    default:
      return Value::Null();
  }
}

}  // namespace ssql
