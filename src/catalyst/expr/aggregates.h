#ifndef SSQL_CATALYST_EXPR_AGGREGATES_H_
#define SSQL_CATALYST_EXPR_AGGREGATES_H_

#include <memory>
#include <string>

#include "catalyst/expr/expression.h"

namespace ssql {

/// Base class of declarative aggregate functions. Execution follows the
/// partial-aggregation protocol of the engine: per-partition accumulators
/// (`InitAccumulator`/`Update`) are shuffled as plain Values and combined
/// (`Merge`), then finalized (`Finish`). All accumulator state must
/// therefore be expressible as a Value (structs allowed).
class AggregateFunction : public Expression {
 public:
  /// Fresh accumulator for an empty group.
  virtual Value InitAccumulator() const = 0;
  /// Folds one input row into the accumulator (child exprs must be bound).
  virtual void Update(Value* acc, const Row& row) const = 0;
  /// Combines a shuffled partial accumulator into `acc`.
  virtual void Merge(Value* acc, const Value& other) const = 0;
  /// Produces the final aggregate value from the accumulator.
  virtual Value Finish(const Value& acc) const = 0;

  /// Value produced for a group with no input rows (global aggregates over
  /// empty relations): 0 for count, null otherwise.
  virtual Value EmptyResult() const { return Value::Null(); }

  /// Aggregates cannot be evaluated row-at-a-time.
  Value Eval(const Row&) const override {
    throw ExecutionError(NodeName() + " must be evaluated by an aggregation");
  }
  bool foldable() const override { return false; }
};

using AggregatePtr = std::shared_ptr<const AggregateFunction>;

/// COUNT(expr) — or COUNT(*) when constructed with no child.
class Count : public AggregateFunction {
 public:
  explicit Count(ExprVector children) : children_(std::move(children)) {}
  static ExprPtr Make(ExprVector children) {
    return std::make_shared<Count>(std::move(children));
  }
  static ExprPtr Star() { return Make({}); }

  bool is_star() const { return children_.empty(); }

  std::string NodeName() const override { return "Count"; }
  ExprVector Children() const override { return children_; }
  ExprPtr WithNewChildren(ExprVector c) const override { return Make(std::move(c)); }
  DataTypePtr data_type() const override { return DataType::Int64(); }
  bool nullable() const override { return false; }

  Value InitAccumulator() const override { return Value(int64_t{0}); }
  void Update(Value* acc, const Row& row) const override;
  void Merge(Value* acc, const Value& other) const override;
  Value Finish(const Value& acc) const override { return acc; }
  Value EmptyResult() const override { return Value(int64_t{0}); }
  std::string ToString() const override;

 private:
  ExprVector children_;
};

/// SUM(expr). Result type: bigint for integral inputs, double for double,
/// decimal(min(p+10, 18), s) for decimals — the headroom the paper's
/// DecimalAggregates rule relies on.
class Sum : public AggregateFunction {
 public:
  explicit Sum(ExprPtr child) : child_(std::move(child)) {}
  static ExprPtr Make(ExprPtr child) {
    return std::make_shared<Sum>(std::move(child));
  }
  const ExprPtr& child() const { return child_; }

  std::string NodeName() const override { return "Sum"; }
  ExprVector Children() const override { return {child_}; }
  ExprPtr WithNewChildren(ExprVector c) const override { return Make(c[0]); }
  DataTypePtr data_type() const override;

  Value InitAccumulator() const override { return Value::Null(); }
  void Update(Value* acc, const Row& row) const override;
  void Merge(Value* acc, const Value& other) const override;
  Value Finish(const Value& acc) const override { return acc; }
  std::string ToString() const override { return "sum(" + child_->ToString() + ")"; }

 private:
  ExprPtr child_;
};

/// AVG(expr) -> double. Accumulator is {sum: double, count: bigint}.
class Average : public AggregateFunction {
 public:
  explicit Average(ExprPtr child) : child_(std::move(child)) {}
  static ExprPtr Make(ExprPtr child) {
    return std::make_shared<Average>(std::move(child));
  }
  const ExprPtr& child() const { return child_; }

  std::string NodeName() const override { return "Average"; }
  ExprVector Children() const override { return {child_}; }
  ExprPtr WithNewChildren(ExprVector c) const override { return Make(c[0]); }
  DataTypePtr data_type() const override { return DataType::Double(); }

  Value InitAccumulator() const override {
    return Value::Struct({Value(0.0), Value(int64_t{0})});
  }
  void Update(Value* acc, const Row& row) const override;
  void Merge(Value* acc, const Value& other) const override;
  Value Finish(const Value& acc) const override;
  std::string ToString() const override { return "avg(" + child_->ToString() + ")"; }

 private:
  ExprPtr child_;
};

/// MIN(expr) / MAX(expr).
class MinMax : public AggregateFunction {
 public:
  MinMax(ExprPtr child, bool is_min) : child_(std::move(child)), is_min_(is_min) {}
  static ExprPtr Min(ExprPtr child) {
    return std::make_shared<MinMax>(std::move(child), true);
  }
  static ExprPtr Max(ExprPtr child) {
    return std::make_shared<MinMax>(std::move(child), false);
  }
  const ExprPtr& child() const { return child_; }
  bool is_min() const { return is_min_; }

  std::string NodeName() const override { return is_min_ ? "Min" : "Max"; }
  ExprVector Children() const override { return {child_}; }
  ExprPtr WithNewChildren(ExprVector c) const override {
    return std::make_shared<MinMax>(c[0], is_min_);
  }
  DataTypePtr data_type() const override { return child_->data_type(); }

  Value InitAccumulator() const override { return Value::Null(); }
  void Update(Value* acc, const Row& row) const override;
  void Merge(Value* acc, const Value& other) const override;
  Value Finish(const Value& acc) const override { return acc; }
  std::string ToString() const override {
    return std::string(is_min_ ? "min(" : "max(") + child_->ToString() + ")";
  }

 private:
  ExprPtr child_;
  bool is_min_;
};

/// COUNT(DISTINCT expr). Accumulator is the array of distinct values seen;
/// adequate for the moderate cardinalities of a scaled-down benchmark.
class CountDistinct : public AggregateFunction {
 public:
  explicit CountDistinct(ExprPtr child) : child_(std::move(child)) {}
  static ExprPtr Make(ExprPtr child) {
    return std::make_shared<CountDistinct>(std::move(child));
  }
  const ExprPtr& child() const { return child_; }

  std::string NodeName() const override { return "CountDistinct"; }
  ExprVector Children() const override { return {child_}; }
  ExprPtr WithNewChildren(ExprVector c) const override { return Make(c[0]); }
  DataTypePtr data_type() const override { return DataType::Int64(); }
  bool nullable() const override { return false; }

  Value InitAccumulator() const override { return Value::Array({}); }
  void Update(Value* acc, const Row& row) const override;
  void Merge(Value* acc, const Value& other) const override;
  Value Finish(const Value& acc) const override;
  Value EmptyResult() const override { return Value(int64_t{0}); }
  std::string ToString() const override {
    return "count(DISTINCT " + child_->ToString() + ")";
  }

 private:
  ExprPtr child_;
};

/// True if `expr` contains an aggregate function anywhere.
bool ContainsAggregate(const ExprPtr& expr);

}  // namespace ssql

#endif  // SSQL_CATALYST_EXPR_AGGREGATES_H_
