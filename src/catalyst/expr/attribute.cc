#include "catalyst/expr/attribute.h"

#include <atomic>

#include "util/string_util.h"

namespace ssql {

ExprId NextExprId() {
  static std::atomic<ExprId> counter{0};
  return counter.fetch_add(1, std::memory_order_relaxed);
}

std::string UnresolvedAttribute::ToString() const {
  return "'" + JoinStrings(parts_, ".");
}

std::string UnresolvedFunction::ToString() const {
  std::string s = "'" + name_ + "(";
  if (distinct_) s += "DISTINCT ";
  auto children = Children();
  for (size_t i = 0; i < children.size(); ++i) {
    if (i > 0) s += ", ";
    s += children[i]->ToString();
  }
  return s + ")";
}

NamedExprPtr ToNamed(const ExprPtr& expr, const std::string& fallback_name) {
  if (auto named = std::dynamic_pointer_cast<const NamedExpression>(expr)) {
    return named;
  }
  return Alias::Make(expr, fallback_name);
}

}  // namespace ssql
