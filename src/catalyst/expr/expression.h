#ifndef SSQL_CATALYST_EXPR_EXPRESSION_H_
#define SSQL_CATALYST_EXPR_EXPRESSION_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "types/row.h"
#include "types/schema.h"
#include "util/status.h"

namespace ssql {

class Expression;
using ExprPtr = std::shared_ptr<const Expression>;
using ExprVector = std::vector<ExprPtr>;

/// A tree rewrite: maps a node to a replacement. Returning the *same*
/// pointer means "no change" — identity is how the rule engine detects
/// fixed points, like Catalyst's fastEquals (Section 4.2).
using ExprRewrite = std::function<ExprPtr(const ExprPtr&)>;

/// Base class of all Catalyst expression tree nodes (Section 4.1).
///
/// Nodes are immutable and shared; transformations build new trees,
/// reusing unchanged subtrees. Scala's pattern matching becomes
/// `ExprRewrite` lambdas using the `As<NodeType>` downcast helper.
class Expression : public std::enable_shared_from_this<Expression> {
 public:
  virtual ~Expression() = default;

  /// Node type name for plan display, e.g. "Add", "Literal".
  virtual std::string NodeName() const = 0;

  /// Child expressions in order.
  virtual ExprVector Children() const = 0;

  /// Rebuilds this node with `children` (same arity) — the functional
  /// update primitive behind transform.
  virtual ExprPtr WithNewChildren(ExprVector children) const = 0;

  /// Result type. Only valid once `resolved()`; the analyzer guarantees
  /// this before optimization/execution.
  virtual DataTypePtr data_type() const = 0;

  /// Whether this expression may produce null.
  virtual bool nullable() const;

  /// True when all attribute references are bound and the type is known.
  virtual bool resolved() const;

  /// True when the expression can be evaluated with no input row
  /// (constant folding candidate).
  virtual bool foldable() const;

  /// True when repeated evaluation yields the same value (UDFs may opt
  /// out, which blocks folding and some pushdowns).
  virtual bool deterministic() const;

  /// Interpreted evaluation against a row. AttributeReferences must have
  /// been rewritten to BoundReferences (see BindReferences) first.
  virtual Value Eval(const Row& row) const = 0;

  /// Display form, e.g. "(a#3 + 1)".
  virtual std::string ToString() const;

  /// Post-order transform: children first, then this node. The workhorse
  /// of optimizer rules (Catalyst's `transform`/`transformUp`).
  ExprPtr TransformUp(const ExprRewrite& rule) const;

  /// Pre-order transform: this node first, then (new) children.
  ExprPtr TransformDown(const ExprRewrite& rule) const;

  /// Applies `fn` to every node, pre-order, without rewriting.
  void Foreach(const std::function<void(const Expression&)>& fn) const;

  /// Structural/semantic equality via canonical string form.
  bool Equals(const Expression& other) const;

  ExprPtr self() const { return shared_from_this(); }
};

/// Downcast helper used by rules for pattern matching.
template <typename T>
const T* As(const ExprPtr& e) {
  return dynamic_cast<const T*>(e.get());
}
template <typename T>
const T* As(const Expression& e) {
  return dynamic_cast<const T*>(&e);
}

/// A column slot bound to an ordinal of the input row; produced from
/// AttributeReferences at physical planning time.
class BoundReference : public Expression {
 public:
  BoundReference(int ordinal, DataTypePtr type, bool nullable)
      : ordinal_(ordinal), type_(std::move(type)), nullable_(nullable) {}

  static ExprPtr Make(int ordinal, DataTypePtr type, bool nullable) {
    return std::make_shared<BoundReference>(ordinal, std::move(type), nullable);
  }

  int ordinal() const { return ordinal_; }

  std::string NodeName() const override { return "BoundReference"; }
  ExprVector Children() const override { return {}; }
  ExprPtr WithNewChildren(ExprVector) const override { return self(); }
  DataTypePtr data_type() const override { return type_; }
  bool nullable() const override { return nullable_; }
  bool foldable() const override { return false; }
  Value Eval(const Row& row) const override { return row.Get(ordinal_); }
  std::string ToString() const override {
    return "input[" + std::to_string(ordinal_) + "]";
  }

 private:
  int ordinal_;
  DataTypePtr type_;
  bool nullable_;
};

class AttributeReference;
using AttributePtr = std::shared_ptr<const AttributeReference>;
using AttributeVector = std::vector<AttributePtr>;

/// Rewrites every AttributeReference in `expr` to a BoundReference against
/// `input` (matched by expr-id). Throws AnalysisError if an attribute is
/// missing from the input.
ExprPtr BindReferences(const ExprPtr& expr, const AttributeVector& input);

/// Convenience: evaluates a bound predicate, treating null as false
/// (SQL WHERE semantics).
bool EvalPredicate(const Expression& predicate, const Row& row);

}  // namespace ssql

#endif  // SSQL_CATALYST_EXPR_EXPRESSION_H_
