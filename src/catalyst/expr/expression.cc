#include "catalyst/expr/expression.h"

#include "catalyst/expr/attribute.h"

namespace ssql {

bool Expression::nullable() const {
  for (const auto& c : Children()) {
    if (c->nullable()) return true;
  }
  return false;
}

bool Expression::resolved() const {
  for (const auto& c : Children()) {
    if (!c->resolved()) return false;
  }
  return true;
}

bool Expression::foldable() const {
  auto children = Children();
  if (children.empty()) return false;
  for (const auto& c : children) {
    if (!c->foldable()) return false;
  }
  return deterministic();
}

bool Expression::deterministic() const {
  for (const auto& c : Children()) {
    if (!c->deterministic()) return false;
  }
  return true;
}

std::string Expression::ToString() const {
  std::string s = NodeName() + "(";
  auto children = Children();
  for (size_t i = 0; i < children.size(); ++i) {
    if (i > 0) s += ", ";
    s += children[i]->ToString();
  }
  return s + ")";
}

ExprPtr Expression::TransformUp(const ExprRewrite& rule) const {
  ExprVector children = Children();
  bool changed = false;
  for (auto& c : children) {
    ExprPtr replaced = c->TransformUp(rule);
    if (replaced.get() != c.get()) {
      c = std::move(replaced);
      changed = true;
    }
  }
  ExprPtr with_children = changed ? WithNewChildren(std::move(children)) : self();
  ExprPtr result = rule(with_children);
  return result ? result : with_children;
}

ExprPtr Expression::TransformDown(const ExprRewrite& rule) const {
  ExprPtr replaced = rule(self());
  if (!replaced) replaced = self();
  ExprVector children = replaced->Children();
  bool changed = false;
  for (auto& c : children) {
    ExprPtr new_child = c->TransformDown(rule);
    if (new_child.get() != c.get()) {
      c = std::move(new_child);
      changed = true;
    }
  }
  return changed ? replaced->WithNewChildren(std::move(children)) : replaced;
}

void Expression::Foreach(const std::function<void(const Expression&)>& fn) const {
  fn(*this);
  for (const auto& c : Children()) c->Foreach(fn);
}

bool Expression::Equals(const Expression& other) const {
  return ToString() == other.ToString();
}

ExprPtr BindReferences(const ExprPtr& expr, const AttributeVector& input) {
  return expr->TransformUp([&input](const ExprPtr& e) -> ExprPtr {
    const auto* attr = As<AttributeReference>(e);
    if (attr == nullptr) return e;
    for (size_t i = 0; i < input.size(); ++i) {
      if (input[i]->expr_id() == attr->expr_id()) {
        return BoundReference::Make(static_cast<int>(i), attr->data_type(),
                                    attr->nullable());
      }
    }
    throw AnalysisError("could not bind attribute " + attr->ToString() +
                        " against child output");
  });
}

bool EvalPredicate(const Expression& predicate, const Row& row) {
  Value v = predicate.Eval(row);
  return !v.is_null() && v.bool_value();
}

}  // namespace ssql
