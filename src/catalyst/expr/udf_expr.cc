#include "catalyst/expr/udf_expr.h"

namespace ssql {

std::string ScalarUDF::ToString() const {
  std::string s = name_ + "(";
  for (size_t i = 0; i < args_.size(); ++i) {
    if (i > 0) s += ", ";
    s += args_[i]->ToString();
  }
  return s + ")";
}

}  // namespace ssql
