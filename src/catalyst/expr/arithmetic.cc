#include "catalyst/expr/arithmetic.h"

#include <cmath>
#include <cstdlib>

#include "types/schema.h"

namespace ssql {

DataTypePtr BinaryArithmetic::data_type() const { return left()->data_type(); }

Value BinaryArithmetic::Eval(const Row& row) const {
  Value l = left()->Eval(row);
  if (l.is_null()) return Value::Null();
  Value r = right()->Eval(row);
  if (r.is_null()) return Value::Null();
  switch (data_type()->id()) {
    case TypeId::kInt32: {
      if (NullOnZeroRight() && r.i32() == 0) return Value::Null();
      return Value(static_cast<int32_t>(EvalInt(l.i32(), r.i32())));
    }
    case TypeId::kInt64: {
      if (NullOnZeroRight() && r.i64() == 0) return Value::Null();
      return Value(EvalInt(l.i64(), r.i64()));
    }
    case TypeId::kDouble: {
      if (NullOnZeroRight() && r.f64() == 0.0) return Value::Null();
      return Value(EvalDouble(l.f64(), r.f64()));
    }
    case TypeId::kDecimal: {
      if (NullOnZeroRight() && r.decimal().unscaled() == 0) return Value::Null();
      return Value(EvalDecimal(l.decimal(), r.decimal()));
    }
    default:
      throw ExecutionError("arithmetic on non-numeric type " +
                           data_type()->ToString());
  }
}

int64_t Add::EvalInt(int64_t a, int64_t b) const { return a + b; }
double Add::EvalDouble(double a, double b) const { return a + b; }
Decimal Add::EvalDecimal(const Decimal& a, const Decimal& b) const {
  return a.Add(b);
}

int64_t Subtract::EvalInt(int64_t a, int64_t b) const { return a - b; }
double Subtract::EvalDouble(double a, double b) const { return a - b; }
Decimal Subtract::EvalDecimal(const Decimal& a, const Decimal& b) const {
  return a.Subtract(b);
}

int64_t Multiply::EvalInt(int64_t a, int64_t b) const { return a * b; }
double Multiply::EvalDouble(double a, double b) const { return a * b; }
Decimal Multiply::EvalDecimal(const Decimal& a, const Decimal& b) const {
  return a.Multiply(b);
}

int64_t Divide::EvalInt(int64_t a, int64_t b) const { return a / b; }
double Divide::EvalDouble(double a, double b) const { return a / b; }
Decimal Divide::EvalDecimal(const Decimal& a, const Decimal& b) const {
  return a.Divide(b);
}

int64_t Remainder::EvalInt(int64_t a, int64_t b) const { return a % b; }
double Remainder::EvalDouble(double a, double b) const {
  return std::fmod(a, b);
}
Decimal Remainder::EvalDecimal(const Decimal& a, const Decimal& b) const {
  double m = std::fmod(a.ToDouble(), b.ToDouble());
  return Decimal::FromDouble(m, a.precision(), a.scale());
}

Value UnaryMinus::Eval(const Row& row) const {
  Value v = child_->Eval(row);
  if (v.is_null()) return v;
  switch (v.type_id()) {
    case TypeId::kInt32:
      return Value(-v.i32());
    case TypeId::kInt64:
      return Value(-v.i64());
    case TypeId::kDouble:
      return Value(-v.f64());
    case TypeId::kDecimal:
      return Value(Decimal(-v.decimal().unscaled(), v.decimal().precision(),
                           v.decimal().scale()));
    default:
      throw ExecutionError("negate on non-numeric value");
  }
}

Value Abs::Eval(const Row& row) const {
  Value v = child_->Eval(row);
  if (v.is_null()) return v;
  switch (v.type_id()) {
    case TypeId::kInt32:
      return Value(v.i32() < 0 ? -v.i32() : v.i32());
    case TypeId::kInt64:
      return Value(v.i64() < 0 ? -v.i64() : v.i64());
    case TypeId::kDouble:
      return Value(std::fabs(v.f64()));
    case TypeId::kDecimal: {
      const Decimal& d = v.decimal();
      return Value(Decimal(std::llabs(d.unscaled()), d.precision(), d.scale()));
    }
    default:
      throw ExecutionError("abs on non-numeric value");
  }
}

Value UnscaledValue::Eval(const Row& row) const {
  Value v = child_->Eval(row);
  if (v.is_null()) return v;
  return Value(v.decimal().unscaled());
}

Value MakeDecimal::Eval(const Row& row) const {
  Value v = child_->Eval(row);
  if (v.is_null()) return v;
  return Value(Decimal(v.i64(), precision_, scale_));
}

}  // namespace ssql
