#ifndef SSQL_CATALYST_EXPR_COMPLEX_TYPES_H_
#define SSQL_CATALYST_EXPR_COMPLEX_TYPES_H_

#include <memory>
#include <string>

#include "catalyst/expr/arithmetic.h"
#include "catalyst/expr/expression.h"
#include "types/schema.h"

namespace ssql {

/// Accesses a named field of a struct column (e.g. `loc.lat` over the JSON
/// schema of Figure 6). The analyzer resolves the name to an ordinal.
class GetStructField : public Expression {
 public:
  GetStructField(ExprPtr child, int ordinal, std::string field_name)
      : child_(std::move(child)),
        ordinal_(ordinal),
        field_name_(std::move(field_name)) {}

  static ExprPtr Make(ExprPtr child, int ordinal, std::string field_name) {
    return std::make_shared<GetStructField>(std::move(child), ordinal,
                                            std::move(field_name));
  }

  int ordinal() const { return ordinal_; }
  const std::string& field_name() const { return field_name_; }

  std::string NodeName() const override { return "GetStructField"; }
  ExprVector Children() const override { return {child_}; }
  ExprPtr WithNewChildren(ExprVector c) const override {
    return Make(c[0], ordinal_, field_name_);
  }
  DataTypePtr data_type() const override {
    return AsStruct(*child_->data_type()).field(ordinal_).type;
  }
  bool nullable() const override {
    return child_->nullable() ||
           AsStruct(*child_->data_type()).field(ordinal_).nullable;
  }
  Value Eval(const Row& row) const override;
  std::string ToString() const override {
    return child_->ToString() + "." + field_name_;
  }

 private:
  ExprPtr child_;
  int ordinal_;
  std::string field_name_;
};

/// array[index], 0-based; null when out of range.
class GetArrayItem : public BinaryExpression {
 public:
  using BinaryExpression::BinaryExpression;
  static ExprPtr Make(ExprPtr arr, ExprPtr index) {
    return std::make_shared<GetArrayItem>(std::move(arr), std::move(index));
  }
  std::string NodeName() const override { return "GetArrayItem"; }
  std::string Symbol() const override { return "[]"; }
  ExprPtr WithNewChildren(ExprVector c) const override { return Make(c[0], c[1]); }
  DataTypePtr data_type() const override {
    return AsArray(*left()->data_type()).element_type();
  }
  bool nullable() const override { return true; }
  Value Eval(const Row& row) const override;
};

/// map[key]; null when absent.
class GetMapValue : public BinaryExpression {
 public:
  using BinaryExpression::BinaryExpression;
  static ExprPtr Make(ExprPtr map, ExprPtr key) {
    return std::make_shared<GetMapValue>(std::move(map), std::move(key));
  }
  std::string NodeName() const override { return "GetMapValue"; }
  std::string Symbol() const override { return "[]"; }
  ExprPtr WithNewChildren(ExprVector c) const override { return Make(c[0], c[1]); }
  DataTypePtr data_type() const override {
    return AsMap(*left()->data_type()).value_type();
  }
  bool nullable() const override { return true; }
  Value Eval(const Row& row) const override;
};

/// SIZE(array) or SIZE(map).
class SizeOf : public Expression {
 public:
  explicit SizeOf(ExprPtr child) : child_(std::move(child)) {}
  static ExprPtr Make(ExprPtr c) { return std::make_shared<SizeOf>(std::move(c)); }
  std::string NodeName() const override { return "SizeOf"; }
  ExprVector Children() const override { return {child_}; }
  ExprPtr WithNewChildren(ExprVector c) const override { return Make(c[0]); }
  DataTypePtr data_type() const override { return DataType::Int32(); }
  Value Eval(const Row& row) const override;

 private:
  ExprPtr child_;
};

/// ARRAY_CONTAINS(array, value).
class ArrayContains : public BinaryExpression {
 public:
  using BinaryExpression::BinaryExpression;
  static ExprPtr Make(ExprPtr arr, ExprPtr value) {
    return std::make_shared<ArrayContains>(std::move(arr), std::move(value));
  }
  std::string NodeName() const override { return "ArrayContains"; }
  std::string Symbol() const override { return "ARRAY_CONTAINS"; }
  ExprPtr WithNewChildren(ExprVector c) const override { return Make(c[0], c[1]); }
  DataTypePtr data_type() const override { return DataType::Boolean(); }
  Value Eval(const Row& row) const override;
};

/// STRUCT(e1, e2, ...) constructor; the UDT serialization path uses this to
/// assemble the built-in representation.
class CreateStruct : public Expression {
 public:
  CreateStruct(ExprVector children, SchemaPtr type)
      : children_(std::move(children)), type_(std::move(type)) {}
  static ExprPtr Make(ExprVector children, SchemaPtr type) {
    return std::make_shared<CreateStruct>(std::move(children), std::move(type));
  }
  std::string NodeName() const override { return "CreateStruct"; }
  ExprVector Children() const override { return children_; }
  ExprPtr WithNewChildren(ExprVector c) const override {
    return Make(std::move(c), type_);
  }
  DataTypePtr data_type() const override { return type_; }
  bool nullable() const override { return false; }
  Value Eval(const Row& row) const override;

 private:
  ExprVector children_;
  SchemaPtr type_;
};

}  // namespace ssql

#endif  // SSQL_CATALYST_EXPR_COMPLEX_TYPES_H_
