#ifndef SSQL_SQL_PARSER_H_
#define SSQL_SQL_PARSER_H_

#include <map>
#include <string>
#include <vector>

#include "catalyst/plan/logical_plan.h"

namespace ssql {

/// The result of parsing one SQL statement: a query producing an
/// unresolved logical plan, a CREATE TEMPORARY TABLE ... USING command
/// (the data source registration syntax of Section 4.4.1), an
/// EXPLAIN [EXTENDED|ANALYZE] wrapper around a query, or an
/// ANALYZE TABLE t [COMPUTE STATISTICS [FOR COLUMNS ...]] command.
struct ParsedStatement {
  enum class Kind {
    kQuery,
    kCreateTempTable,
    kCreateTempView,
    kExplain,
    kAnalyzeTable,
  };
  Kind kind = Kind::kQuery;

  // kQuery/kExplain: the query plan. kCreateTempView: the view's plan.
  PlanPtr plan;

  // kExplain only
  ExplainMode explain_mode = ExplainMode::kSimple;

  // kCreateTempTable / kCreateTempView / kAnalyzeTable
  std::string table_name;
  // kCreateTempTable only
  std::string provider;
  std::map<std::string, std::string> options;

  // kAnalyzeTable only: explicit FOR COLUMNS list, or FOR ALL COLUMNS.
  // Both empty/false = table-level statistics only.
  std::vector<std::string> analyze_columns;
  bool analyze_all_columns = false;
};

/// Recursive-descent SQL parser producing unresolved logical plans.
/// Supported: SELECT [DISTINCT] list FROM refs [JOINs] [WHERE] [GROUP BY]
/// [HAVING] [ORDER BY] [LIMIT], UNION [ALL], subqueries in FROM, CASE,
/// CAST, IN, BETWEEN, LIKE, IS [NOT] NULL, function calls (incl.
/// COUNT(DISTINCT x)), arithmetic/comparison/boolean operators, date
/// literals, and CREATE TEMPORARY TABLE ... USING ... OPTIONS.
/// Throws ParseError.
ParsedStatement ParseSql(const std::string& sql);

/// Parses just an expression (used by the DataFrame DSL's ExprSql helper
/// and tests).
ExprPtr ParseSqlExpression(const std::string& sql);

}  // namespace ssql

#endif  // SSQL_SQL_PARSER_H_
