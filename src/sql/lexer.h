#ifndef SSQL_SQL_LEXER_H_
#define SSQL_SQL_LEXER_H_

#include <string>
#include <vector>

namespace ssql {

/// SQL token kinds.
enum class TokenKind {
  kIdentifier,   // foo, possibly a keyword (matched case-insensitively)
  kNumber,       // 123, 1.5, .5
  kString,       // 'text' with '' escaping
  kSymbol,       // punctuation / operators: ( ) , . * + - / % = != <> < <= > >= ==
  kEnd,
};

struct Token {
  TokenKind kind;
  std::string text;  // identifier/keyword text (original case), symbol text,
                     // decoded string body, or number literal
  size_t offset = 0;

  bool IsKeyword(const char* word) const;
  bool IsSymbol(const char* symbol) const;
};

/// Tokenizes SQL; throws ParseError on bad input (unterminated strings,
/// stray characters). Comments: `-- ...` to end of line.
std::vector<Token> Tokenize(const std::string& sql);

}  // namespace ssql

#endif  // SSQL_SQL_LEXER_H_
