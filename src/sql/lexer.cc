#include "sql/lexer.h"

#include <cctype>

#include "util/status.h"
#include "util/string_util.h"

namespace ssql {

bool Token::IsKeyword(const char* word) const {
  return kind == TokenKind::kIdentifier && EqualsIgnoreCase(text, word);
}

bool Token::IsSymbol(const char* symbol) const {
  return kind == TokenKind::kSymbol && text == symbol;
}

std::vector<Token> Tokenize(const std::string& sql) {
  std::vector<Token> tokens;
  size_t i = 0;
  size_t n = sql.size();
  while (i < n) {
    char c = sql[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    // Line comment.
    if (c == '-' && i + 1 < n && sql[i + 1] == '-') {
      while (i < n && sql[i] != '\n') ++i;
      continue;
    }
    size_t start = i;
    // Identifier / keyword.
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      while (i < n && (std::isalnum(static_cast<unsigned char>(sql[i])) ||
                       sql[i] == '_')) {
        ++i;
      }
      tokens.push_back({TokenKind::kIdentifier, sql.substr(start, i - start),
                        start});
      continue;
    }
    // Quoted identifier `like this`.
    if (c == '`') {
      ++i;
      std::string body;
      while (i < n && sql[i] != '`') body += sql[i++];
      if (i >= n) throw ParseError("unterminated quoted identifier");
      ++i;
      tokens.push_back({TokenKind::kIdentifier, body, start});
      continue;
    }
    // Number.
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '.' && i + 1 < n &&
         std::isdigit(static_cast<unsigned char>(sql[i + 1])))) {
      bool saw_dot = false;
      bool saw_exp = false;
      while (i < n) {
        char d = sql[i];
        if (std::isdigit(static_cast<unsigned char>(d))) {
          ++i;
        } else if (d == '.' && !saw_dot && !saw_exp) {
          saw_dot = true;
          ++i;
        } else if ((d == 'e' || d == 'E') && !saw_exp) {
          saw_exp = true;
          ++i;
          if (i < n && (sql[i] == '+' || sql[i] == '-')) ++i;
        } else {
          break;
        }
      }
      tokens.push_back({TokenKind::kNumber, sql.substr(start, i - start), start});
      continue;
    }
    // String literal with '' escape.
    if (c == '\'' || c == '"') {
      char quote = c;
      ++i;
      std::string body;
      while (i < n) {
        if (sql[i] == quote) {
          if (i + 1 < n && sql[i + 1] == quote) {
            body += quote;
            i += 2;
            continue;
          }
          break;
        }
        body += sql[i++];
      }
      if (i >= n) throw ParseError("unterminated string literal");
      ++i;  // closing quote
      tokens.push_back({TokenKind::kString, std::move(body), start});
      continue;
    }
    // Multi-char operators.
    auto two = [&](const char* op) {
      return i + 1 < n && sql[i] == op[0] && sql[i + 1] == op[1];
    };
    if (two("!=") || two("<>") || two("<=") || two(">=") || two("==")) {
      std::string op = sql.substr(i, 2);
      if (op == "<>") op = "!=";
      if (op == "==") op = "=";
      tokens.push_back({TokenKind::kSymbol, op, start});
      i += 2;
      continue;
    }
    // Single-char symbols.
    static const std::string kSingles = "(),.*+-/%=<>";
    if (kSingles.find(c) != std::string::npos) {
      tokens.push_back({TokenKind::kSymbol, std::string(1, c), start});
      ++i;
      continue;
    }
    throw ParseError("unexpected character '" + std::string(1, c) +
                     "' at offset " + std::to_string(i));
  }
  tokens.push_back({TokenKind::kEnd, "", n});
  return tokens;
}

}  // namespace ssql
