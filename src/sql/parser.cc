#include "sql/parser.h"

#include "catalyst/expr/aggregates.h"
#include "catalyst/expr/arithmetic.h"
#include "catalyst/expr/case_when.h"
#include "catalyst/expr/cast.h"
#include "catalyst/expr/literal.h"
#include "catalyst/expr/predicates.h"
#include "catalyst/expr/string_ops.h"
#include "sql/lexer.h"
#include "util/string_util.h"

namespace ssql {

namespace {


/// Human-friendly derived column name for unaliased projections.
std::string PrettyName(const ExprPtr& e) {
  if (const auto* ua = As<UnresolvedAttribute>(e)) return ua->parts().back();
  if (const auto* uf = As<UnresolvedFunction>(e)) {
    std::string s = ToLower(uf->name()) + "(";
    auto args = uf->Children();
    if (args.empty()) s += "*";
    for (size_t i = 0; i < args.size(); ++i) {
      if (i > 0) s += ",";
      s += PrettyName(args[i]);
    }
    return s + ")";
  }
  return e->ToString();
}

class Parser {
 public:
  explicit Parser(const std::string& sql) : tokens_(Tokenize(sql)) {}

  ParsedStatement ParseStatement() {
    ParsedStatement stmt;
    if (Peek().IsKeyword("CREATE")) {
      ParseCreateTempTable(&stmt);
      ExpectEnd();
      return stmt;
    }
    if (AcceptKeyword("ANALYZE")) {
      ParseAnalyzeTable(&stmt);
      ExpectEnd();
      return stmt;
    }
    if (AcceptKeyword("EXPLAIN")) {
      stmt.kind = ParsedStatement::Kind::kExplain;
      if (AcceptKeyword("ANALYZE")) {
        stmt.explain_mode = ExplainMode::kAnalyze;
      } else if (AcceptKeyword("EXTENDED")) {
        stmt.explain_mode = ExplainMode::kExtended;
      } else {
        stmt.explain_mode = ExplainMode::kSimple;
      }
      stmt.plan = ParseQuery();
      ExpectEnd();
      return stmt;
    }
    stmt.kind = ParsedStatement::Kind::kQuery;
    stmt.plan = ParseQuery();
    ExpectEnd();
    return stmt;
  }

  ExprPtr ParseSingleExpression() {
    ExprPtr e = ParseExpr();
    ExpectEnd();
    return e;
  }

 private:
  // ---- token helpers ------------------------------------------------------

  const Token& Peek(size_t ahead = 0) const {
    size_t i = pos_ + ahead;
    return i < tokens_.size() ? tokens_[i] : tokens_.back();
  }
  const Token& Advance() { return tokens_[pos_++]; }
  bool AcceptKeyword(const char* word) {
    if (Peek().IsKeyword(word)) {
      ++pos_;
      return true;
    }
    return false;
  }
  bool AcceptSymbol(const char* symbol) {
    if (Peek().IsSymbol(symbol)) {
      ++pos_;
      return true;
    }
    return false;
  }
  void ExpectKeyword(const char* word) {
    if (!AcceptKeyword(word)) {
      throw ParseError(std::string("expected ") + word + " near '" +
                       Peek().text + "'");
    }
  }
  void ExpectSymbol(const char* symbol) {
    if (!AcceptSymbol(symbol)) {
      throw ParseError(std::string("expected '") + symbol + "' near '" +
                       Peek().text + "'");
    }
  }
  void ExpectEnd() {
    if (Peek().kind != TokenKind::kEnd) {
      throw ParseError("unexpected trailing input near '" + Peek().text + "'");
    }
  }
  std::string ExpectIdentifier() {
    if (Peek().kind != TokenKind::kIdentifier) {
      throw ParseError("expected identifier near '" + Peek().text + "'");
    }
    return Advance().text;
  }

  static bool IsReserved(const Token& t) {
    static const char* kReserved[] = {
        "SELECT", "FROM",  "WHERE", "GROUP", "HAVING", "ORDER",  "LIMIT",
        "UNION",  "JOIN",  "ON",    "LEFT",  "RIGHT",  "FULL",   "INNER",
        "OUTER",  "CROSS", "SEMI",  "AND",   "OR",     "NOT",    "AS",
        "BY",     "ASC",   "DESC",  "CASE",  "WHEN",   "THEN",   "ELSE",
        "END",    "IN",    "IS",    "NULL",  "LIKE",   "BETWEEN", "DISTINCT",
        "CAST",   "USING", "CREATE", "TEMPORARY", "TABLE", "OPTIONS", "ALL"};
    for (const char* w : kReserved) {
      if (t.IsKeyword(w)) return true;
    }
    return false;
  }

  // ---- statements ---------------------------------------------------------

  void ParseCreateTempTable(ParsedStatement* stmt) {
    stmt->kind = ParsedStatement::Kind::kCreateTempTable;
    ExpectKeyword("CREATE");
    ExpectKeyword("TEMPORARY");
    if (!AcceptKeyword("TABLE")) ExpectKeyword("VIEW");
    stmt->table_name = ExpectIdentifier();
    // CREATE TEMPORARY TABLE/VIEW name AS SELECT ... registers the query
    // as an unmaterialized view (the Section 3.3 temp-table semantics).
    if (AcceptKeyword("AS")) {
      stmt->kind = ParsedStatement::Kind::kCreateTempView;
      stmt->plan = ParseQuery();
      return;
    }
    ExpectKeyword("USING");
    // Provider names may be dotted (com.databricks.spark.avro style); the
    // last component selects the registered source.
    std::string provider = ExpectIdentifier();
    while (AcceptSymbol(".")) provider = ExpectIdentifier();
    stmt->provider = provider;
    if (AcceptKeyword("OPTIONS")) {
      ExpectSymbol("(");
      while (true) {
        std::string key = ExpectIdentifier();
        if (Peek().kind != TokenKind::kString) {
          throw ParseError("expected string value for option '" + key + "'");
        }
        stmt->options[key] = Advance().text;
        if (AcceptSymbol(",")) continue;
        break;
      }
      ExpectSymbol(")");
    }
  }

  // ANALYZE TABLE t[.part]* [COMPUTE STATISTICS [FOR COLUMNS c, ... |
  //                                              FOR ALL COLUMNS]]
  // Bare ANALYZE TABLE (or COMPUTE STATISTICS without FOR) records
  // table-level stats only, matching Spark's statement shape.
  void ParseAnalyzeTable(ParsedStatement* stmt) {
    stmt->kind = ParsedStatement::Kind::kAnalyzeTable;
    ExpectKeyword("TABLE");
    std::string name = ExpectIdentifier();
    while (AcceptSymbol(".")) name += "." + ExpectIdentifier();
    stmt->table_name = name;
    if (!AcceptKeyword("COMPUTE")) return;
    ExpectKeyword("STATISTICS");
    if (!AcceptKeyword("FOR")) return;
    if (AcceptKeyword("ALL")) {
      ExpectKeyword("COLUMNS");
      stmt->analyze_all_columns = true;
      return;
    }
    ExpectKeyword("COLUMNS");
    while (true) {
      stmt->analyze_columns.push_back(ExpectIdentifier());
      if (!AcceptSymbol(",")) break;
    }
  }

  // query := select_core (UNION [ALL] select_core)* [ORDER BY ...] [LIMIT n]
  PlanPtr ParseQuery() {
    PlanPtr plan = ParseSelectCore();
    while (Peek().IsKeyword("UNION")) {
      Advance();
      bool all = AcceptKeyword("ALL");
      PlanPtr rhs = ParseSelectCore();
      plan = Union::Make({plan, rhs});
      if (!all) plan = Distinct::Make(plan);
    }
    if (AcceptKeyword("ORDER")) {
      ExpectKeyword("BY");
      std::vector<std::shared_ptr<const SortOrder>> orders;
      while (true) {
        ExprPtr e = ParseExpr();
        bool asc = true;
        if (AcceptKeyword("DESC")) {
          asc = false;
        } else {
          AcceptKeyword("ASC");
        }
        orders.push_back(SortOrder::Make(std::move(e), asc));
        if (!AcceptSymbol(",")) break;
      }
      plan = Sort::Make(std::move(orders), plan);
    }
    if (AcceptKeyword("LIMIT")) {
      if (Peek().kind != TokenKind::kNumber) {
        throw ParseError("expected number after LIMIT");
      }
      int64_t n = 0;
      ParseInt64(Advance().text, &n);
      plan = Limit::Make(n, plan);
    }
    return plan;
  }

  PlanPtr ParseSelectCore() {
    if (AcceptSymbol("(")) {
      PlanPtr inner = ParseQuery();
      ExpectSymbol(")");
      return inner;
    }
    ExpectKeyword("SELECT");
    bool distinct = AcceptKeyword("DISTINCT");

    std::vector<NamedExprPtr> projections;
    while (true) {
      projections.push_back(ParseProjection());
      if (!AcceptSymbol(",")) break;
    }

    PlanPtr plan;
    if (AcceptKeyword("FROM")) {
      plan = ParseFromClause();
    } else {
      // SELECT 1+1 — a single empty row.
      plan = LocalRelation::Make({}, {Row{}});
    }

    if (AcceptKeyword("WHERE")) {
      plan = Filter::Make(ParseExpr(), plan);
    }

    bool has_group_by = false;
    ExprVector groupings;
    if (AcceptKeyword("GROUP")) {
      ExpectKeyword("BY");
      has_group_by = true;
      while (true) {
        groupings.push_back(ParseExpr());
        if (!AcceptSymbol(",")) break;
      }
    }

    if (has_group_by) {
      plan = Aggregate::Make(std::move(groupings), std::move(projections), plan);
    } else {
      plan = Project::Make(std::move(projections), plan);
    }

    if (AcceptKeyword("HAVING")) {
      plan = Filter::Make(ParseExpr(), plan);
    }
    if (distinct) plan = Distinct::Make(plan);
    return plan;
  }

  NamedExprPtr ParseProjection() {
    // Star forms.
    if (Peek().IsSymbol("*")) {
      Advance();
      return std::static_pointer_cast<const NamedExpression>(
          UnresolvedStar::Make());
    }
    if (Peek().kind == TokenKind::kIdentifier && Peek(1).IsSymbol(".") &&
        Peek(2).IsSymbol("*")) {
      std::string qualifier = Advance().text;
      Advance();
      Advance();
      return std::static_pointer_cast<const NamedExpression>(
          UnresolvedStar::Make(qualifier));
    }
    ExprPtr e = ParseExpr();
    std::string alias;
    if (AcceptKeyword("AS")) {
      alias = ExpectIdentifier();
    } else if (Peek().kind == TokenKind::kIdentifier && !IsReserved(Peek())) {
      alias = Advance().text;
    }
    if (!alias.empty()) return Alias::Make(std::move(e), std::move(alias));
    if (auto named = std::dynamic_pointer_cast<const NamedExpression>(e)) {
      return named;
    }
    return Alias::Make(e, PrettyName(e));
  }

  // from := table_ref (join_clause)* [, table_ref ...] (implicit cross join)
  PlanPtr ParseFromClause() {
    PlanPtr plan = ParseTableRef();
    while (true) {
      if (AcceptSymbol(",")) {
        PlanPtr rhs = ParseTableRef();
        plan = Join::Make(plan, rhs, JoinType::kCross, nullptr);
        continue;
      }
      JoinType type;
      if (Peek().IsKeyword("JOIN")) {
        Advance();
        type = JoinType::kInner;
      } else if (Peek().IsKeyword("INNER") && Peek(1).IsKeyword("JOIN")) {
        Advance();
        Advance();
        type = JoinType::kInner;
      } else if (Peek().IsKeyword("CROSS") && Peek(1).IsKeyword("JOIN")) {
        Advance();
        Advance();
        type = JoinType::kCross;
      } else if (Peek().IsKeyword("LEFT") && Peek(1).IsKeyword("SEMI")) {
        Advance();
        Advance();
        ExpectKeyword("JOIN");
        type = JoinType::kLeftSemi;
      } else if (Peek().IsKeyword("LEFT")) {
        Advance();
        AcceptKeyword("OUTER");
        ExpectKeyword("JOIN");
        type = JoinType::kLeftOuter;
      } else if (Peek().IsKeyword("RIGHT")) {
        Advance();
        AcceptKeyword("OUTER");
        ExpectKeyword("JOIN");
        type = JoinType::kRightOuter;
      } else if (Peek().IsKeyword("FULL")) {
        Advance();
        AcceptKeyword("OUTER");
        ExpectKeyword("JOIN");
        type = JoinType::kFullOuter;
      } else {
        break;
      }
      PlanPtr rhs = ParseTableRef();
      ExprPtr condition;
      if (AcceptKeyword("ON")) condition = ParseExpr();
      plan = Join::Make(plan, rhs, type, condition);
    }
    return plan;
  }

  PlanPtr ParseTableRef() {
    PlanPtr plan;
    std::string default_alias;
    if (AcceptSymbol("(")) {
      plan = ParseQuery();
      ExpectSymbol(")");
    } else {
      // Dotted names ("system.queries") address namespaced tables; the
      // default qualifier is the last segment, so `queries.status` works
      // without an explicit alias (matching Spark's db.table behaviour).
      std::string name = ExpectIdentifier();
      default_alias = name;
      while (Peek().IsSymbol(".") && Peek(1).kind == TokenKind::kIdentifier) {
        Advance();
        default_alias = ExpectIdentifier();
        name += "." + default_alias;
      }
      plan = UnresolvedRelation::Make(name);
    }
    std::string alias = default_alias;
    if (AcceptKeyword("AS")) {
      alias = ExpectIdentifier();
    } else if (Peek().kind == TokenKind::kIdentifier && !IsReserved(Peek())) {
      alias = Advance().text;
    }
    if (!alias.empty() && !EqualsIgnoreCase(alias, default_alias)) {
      return SubqueryAlias::Make(alias, plan);
    }
    return plan;
  }

  // ---- expressions --------------------------------------------------------

  ExprPtr ParseExpr() { return ParseOr(); }

  ExprPtr ParseOr() {
    ExprPtr e = ParseAnd();
    while (AcceptKeyword("OR")) e = Or::Make(e, ParseAnd());
    return e;
  }

  ExprPtr ParseAnd() {
    ExprPtr e = ParseNot();
    while (AcceptKeyword("AND")) e = And::Make(e, ParseNot());
    return e;
  }

  ExprPtr ParseNot() {
    if (AcceptKeyword("NOT")) return Not::Make(ParseNot());
    return ParseComparison();
  }

  ExprPtr ParseComparison() {
    ExprPtr e = ParseAdditive();
    while (true) {
      if (AcceptSymbol("=")) {
        e = EqualTo::Make(e, ParseAdditive());
      } else if (AcceptSymbol("!=")) {
        e = NotEqualTo::Make(e, ParseAdditive());
      } else if (AcceptSymbol("<=")) {
        e = LessThanOrEqual::Make(e, ParseAdditive());
      } else if (AcceptSymbol(">=")) {
        e = GreaterThanOrEqual::Make(e, ParseAdditive());
      } else if (AcceptSymbol("<")) {
        e = LessThan::Make(e, ParseAdditive());
      } else if (AcceptSymbol(">")) {
        e = GreaterThan::Make(e, ParseAdditive());
      } else if (Peek().IsKeyword("IS")) {
        Advance();
        bool negated = AcceptKeyword("NOT");
        ExpectKeyword("NULL");
        e = negated ? IsNotNull::Make(e) : IsNull::Make(e);
      } else if (Peek().IsKeyword("NOT") &&
                 (Peek(1).IsKeyword("LIKE") || Peek(1).IsKeyword("IN") ||
                  Peek(1).IsKeyword("BETWEEN"))) {
        Advance();
        e = Not::Make(ParsePostfixPredicate(e));
      } else if (Peek().IsKeyword("LIKE") || Peek().IsKeyword("IN") ||
                 Peek().IsKeyword("BETWEEN")) {
        e = ParsePostfixPredicate(e);
      } else {
        return e;
      }
    }
  }

  ExprPtr ParsePostfixPredicate(ExprPtr e) {
    if (AcceptKeyword("LIKE")) {
      return Like::Make(std::move(e), ParseAdditive());
    }
    if (AcceptKeyword("IN")) {
      ExpectSymbol("(");
      if (Peek().IsKeyword("SELECT")) {
        PlanPtr subquery = ParseQuery();
        ExpectSymbol(")");
        return InSubquery::Make(std::move(e), std::move(subquery));
      }
      ExprVector list;
      while (true) {
        list.push_back(ParseExpr());
        if (!AcceptSymbol(",")) break;
      }
      ExpectSymbol(")");
      return In::Make(std::move(e), std::move(list));
    }
    ExpectKeyword("BETWEEN");
    ExprPtr lo = ParseAdditive();
    ExpectKeyword("AND");
    ExprPtr hi = ParseAdditive();
    return And::Make(GreaterThanOrEqual::Make(e, std::move(lo)),
                     LessThanOrEqual::Make(e, std::move(hi)));
  }

  ExprPtr ParseAdditive() {
    ExprPtr e = ParseMultiplicative();
    while (true) {
      if (AcceptSymbol("+")) {
        e = Add::Make(e, ParseMultiplicative());
      } else if (AcceptSymbol("-")) {
        e = Subtract::Make(e, ParseMultiplicative());
      } else {
        return e;
      }
    }
  }

  ExprPtr ParseMultiplicative() {
    ExprPtr e = ParseUnary();
    while (true) {
      if (AcceptSymbol("*")) {
        e = Multiply::Make(e, ParseUnary());
      } else if (AcceptSymbol("/")) {
        e = Divide::Make(e, ParseUnary());
      } else if (AcceptSymbol("%")) {
        e = Remainder::Make(e, ParseUnary());
      } else {
        return e;
      }
    }
  }

  ExprPtr ParseUnary() {
    if (AcceptSymbol("-")) return UnaryMinus::Make(ParseUnary());
    if (AcceptSymbol("+")) return ParseUnary();
    return ParsePrimary();
  }

  DataTypePtr ParseTypeName() {
    std::string name = ToLower(ExpectIdentifier());
    if (name == "boolean" || name == "bool") return DataType::Boolean();
    if (name == "int" || name == "integer") return DataType::Int32();
    if (name == "bigint" || name == "long") return DataType::Int64();
    if (name == "double" || name == "float") return DataType::Double();
    if (name == "string" || name == "varchar") return DataType::String();
    if (name == "date") return DataType::Date();
    if (name == "timestamp") return DataType::Timestamp();
    if (name == "decimal") {
      int p = 10, s = 0;
      if (AcceptSymbol("(")) {
        if (Peek().kind != TokenKind::kNumber) {
          throw ParseError("expected decimal precision");
        }
        int64_t v;
        ParseInt64(Advance().text, &v);
        p = static_cast<int>(v);
        if (AcceptSymbol(",")) {
          if (Peek().kind != TokenKind::kNumber) {
            throw ParseError("expected decimal scale");
          }
          ParseInt64(Advance().text, &v);
          s = static_cast<int>(v);
        }
        ExpectSymbol(")");
      }
      return DecimalType::Make(p, s);
    }
    throw ParseError("unknown type name '" + name + "'");
  }

  ExprPtr ParsePrimary() {
    const Token& t = Peek();

    if (t.kind == TokenKind::kNumber) {
      Advance();
      int64_t i;
      if (ParseInt64(t.text, &i)) {
        if (i >= INT32_MIN && i <= INT32_MAX) {
          return Literal::Make(Value(static_cast<int32_t>(i)), DataType::Int32());
        }
        return Literal::Make(Value(i), DataType::Int64());
      }
      double d = 0;
      ParseDouble(t.text, &d);
      return Literal::Make(Value(d), DataType::Double());
    }
    if (t.kind == TokenKind::kString) {
      Advance();
      return Literal::Make(Value(t.text), DataType::String());
    }
    if (t.IsKeyword("NULL")) {
      Advance();
      return Literal::Null(DataType::Null());
    }
    if (t.IsKeyword("TRUE")) {
      Advance();
      return Literal::True();
    }
    if (t.IsKeyword("FALSE")) {
      Advance();
      return Literal::False();
    }
    if (t.IsKeyword("DATE") && Peek(1).kind == TokenKind::kString) {
      Advance();
      std::string text = Advance().text;
      DateValue d;
      if (!ParseDate(text, &d)) throw ParseError("bad DATE literal '" + text + "'");
      return Literal::Make(Value(d), DataType::Date());
    }
    if (t.IsKeyword("CAST")) {
      Advance();
      ExpectSymbol("(");
      ExprPtr e = ParseExpr();
      ExpectKeyword("AS");
      DataTypePtr type = ParseTypeName();
      ExpectSymbol(")");
      return Cast::Make(std::move(e), std::move(type));
    }
    if (t.IsKeyword("CASE")) {
      Advance();
      ExprVector children;
      // Optional operand form: CASE x WHEN v THEN r ...
      ExprPtr operand;
      if (!Peek().IsKeyword("WHEN")) operand = ParseExpr();
      while (AcceptKeyword("WHEN")) {
        ExprPtr cond = ParseExpr();
        if (operand) cond = EqualTo::Make(operand, cond);
        ExpectKeyword("THEN");
        children.push_back(std::move(cond));
        children.push_back(ParseExpr());
      }
      bool has_else = false;
      if (AcceptKeyword("ELSE")) {
        has_else = true;
        children.push_back(ParseExpr());
      }
      ExpectKeyword("END");
      if (children.size() < 2) throw ParseError("CASE requires a WHEN branch");
      return CaseWhen::Make(std::move(children), has_else);
    }
    if (AcceptSymbol("(")) {
      ExprPtr e = ParseExpr();
      ExpectSymbol(")");
      return e;
    }

    if (t.kind == TokenKind::kIdentifier) {
      // Function call?
      if (Peek(1).IsSymbol("(")) {
        std::string name = Advance().text;
        Advance();  // '('
        bool distinct = AcceptKeyword("DISTINCT");
        ExprVector args;
        if (!Peek().IsSymbol(")")) {
          if (Peek().IsSymbol("*")) {
            Advance();  // COUNT(*)
          } else {
            while (true) {
              args.push_back(ParseExpr());
              if (!AcceptSymbol(",")) break;
            }
          }
        }
        ExpectSymbol(")");
        return UnresolvedFunction::Make(std::move(name), std::move(args),
                                        distinct);
      }
      // Dotted column reference.
      std::vector<std::string> parts;
      parts.push_back(Advance().text);
      while (Peek().IsSymbol(".") && Peek(1).kind == TokenKind::kIdentifier) {
        Advance();
        parts.push_back(Advance().text);
      }
      return UnresolvedAttribute::Make(std::move(parts));
    }

    throw ParseError("unexpected token '" + t.text + "' in expression");
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

}  // namespace

ParsedStatement ParseSql(const std::string& sql) {
  Parser parser(sql);
  return parser.ParseStatement();
}

ExprPtr ParseSqlExpression(const std::string& sql) {
  Parser parser(sql);
  return parser.ParseSingleExpression();
}

}  // namespace ssql
