#include "exec/sort_limit_exec.h"

#include <algorithm>
#include <optional>

#include "util/spill_file.h"

namespace ssql {

RowDataset SortExec::ExecuteImpl(QueryContext& ctx) const {
  RowDataset input = child_->Execute(ctx);
  AttributeVector child_out = child_->Output();

  struct BoundOrder {
    ExprPtr expr;
    bool ascending;
  };
  std::vector<BoundOrder> bound;
  bound.reserve(orders_.size());
  for (const auto& o : orders_) {
    bound.push_back({BindReferences(o->child(), child_out), o->ascending()});
  }

  auto less = [&bound](const Row& a, const Row& b) {
    for (const auto& o : bound) {
      int c = o.expr->Eval(a).Compare(o.expr->Eval(b));
      if (c != 0) return o.ascending ? c < 0 : c > 0;
    }
    return false;
  };

  // Local sort per partition in parallel, then merge on the driver. The
  // comparator polls cancellation so a timed-out query aborts even inside
  // a large sort (std::stable_sort has no other exit point).
  size_t cancel_check = 0;
  auto checked_less = [&](const Row& a, const Row& b) {
    ctx.CheckCancelledEvery(&cancel_check);
    return less(a, b);
  };

  RowDataset locally_sorted =
      ctx.memory().limited()
          ? input.MapPartitions(ctx, [&](size_t, const RowPartition& part) {
              return ExternalSortPartition(ctx, part, less);
            }, "sort")
          : input.MapPartitions(ctx, [&](size_t, const RowPartition& part) {
              auto out = std::make_shared<RowPartition>();
              out->rows = part.rows;
              size_t task_check = 0;
              auto task_less = [&](const Row& a, const Row& b) {
                ctx.CheckCancelledEvery(&task_check);
                return less(a, b);
              };
              std::stable_sort(out->rows.begin(), out->rows.end(), task_less);
              return out;
            }, "sort");

  std::vector<Row> merged = locally_sorted.Collect();
  std::stable_sort(merged.begin(), merged.end(), checked_less);
  return RowDataset::SinglePartition(std::move(merged));
}

std::shared_ptr<RowPartition> SortExec::ExternalSortPartition(
    QueryContext& ctx, const RowPartition& part,
    const std::function<bool(const Row&, const Row&)>& less) const {
  size_t task_check = 0;
  auto task_less = [&](const Row& a, const Row& b) {
    ctx.CheckCancelledEvery(&task_check);
    return less(a, b);
  };

  // Phase 1: accumulate rows into a budgeted buffer; when a grant is denied
  // the buffer becomes a stable-sorted run on disk and the buffer restarts.
  MemoryReservation reservation = ctx.memory().CreateReservation();
  std::vector<SpillFile> runs;
  std::vector<Row> buffer;
  int64_t used = 0;
  auto spill_run = [&] {
    std::stable_sort(buffer.begin(), buffer.end(), task_less);
    SpillFile run = ctx.MakeSpillFile("sort");
    int64_t wrote = 0;
    for (const Row& r : buffer) wrote += run.Append(r);
    run.FinishWrites();
    ctx.profile().Add(nullptr, ProfileCounter::kSpillFiles, 1);
    ctx.profile().Add(nullptr, ProfileCounter::kSpillBytes, wrote);
    ctx.engine()
        .registry()
        .Histogram("ssql_spill_write_bytes", "Bytes written per spill event")
        .Record(wrote);
    runs.push_back(std::move(run));
    buffer.clear();
    used = 0;
    reservation.Release();
  };
  for (const Row& row : part.rows) {
    ctx.CheckCancelledEvery(&task_check);
    int64_t row_bytes = EstimateRowBytes(row);
    if (!reservation.EnsureReserved(used + row_bytes)) {
      if (!ctx.memory().spill_enabled()) {
        throw ExecutionError(ctx.memory().OverBudgetMessage("sort"));
      }
      if (!buffer.empty()) spill_run();
      // A single row is the irreducible working set; admit it even when the
      // budget (shared with concurrent partitions) is still exhausted.
      if (!reservation.EnsureReserved(row_bytes)) {
        reservation.ForceGrow(row_bytes);
      }
    }
    used += row_bytes;
    buffer.push_back(row);
  }
  std::stable_sort(buffer.begin(), buffer.end(), task_less);

  auto out = std::make_shared<RowPartition>();
  if (runs.empty()) {
    out->rows = std::move(buffer);
    return out;
  }

  // Phase 2: k-way merge of the run files plus the in-memory tail run.
  // Sources are ordered oldest-run-first with the tail last, and ties keep
  // the lowest source index, so the merge is stable overall.
  for (auto& run : runs) run.FinishWrites();
  std::vector<SpillFile::Reader> readers;
  readers.reserve(runs.size());
  for (auto& run : runs) readers.emplace_back(run);
  size_t tail_pos = 0;
  std::vector<std::optional<Row>> heads(readers.size() + 1);
  auto advance = [&](size_t src) {
    heads[src].reset();
    if (src < readers.size()) {
      Row row;
      if (readers[src].Next(&row)) heads[src] = std::move(row);
    } else if (tail_pos < buffer.size()) {
      heads[src] = std::move(buffer[tail_pos++]);
    }
  };
  for (size_t s = 0; s < heads.size(); ++s) advance(s);
  out->rows.reserve(part.rows.size());
  while (true) {
    ctx.CheckCancelledEvery(&task_check);
    int best = -1;
    for (size_t s = 0; s < heads.size(); ++s) {
      if (!heads[s]) continue;
      if (best < 0 || task_less(*heads[s], *heads[best])) {
        best = static_cast<int>(s);
      }
    }
    if (best < 0) break;
    out->rows.push_back(std::move(*heads[best]));
    advance(static_cast<size_t>(best));
  }
  return out;  // `runs` goes out of scope here, deleting the spill files
}

std::string SortExec::Describe() const {
  std::string s = "Sort [";
  for (size_t i = 0; i < orders_.size(); ++i) {
    if (i > 0) s += ", ";
    s += orders_[i]->ToString();
  }
  return s + "]";
}

RowDataset LimitExec::ExecuteImpl(QueryContext& ctx) const {
  RowDataset input = child_->Execute(ctx);
  size_t limit = n_ < 0 ? 0 : static_cast<size_t>(n_);

  // Local limit bounds what each partition ships to the driver.
  RowDataset local = input.MapPartitions(ctx, [&](size_t, const RowPartition&
                                                              part) {
    auto out = std::make_shared<RowPartition>();
    size_t take = std::min(part.rows.size(), limit);
    out->rows.assign(part.rows.begin(), part.rows.begin() + take);
    return out;
  }, "limit");

  std::vector<Row> all = local.Collect();
  if (all.size() > limit) all.resize(limit);
  return RowDataset::SinglePartition(std::move(all));
}

}  // namespace ssql
