#include "exec/sort_limit_exec.h"

#include <algorithm>

namespace ssql {

RowDataset SortExec::Execute(ExecContext& ctx) const {
  RowDataset input = child_->Execute(ctx);
  AttributeVector child_out = child_->Output();

  struct BoundOrder {
    ExprPtr expr;
    bool ascending;
  };
  std::vector<BoundOrder> bound;
  bound.reserve(orders_.size());
  for (const auto& o : orders_) {
    bound.push_back({BindReferences(o->child(), child_out), o->ascending()});
  }

  auto less = [&bound](const Row& a, const Row& b) {
    for (const auto& o : bound) {
      int c = o.expr->Eval(a).Compare(o.expr->Eval(b));
      if (c != 0) return o.ascending ? c < 0 : c > 0;
    }
    return false;
  };

  // Local sort per partition in parallel, then merge on the driver. The
  // comparator polls cancellation so a timed-out query aborts even inside
  // a large sort (std::stable_sort has no other exit point).
  size_t cancel_check = 0;
  auto checked_less = [&](const Row& a, const Row& b) {
    ctx.CheckCancelledEvery(&cancel_check);
    return less(a, b);
  };
  RowDataset locally_sorted =
      input.MapPartitions(ctx, [&](size_t, const RowPartition& part) {
        auto out = std::make_shared<RowPartition>();
        out->rows = part.rows;
        size_t task_check = 0;
        auto task_less = [&](const Row& a, const Row& b) {
          ctx.CheckCancelledEvery(&task_check);
          return less(a, b);
        };
        std::stable_sort(out->rows.begin(), out->rows.end(), task_less);
        return out;
      }, "sort");

  std::vector<Row> merged = locally_sorted.Collect();
  std::stable_sort(merged.begin(), merged.end(), checked_less);
  return RowDataset::SinglePartition(std::move(merged));
}

std::string SortExec::Describe() const {
  std::string s = "Sort [";
  for (size_t i = 0; i < orders_.size(); ++i) {
    if (i > 0) s += ", ";
    s += orders_[i]->ToString();
  }
  return s + "]";
}

RowDataset LimitExec::Execute(ExecContext& ctx) const {
  RowDataset input = child_->Execute(ctx);
  size_t limit = n_ < 0 ? 0 : static_cast<size_t>(n_);

  // Local limit bounds what each partition ships to the driver.
  RowDataset local = input.MapPartitions(ctx, [&](size_t, const RowPartition&
                                                              part) {
    auto out = std::make_shared<RowPartition>();
    size_t take = std::min(part.rows.size(), limit);
    out->rows.assign(part.rows.begin(), part.rows.begin() + take);
    return out;
  }, "limit");

  std::vector<Row> all = local.Collect();
  if (all.size() > limit) all.resize(limit);
  return RowDataset::SinglePartition(std::move(all));
}

}  // namespace ssql
