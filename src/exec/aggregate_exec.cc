#include "exec/aggregate_exec.h"

#include <optional>
#include <unordered_map>

#include "catalyst/codegen/compiled_expression.h"
#include "catalyst/expr/literal.h"
#include "util/spill_file.h"

namespace ssql {

namespace {

/// Hashable grouping key.
struct GroupKey {
  std::vector<Value> values;

  bool operator==(const GroupKey& other) const {
    if (values.size() != other.values.size()) return false;
    for (size_t i = 0; i < values.size(); ++i) {
      if (!values[i].Equals(other.values[i])) return false;
    }
    return true;
  }
};

struct GroupKeyHash {
  size_t operator()(const GroupKey& k) const {
    uint64_t h = 1469598103934665603ULL;
    for (const auto& v : k.values) h = h * 1099511628211ULL + v.Hash();
    return static_cast<size_t>(h);
  }
};

using GroupMap = std::unordered_map<GroupKey, std::vector<Value>, GroupKeyHash>;

/// Number of hash buckets a spilled group map is scattered into; the drain
/// phase needs only one bucket's groups in memory at a time.
constexpr size_t kAggSpillFanout = 16;

/// Map node + bucket-array overhead per group beyond the boxed values.
constexpr int64_t kGroupEntryOverhead = 64;

/// The hash-aggregation working set of one partition task, with Grace-style
/// spilling: group banks live in an in-memory map charged against a
/// MemoryReservation; when a grant is denied the map is scattered into
/// kAggSpillFanout spill files by (mixed) key hash as [key..., accumulator
/// ...] rows and the map restarts empty. Drain() then re-aggregates each
/// bucket separately — all rows of a group share a bucket — merging partial
/// accumulators with AggregateFunction::Merge, which is exactly how the
/// Final stage combines shuffled accumulators. Used by both the Partial and
/// Final generic paths; callers choose how a new group's bank is built and
/// how rows fold into an existing bank.
class SpillingGroupMap {
 public:
  SpillingGroupMap(QueryContext& ctx, std::string consumer, size_t key_width,
                   const std::vector<AggregatePtr>& aggs)
      : ctx_(ctx),
        consumer_(std::move(consumer)),
        key_width_(key_width),
        aggs_(aggs),
        reservation_(ctx.memory().CreateReservation()) {}

  /// Returns the accumulator bank for `key`, inserting the bank built by
  /// `init` when the key is new (spilling first if over budget). The
  /// pointer is valid until the next FindOrInsert call.
  std::vector<Value>* FindOrInsert(
      GroupKey key, const std::function<std::vector<Value>()>& init) {
    auto it = groups_.find(key);
    if (it != groups_.end()) return &it->second;
    std::vector<Value> accs = init();
    int64_t entry_bytes = kGroupEntryOverhead;
    for (const Value& v : key.values) entry_bytes += EstimateValueBytes(v);
    for (const Value& v : accs) entry_bytes += EstimateValueBytes(v);
    Charge(entry_bytes);
    it = groups_.emplace(std::move(key), std::move(accs)).first;
    return &it->second;
  }

  /// Emits every surviving group exactly once via `sink`, merging spilled
  /// buckets back through a (smaller) in-memory map. Leaves the map empty
  /// and the reservation released; spill files are deleted as each bucket
  /// finishes (and by RAII on any unwind).
  void Drain(const std::function<void(GroupKey, std::vector<Value>)>& sink) {
    if (spill_buckets_.empty()) {
      for (auto& [key, accs] : groups_) {
        sink(GroupKey{key.values}, std::move(accs));
      }
      groups_.clear();
      used_bytes_ = 0;
      reservation_.Release();
      return;
    }
    // Uniform handling: push the in-memory remainder to disk too, then
    // re-aggregate bucket by bucket.
    SpillMap();
    for (auto& bucket : spill_buckets_) {
      if (!bucket) continue;
      bucket->FinishWrites();
      GroupMap merged;
      int64_t used = 0;
      size_t cancel_check = 0;
      SpillFile::Reader reader(*bucket);
      Row row;
      while (reader.Next(&row)) {
        ctx_.CheckCancelledEvery(&cancel_check);
        GroupKey key;
        key.values.assign(row.values().begin(),
                          row.values().begin() + key_width_);
        auto it = merged.find(key);
        if (it == merged.end()) {
          int64_t entry_bytes = kGroupEntryOverhead;
          for (const Value& v : row.values()) {
            entry_bytes += EstimateValueBytes(v);
          }
          // A bucket that still exceeds the budget is processed anyway
          // (single-level recursion); the overshoot is 1/kAggSpillFanout
          // of the original working set.
          if (!reservation_.EnsureReserved(used + entry_bytes)) {
            reservation_.ForceGrow(entry_bytes);
          }
          used += entry_bytes;
          std::vector<Value> accs(row.values().begin() + key_width_,
                                  row.values().end());
          merged.emplace(std::move(key), std::move(accs));
          continue;
        }
        for (size_t j = 0; j < aggs_.size(); ++j) {
          aggs_[j]->Merge(&it->second[j], row.Get(key_width_ + j));
        }
      }
      for (auto& [key, accs] : merged) {
        sink(GroupKey{key.values}, std::move(accs));
      }
      reservation_.Release();
      bucket.reset();  // deletes the file as soon as its bucket is done
    }
  }

  bool spilled() const { return !spill_buckets_.empty(); }

 private:
  /// Reserves `entry_bytes` more, spilling the current map when denied.
  void Charge(int64_t entry_bytes) {
    if (reservation_.EnsureReserved(used_bytes_ + entry_bytes)) {
      used_bytes_ += entry_bytes;
      return;
    }
    if (!ctx_.memory().spill_enabled()) {
      throw ExecutionError(ctx_.memory().OverBudgetMessage(consumer_));
    }
    SpillMap();
    // The new group is the irreducible working set: admit it even if the
    // budget (shared with concurrent partitions) is still exhausted.
    if (!reservation_.EnsureReserved(entry_bytes)) {
      reservation_.ForceGrow(entry_bytes);
    }
    used_bytes_ = entry_bytes;
  }

  /// Scatters the in-memory map into the bucket files and restarts empty.
  void SpillMap() {
    if (spill_buckets_.empty()) spill_buckets_.resize(kAggSpillFanout);
    int64_t wrote = 0;
    size_t cancel_check = 0;
    size_t files_created = 0;
    for (auto& [key, accs] : groups_) {
      ctx_.CheckCancelledEvery(&cancel_check);
      size_t b = MixHash64(GroupKeyHash{}(key)) % kAggSpillFanout;
      if (!spill_buckets_[b]) {
        spill_buckets_[b].emplace(ctx_.MakeSpillFile(consumer_));
        ++files_created;
      }
      Row row;
      row.Reserve(key.values.size() + accs.size());
      for (const Value& v : key.values) row.Append(v);
      for (const Value& v : accs) row.Append(v);
      wrote += spill_buckets_[b]->Append(row);
    }
    if (files_created > 0) {
      ctx_.profile().Add(nullptr, ProfileCounter::kSpillFiles,
                         static_cast<int64_t>(files_created));
    }
    if (wrote > 0) {
      ctx_.profile().Add(nullptr, ProfileCounter::kSpillBytes, wrote);
      ctx_.engine()
          .registry()
          .Histogram("ssql_spill_write_bytes",
                     "Bytes written per spill event")
          .Record(wrote);
    }
    groups_.clear();
    used_bytes_ = 0;
    reservation_.Release();
  }

  QueryContext& ctx_;
  std::string consumer_;
  size_t key_width_;
  const std::vector<AggregatePtr>& aggs_;
  GroupMap groups_;
  int64_t used_bytes_ = 0;
  MemoryReservation reservation_;
  std::vector<std::optional<SpillFile>> spill_buckets_;
};

}  // namespace

HashAggregateExec::HashAggregateExec(ExprVector groupings,
                                     std::vector<NamedExprPtr> aggregates,
                                     AggregateMode mode, PhysPtr child)
    : groupings_(std::move(groupings)),
      aggregates_(std::move(aggregates)),
      mode_(mode),
      child_(std::move(child)) {
  // Collect distinct aggregate functions in first-appearance order.
  std::vector<std::string> seen;
  for (const auto& out : aggregates_) {
    out->Foreach([this, &seen](const Expression& e) {
      const auto* agg = dynamic_cast<const AggregateFunction*>(&e);
      if (agg == nullptr) return;
      std::string key = agg->ToString();
      for (const auto& s : seen) {
        if (s == key) return;
      }
      seen.push_back(key);
      agg_functions_.push_back(
          std::static_pointer_cast<const AggregateFunction>(agg->self()));
    });
  }
  // Synthesized partial output attributes.
  for (size_t i = 0; i < groupings_.size(); ++i) {
    partial_output_.push_back(AttributeReference::Make(
        "group_" + std::to_string(i), groupings_[i]->data_type(), true));
  }
  for (size_t j = 0; j < agg_functions_.size(); ++j) {
    partial_output_.push_back(AttributeReference::Make(
        "acc_" + std::to_string(j), agg_functions_[j]->data_type(), true));
  }
}

AttributeVector HashAggregateExec::Output() const {
  if (mode_ == AggregateMode::kPartial) return partial_output_;
  AttributeVector out;
  out.reserve(aggregates_.size());
  for (const auto& a : aggregates_) out.push_back(a->ToAttribute());
  return out;
}

RowDataset HashAggregateExec::ExecuteImpl(QueryContext& ctx) const {
  return mode_ == AggregateMode::kPartial ? ExecutePartial(ctx)
                                          : ExecuteFinal(ctx);
}

RowDataset HashAggregateExec::ExecutePartial(QueryContext& ctx) const {
  RowDataset input = child_->Execute(ctx);
  AttributeVector child_out = child_->Output();

  // The typed fast path keeps its whole working set in unaccounted flat
  // arrays, so it only runs when no memory budget is in force.
  if (ctx.config().codegen_enabled && !ctx.memory().limited()) {
    RowDataset fast;
    if (TryExecutePartialFast(ctx, input, child_out, &fast)) return fast;
  }

  // Bind grouping exprs and aggregate-function children to the child row.
  ExprVector bound_groupings;
  bound_groupings.reserve(groupings_.size());
  for (const auto& g : groupings_) {
    bound_groupings.push_back(BindReferences(g, child_out));
  }
  std::vector<AggregatePtr> bound_aggs;
  bound_aggs.reserve(agg_functions_.size());
  for (const auto& agg : agg_functions_) {
    ExprPtr bound = BindReferences(agg, child_out);
    bound_aggs.push_back(
        std::static_pointer_cast<const AggregateFunction>(bound));
  }

  return input.MapPartitions(ctx, [&](size_t, const RowPartition& part) {
    SpillingGroupMap groups(ctx, "aggregate.partial", bound_groupings.size(),
                            bound_aggs);
    size_t cancel_check = 0;
    for (const Row& row : part.rows) {
      ctx.CheckCancelledEvery(&cancel_check);
      GroupKey key;
      key.values.reserve(bound_groupings.size());
      for (const auto& g : bound_groupings) key.values.push_back(g->Eval(row));
      std::vector<Value>* accs =
          groups.FindOrInsert(std::move(key), [&] {
            std::vector<Value> init;
            init.reserve(bound_aggs.size());
            for (const auto& agg : bound_aggs) {
              init.push_back(agg->InitAccumulator());
            }
            return init;
          });
      for (size_t j = 0; j < bound_aggs.size(); ++j) {
        bound_aggs[j]->Update(&(*accs)[j], row);
      }
    }
    auto out = std::make_shared<RowPartition>();
    groups.Drain([&](GroupKey key, std::vector<Value> accs) {
      Row row;
      row.Reserve(key.values.size() + accs.size());
      for (auto& v : key.values) row.Append(std::move(v));
      for (auto& a : accs) row.Append(std::move(a));
      out->rows.push_back(std::move(row));
    });
    return out;
  }, "aggregate.partial");
}


namespace {

/// Categorized simple aggregate for the typed fast path.
struct FastAggSpec {
  enum class Kind {
    kCountStar,
    kCount,    // skips nulls
    kSumI64,
    kSumF64,
    kAvg,
    kMinMaxI64,
    kMinMaxF64,
  };
  Kind kind;
  bool is_min = false;                              // for kMinMax*
  TypeId box_type = TypeId::kInt64;                 // result boxing for min/max
  std::optional<CompiledExpression> compiled;       // child program
};

/// Typed per-group accumulator bank (one entry per aggregate function).
struct FastAcc {
  int64_t count = 0;
  int64_t i64 = 0;
  double f64 = 0;
  bool has = false;
};

bool IsIntLikeType(TypeId id) {
  return id == TypeId::kInt32 || id == TypeId::kInt64 || id == TypeId::kDate ||
         id == TypeId::kTimestamp || id == TypeId::kBoolean;
}

/// Boxes an int64 back into its logical type.
Value BoxIntLike(int64_t v, TypeId id) {
  switch (id) {
    case TypeId::kInt32:
      return Value(static_cast<int32_t>(v));
    case TypeId::kDate:
      return Value(DateValue{static_cast<int32_t>(v)});
    case TypeId::kTimestamp:
      return Value(TimestampValue{v});
    case TypeId::kBoolean:
      return Value(v != 0);
    default:
      return Value(v);
  }
}

}  // namespace

namespace {

/// Categorizes the aggregate functions for the typed fast path. When
/// `child_out` is non-null the children are also compiled (the partial
/// stage evaluates them per row; the final stage only merges).
bool CategorizeFastAggs(const std::vector<AggregatePtr>& agg_functions,
                        const AttributeVector* child_out,
                        std::vector<FastAggSpec>* specs) {
  specs->reserve(agg_functions.size());
  for (const auto& agg : agg_functions) {
    FastAggSpec spec;
    ExprPtr child;
    if (const auto* count = dynamic_cast<const Count*>(agg.get())) {
      if (count->is_star()) {
        spec.kind = FastAggSpec::Kind::kCountStar;
        specs->push_back(std::move(spec));
        continue;
      }
      spec.kind = FastAggSpec::Kind::kCount;
      child = count->Children()[0];
    } else if (const auto* sum = dynamic_cast<const Sum*>(agg.get())) {
      TypeId rt = sum->data_type()->id();
      if (rt == TypeId::kInt64) {
        spec.kind = FastAggSpec::Kind::kSumI64;
      } else if (rt == TypeId::kDouble) {
        spec.kind = FastAggSpec::Kind::kSumF64;
      } else {
        return false;  // decimal sums use the generic path
      }
      child = sum->child();
    } else if (const auto* avg = dynamic_cast<const Average*>(agg.get())) {
      spec.kind = FastAggSpec::Kind::kAvg;
      child = avg->child();
    } else if (const auto* mm = dynamic_cast<const MinMax*>(agg.get())) {
      TypeId ct = mm->child()->data_type()->id();
      if (IsIntLikeType(ct)) {
        spec.kind = FastAggSpec::Kind::kMinMaxI64;
      } else if (ct == TypeId::kDouble) {
        spec.kind = FastAggSpec::Kind::kMinMaxF64;
      } else {
        return false;  // string min/max stays generic
      }
      spec.is_min = mm->is_min();
      spec.box_type = ct;
      child = mm->child();
    } else {
      return false;  // CountDistinct, UDAFs: generic path
    }
    if (child) {
      TypeId ct = child->data_type()->id();
      if (!IsIntLikeType(ct) && ct != TypeId::kDouble) return false;
      if (child_out != nullptr) {
        spec.compiled =
            CompiledExpression::Compile(BindReferences(child, *child_out));
        if (!spec.compiled) return false;
      }
    }
    specs->push_back(std::move(spec));
  }
  return !specs->empty();
}

/// Column types for packing the *partial* stage's output into batches.
/// Grouping columns are honestly typed, but accumulator columns carry
/// whatever Value shape the aggregate's accumulator uses at runtime (e.g.
/// Average's {sum, count} struct, CountDistinct's set) — not the finished
/// type partial_output_ declares — so they must pack into the boxed bank,
/// which round-trips any Value verbatim.
std::vector<DataTypePtr> PartialPackTypes(const ExprVector& groupings,
                                          size_t num_aggs) {
  std::vector<DataTypePtr> types;
  types.reserve(groupings.size() + num_aggs);
  for (const auto& g : groupings) types.push_back(g->data_type());
  DataTypePtr boxed = StructType::Make({});
  for (size_t j = 0; j < num_aggs; ++j) types.push_back(boxed);
  return types;
}

/// Shared group-index machinery of the typed fast paths: int64 key → bank
/// index, null keys in their own slot, banks laid out group-major (m
/// accumulators per group). Keys appear in `keys` in first-seen order.
struct FastGroupTable {
  explicit FastGroupTable(size_t m) : m(m) {}

  FastAcc* SlotFor(int64_t key, bool key_null) {
    uint32_t idx;
    if (key_null) {
      if (null_slot < 0) {
        null_slot = static_cast<int32_t>(banks.size() / m);
        banks.resize(banks.size() + m);
        keys.push_back(0);
      }
      idx = static_cast<uint32_t>(null_slot);
    } else {
      auto it = index.find(key);
      if (it == index.end()) {
        idx = static_cast<uint32_t>(banks.size() / m);
        index.emplace(key, idx);
        banks.resize(banks.size() + m);
        keys.push_back(key);
      } else {
        idx = it->second;
      }
    }
    return &banks[static_cast<size_t>(idx) * m];
  }

  size_t m;
  std::unordered_map<int64_t, uint32_t> index;
  std::vector<FastAcc> banks;
  std::vector<int64_t> keys;
  int32_t null_slot = -1;
};

/// Boxes each group of a partial-stage fast table once, into exactly the
/// accumulator layout the generic Final stage expects: [key?][acc...].
void AppendPartialGroupRows(const std::vector<FastAggSpec>& specs,
                            const FastGroupTable& table, bool has_key,
                            TypeId key_type, std::vector<Row>* out) {
  const size_t m = specs.size();
  const size_t num_groups = table.banks.size() / m;
  out->reserve(out->size() + num_groups);
  for (size_t g = 0; g < num_groups; ++g) {
    Row row;
    row.Reserve((has_key ? 1 : 0) + m);
    if (has_key) {
      bool is_null_group =
          table.null_slot >= 0 && g == static_cast<size_t>(table.null_slot);
      row.Append(is_null_group ? Value::Null()
                               : BoxIntLike(table.keys[g], key_type));
    }
    for (size_t j = 0; j < m; ++j) {
      const FastAcc& acc = table.banks[g * m + j];
      const FastAggSpec& spec = specs[j];
      switch (spec.kind) {
        case FastAggSpec::Kind::kCountStar:
        case FastAggSpec::Kind::kCount:
          row.Append(Value(acc.count));
          break;
        case FastAggSpec::Kind::kSumI64:
          row.Append(acc.has ? Value(acc.i64) : Value::Null());
          break;
        case FastAggSpec::Kind::kSumF64:
          row.Append(acc.has ? Value(acc.f64) : Value::Null());
          break;
        case FastAggSpec::Kind::kAvg:
          row.Append(Value::Struct({Value(acc.f64), Value(acc.count)}));
          break;
        case FastAggSpec::Kind::kMinMaxI64:
          row.Append(acc.has ? BoxIntLike(acc.i64, spec.box_type)
                             : Value::Null());
          break;
        case FastAggSpec::Kind::kMinMaxF64:
          row.Append(acc.has ? Value(acc.f64) : Value::Null());
          break;
      }
    }
    out->push_back(std::move(row));
  }
}

}  // namespace

bool HashAggregateExec::TryExecutePartialFast(QueryContext& ctx,
                                              const RowDataset& input,
                                              const AttributeVector& child_out,
                                              RowDataset* out) const {
  // Shape check: at most one integer-like grouping key.
  if (groupings_.size() > 1) return false;
  std::optional<CompiledExpression> key_program;
  if (groupings_.size() == 1) {
    TypeId kt = groupings_[0]->data_type()->id();
    if (!IsIntLikeType(kt)) return false;
    key_program =
        CompiledExpression::Compile(BindReferences(groupings_[0], child_out));
    if (!key_program) return false;
  }

  std::vector<FastAggSpec> specs;
  if (!CategorizeFastAggs(agg_functions_, &child_out, &specs)) return false;

  size_t m = specs.size();
  bool has_key = key_program.has_value();
  const CompiledExpression* key_prog_ptr =
      has_key ? &*key_program : nullptr;
  TypeId key_type =
      has_key ? groupings_[0]->data_type()->id() : TypeId::kNull;

  *out = input.MapPartitions(ctx, [&](size_t, const RowPartition& part) {
    // Per-task evaluators (register scratch is not shareable).
    std::optional<CompiledExpression::Evaluator> key_eval;
    if (key_prog_ptr != nullptr) key_eval.emplace(key_prog_ptr->NewEvaluator());
    std::vector<std::optional<CompiledExpression::Evaluator>> arg_evals(m);
    for (size_t j = 0; j < m; ++j) {
      if (specs[j].compiled) arg_evals[j].emplace(specs[j].compiled->NewEvaluator());
    }

    // Null keys get their own slot. Without groupings there is exactly one
    // bank.
    FastGroupTable table(m);
    if (!has_key) {
      table.banks.resize(m);
      table.keys.push_back(0);
    }

    size_t cancel_check = 0;
    for (const Row& row : part.rows) {
      ctx.CheckCancelledEvery(&cancel_check);
      FastAcc* bank;
      if (has_key) {
        bool key_null = false;
        int64_t key = key_eval->EvaluateInt64(row, &key_null);
        bank = table.SlotFor(key, key_null);
      } else {
        bank = table.banks.data();
      }
      for (size_t j = 0; j < m; ++j) {
        FastAcc& acc = bank[j];
        const FastAggSpec& spec = specs[j];
        if (spec.kind == FastAggSpec::Kind::kCountStar) {
          acc.count += 1;
          continue;
        }
        bool is_null = false;
        switch (spec.kind) {
          case FastAggSpec::Kind::kCount: {
            arg_evals[j]->Evaluate(row).is_null() ? void() : void(acc.count += 1);
            break;
          }
          case FastAggSpec::Kind::kSumI64: {
            int64_t v = arg_evals[j]->EvaluateInt64(row, &is_null);
            if (!is_null) {
              acc.i64 += v;
              acc.has = true;
            }
            break;
          }
          case FastAggSpec::Kind::kSumF64: {
            double v = arg_evals[j]->EvaluateDouble(row, &is_null);
            if (!is_null) {
              acc.f64 += v;
              acc.has = true;
            }
            break;
          }
          case FastAggSpec::Kind::kAvg: {
            // Average's accumulator sums as double regardless of input.
            double v;
            if (specs[j].compiled->result_kind() ==
                CompiledExpression::Kind::kF64) {
              v = arg_evals[j]->EvaluateDouble(row, &is_null);
            } else {
              v = static_cast<double>(arg_evals[j]->EvaluateInt64(row, &is_null));
            }
            if (!is_null) {
              acc.f64 += v;
              acc.count += 1;
            }
            break;
          }
          case FastAggSpec::Kind::kMinMaxI64: {
            int64_t v = arg_evals[j]->EvaluateInt64(row, &is_null);
            if (!is_null) {
              if (!acc.has || (spec.is_min ? v < acc.i64 : v > acc.i64)) {
                acc.i64 = v;
              }
              acc.has = true;
            }
            break;
          }
          case FastAggSpec::Kind::kMinMaxF64: {
            double v = arg_evals[j]->EvaluateDouble(row, &is_null);
            if (!is_null) {
              if (!acc.has || (spec.is_min ? v < acc.f64 : v > acc.f64)) {
                acc.f64 = v;
              }
              acc.has = true;
            }
            break;
          }
          default:
            break;
        }
      }
    }

    auto result = std::make_shared<RowPartition>();
    AppendPartialGroupRows(specs, table, has_key, key_type, &result->rows);
    return result;
  }, "aggregate.partial");
  return true;
}

bool HashAggregateExec::TryExecutePartialFastBatched(
    QueryContext& ctx, const BatchDataset& input,
    const AttributeVector& child_out, BatchDataset* out) const {
  // Same shape conditions as the row fast path.
  if (groupings_.size() > 1) return false;
  std::optional<CompiledExpression> key_program;
  if (groupings_.size() == 1) {
    TypeId kt = groupings_[0]->data_type()->id();
    if (!IsIntLikeType(kt)) return false;
    key_program =
        CompiledExpression::Compile(BindReferences(groupings_[0], child_out));
    if (!key_program) return false;
  }
  std::vector<FastAggSpec> specs;
  if (!CategorizeFastAggs(agg_functions_, &child_out, &specs)) return false;

  const size_t m = specs.size();
  const bool has_key = key_program.has_value();
  const CompiledExpression* key_prog_ptr = has_key ? &*key_program : nullptr;
  const TypeId key_type =
      has_key ? groupings_[0]->data_type()->id() : TypeId::kNull;
  const std::vector<DataTypePtr> out_types =
      PartialPackTypes(groupings_, agg_functions_.size());
  const size_t batch_size = ctx.config().batch_size;

  *out = input.MapPartitions(ctx, [&](size_t, const BatchPartition& part) {
    std::optional<CompiledExpression::VectorEvaluator> key_eval;
    if (key_prog_ptr != nullptr) {
      key_eval.emplace(key_prog_ptr->NewVectorEvaluator());
    }
    std::vector<std::optional<CompiledExpression::VectorEvaluator>> arg_evals(
        m);
    for (size_t j = 0; j < m; ++j) {
      if (specs[j].compiled) {
        arg_evals[j].emplace(specs[j].compiled->NewVectorEvaluator());
      }
    }
    FastGroupTable table(m);
    if (!has_key) {
      table.banks.resize(m);
      table.keys.push_back(0);
    }

    // Lanes of one evaluated argument column (i64 xor f64, plus nulls).
    struct ArgLanes {
      const int64_t* i64 = nullptr;
      const double* f64 = nullptr;
      const uint8_t* nulls = nullptr;
    };

    size_t cancel_rows = 0;
    for (const RowBatchPtr& batch : part.batches) {
      const size_t n = batch->ActiveRows();
      if (n == 0) continue;
      ctx.CheckCancelledEveryRows(&cancel_rows, n);

      // Evaluate the grouping key and every aggregate argument as whole
      // columns, then fold them with one tight lane loop.
      std::optional<ColumnVector> key_col;
      const int64_t* key_vals = nullptr;
      const uint8_t* key_nulls = nullptr;
      if (has_key) {
        key_col.emplace(key_prog_ptr->result_type());
        key_col->Reserve(n);
        key_eval->EvaluateColumn(*batch, &*key_col);
        key_vals = key_col->ints().data();
        key_nulls = key_col->nulls().data();
      }
      std::vector<std::optional<ColumnVector>> arg_cols(m);
      std::vector<ArgLanes> lanes(m);
      for (size_t j = 0; j < m; ++j) {
        if (!specs[j].compiled) continue;  // count(*): no argument
        arg_cols[j].emplace(specs[j].compiled->result_type());
        arg_cols[j]->Reserve(n);
        arg_evals[j]->EvaluateColumn(*batch, &*arg_cols[j]);
        lanes[j].nulls = arg_cols[j]->nulls().data();
        if (specs[j].compiled->result_kind() ==
            CompiledExpression::Kind::kF64) {
          lanes[j].f64 = arg_cols[j]->doubles().data();
        } else {
          lanes[j].i64 = arg_cols[j]->ints().data();
        }
      }

      for (size_t k = 0; k < n; ++k) {
        FastAcc* bank = has_key
                            ? table.SlotFor(key_vals[k], key_nulls[k] != 0)
                            : table.banks.data();
        for (size_t j = 0; j < m; ++j) {
          FastAcc& acc = bank[j];
          const ArgLanes& lane = lanes[j];
          switch (specs[j].kind) {
            case FastAggSpec::Kind::kCountStar:
              acc.count += 1;
              break;
            case FastAggSpec::Kind::kCount:
              if (!lane.nulls[k]) acc.count += 1;
              break;
            case FastAggSpec::Kind::kSumI64:
              if (!lane.nulls[k]) {
                acc.i64 += lane.i64[k];
                acc.has = true;
              }
              break;
            case FastAggSpec::Kind::kSumF64:
              if (!lane.nulls[k]) {
                acc.f64 += lane.f64[k];
                acc.has = true;
              }
              break;
            case FastAggSpec::Kind::kAvg:
              // Average's accumulator sums as double regardless of input.
              if (!lane.nulls[k]) {
                acc.f64 += lane.f64 != nullptr
                               ? lane.f64[k]
                               : static_cast<double>(lane.i64[k]);
                acc.count += 1;
              }
              break;
            case FastAggSpec::Kind::kMinMaxI64:
              if (!lane.nulls[k]) {
                int64_t v = lane.i64[k];
                if (!acc.has ||
                    (specs[j].is_min ? v < acc.i64 : v > acc.i64)) {
                  acc.i64 = v;
                }
                acc.has = true;
              }
              break;
            case FastAggSpec::Kind::kMinMaxF64:
              if (!lane.nulls[k]) {
                double v = lane.f64[k];
                if (!acc.has ||
                    (specs[j].is_min ? v < acc.f64 : v > acc.f64)) {
                  acc.f64 = v;
                }
                acc.has = true;
              }
              break;
          }
        }
      }
    }

    std::vector<Row> rows;
    AppendPartialGroupRows(specs, table, has_key, key_type, &rows);
    auto result = std::make_shared<BatchPartition>();
    PackRowsIntoBatches(rows, out_types, batch_size, &result->batches);
    return result;
  }, "aggregate.partial");
  return true;
}

BatchDataset HashAggregateExec::ExecuteBatchesImpl(QueryContext& ctx) const {
  // Only the partial stage is batched (see SupportsBatches()): it consumes
  // the columnar scan→filter→project pipeline directly.
  BatchDataset input = child_->ExecuteBatches(ctx);
  AttributeVector child_out = child_->Output();

  if (ctx.config().codegen_enabled && !ctx.memory().limited()) {
    BatchDataset fast;
    if (TryExecutePartialFastBatched(ctx, input, child_out, &fast)) {
      return fast;
    }
  }

  // Generic shape: box each batch's live rows and fold them into the same
  // spilling group map as the row path — results are identical; the win is
  // that the pipeline below stayed columnar.
  ExprVector bound_groupings;
  bound_groupings.reserve(groupings_.size());
  for (const auto& g : groupings_) {
    bound_groupings.push_back(BindReferences(g, child_out));
  }
  std::vector<AggregatePtr> bound_aggs;
  bound_aggs.reserve(agg_functions_.size());
  for (const auto& agg : agg_functions_) {
    ExprPtr bound = BindReferences(agg, child_out);
    bound_aggs.push_back(
        std::static_pointer_cast<const AggregateFunction>(bound));
  }
  const std::vector<DataTypePtr> out_types =
      PartialPackTypes(groupings_, agg_functions_.size());
  const size_t batch_size = ctx.config().batch_size;

  return input.MapPartitions(ctx, [&](size_t, const BatchPartition& part) {
    SpillingGroupMap groups(ctx, "aggregate.partial", bound_groupings.size(),
                            bound_aggs);
    size_t cancel_check = 0;
    for (const RowBatchPtr& batch : part.batches) {
      for (size_t r = 0; r < batch->ActiveRows(); ++r) {
        ctx.CheckCancelledEvery(&cancel_check);
        Row row = batch->BoxRow(batch->ActiveIndex(r));
        GroupKey key;
        key.values.reserve(bound_groupings.size());
        for (const auto& g : bound_groupings) {
          key.values.push_back(g->Eval(row));
        }
        std::vector<Value>* accs = groups.FindOrInsert(std::move(key), [&] {
          std::vector<Value> init;
          init.reserve(bound_aggs.size());
          for (const auto& agg : bound_aggs) {
            init.push_back(agg->InitAccumulator());
          }
          return init;
        });
        for (size_t j = 0; j < bound_aggs.size(); ++j) {
          bound_aggs[j]->Update(&(*accs)[j], row);
        }
      }
    }
    std::vector<Row> rows;
    groups.Drain([&](GroupKey key, std::vector<Value> accs) {
      Row row;
      row.Reserve(key.values.size() + accs.size());
      for (auto& v : key.values) row.Append(std::move(v));
      for (auto& a : accs) row.Append(std::move(a));
      rows.push_back(std::move(row));
    });
    auto out = std::make_shared<BatchPartition>();
    PackRowsIntoBatches(rows, out_types, batch_size, &out->batches);
    return out;
  }, "aggregate.partial");
}

RowDataset HashAggregateExec::ExecuteFinal(QueryContext& ctx) const {
  RowDataset input = child_->Execute(ctx);
  size_t k = groupings_.size();
  size_t m = agg_functions_.size();

  // Rewrite the output expressions against the row layout
  // [group values..., finished aggregate values...].
  std::vector<std::string> grouping_keys;
  grouping_keys.reserve(k);
  for (const auto& g : groupings_) grouping_keys.push_back(g->ToString());
  std::vector<std::string> agg_keys;
  agg_keys.reserve(m);
  for (const auto& a : agg_functions_) agg_keys.push_back(a->ToString());

  ExprVector result_exprs;
  result_exprs.reserve(aggregates_.size());
  for (const auto& out : aggregates_) {
    ExprPtr value = out;
    if (const auto* alias = As<Alias>(value)) value = alias->child();
    ExprPtr rewritten = value->TransformDown([&](const ExprPtr& e) -> ExprPtr {
      std::string key = e->ToString();
      for (size_t i = 0; i < k; ++i) {
        if (key == grouping_keys[i]) {
          return BoundReference::Make(static_cast<int>(i),
                                      groupings_[i]->data_type(), true);
        }
      }
      if (dynamic_cast<const AggregateFunction*>(e.get()) != nullptr) {
        for (size_t j = 0; j < m; ++j) {
          if (key == agg_keys[j]) {
            return BoundReference::Make(static_cast<int>(k + j),
                                        agg_functions_[j]->data_type(), true);
          }
        }
      }
      return e;
    });
    result_exprs.push_back(std::move(rewritten));
  }

  bool global = k == 0;

  if (ctx.config().codegen_enabled && !global && !ctx.memory().limited()) {
    RowDataset fast;
    if (TryExecuteFinalFast(ctx, input, result_exprs, &fast)) return fast;
  }

  RowDataset merged = input.MapPartitions(ctx, [&](size_t, const RowPartition&
                                                                part) {
    SpillingGroupMap groups(ctx, "aggregate.final", k, agg_functions_);
    size_t cancel_check = 0;
    for (const Row& row : part.rows) {
      ctx.CheckCancelledEvery(&cancel_check);
      GroupKey key;
      key.values.reserve(k);
      for (size_t i = 0; i < k; ++i) key.values.push_back(row.Get(i));
      bool inserted = false;
      std::vector<Value>* accs = groups.FindOrInsert(std::move(key), [&] {
        inserted = true;
        std::vector<Value> init;
        init.reserve(m);
        for (size_t j = 0; j < m; ++j) init.push_back(row.Get(k + j));
        return init;
      });
      if (!inserted) {
        for (size_t j = 0; j < m; ++j) {
          agg_functions_[j]->Merge(&(*accs)[j], row.Get(k + j));
        }
      }
    }
    auto out = std::make_shared<RowPartition>();
    groups.Drain([&](GroupKey key, std::vector<Value> accs) {
      Row base;
      base.Reserve(k + m);
      for (const auto& v : key.values) base.Append(v);
      for (size_t j = 0; j < m; ++j) {
        base.Append(agg_functions_[j]->Finish(accs[j]));
      }
      Row result;
      result.Reserve(result_exprs.size());
      for (const auto& e : result_exprs) result.Append(e->Eval(base));
      out->rows.push_back(std::move(result));
    });
    return out;
  }, "aggregate.final");

  if (global && merged.TotalRows() == 0) {
    // Aggregates over an empty input still produce one row.
    Row base;
    base.Reserve(m);
    for (const auto& agg : agg_functions_) base.Append(agg->EmptyResult());
    Row result;
    result.Reserve(result_exprs.size());
    for (const auto& e : result_exprs) result.Append(e->Eval(base));
    return RowDataset::SinglePartition({std::move(result)});
  }
  return merged;
}


bool HashAggregateExec::TryExecuteFinalFast(QueryContext& ctx,
                                            const RowDataset& input,
                                            const ExprVector& result_exprs,
                                            RowDataset* out) const {
  if (groupings_.size() != 1) return false;
  TypeId key_type = groupings_[0]->data_type()->id();
  if (!IsIntLikeType(key_type)) return false;
  std::vector<FastAggSpec> specs;
  if (!CategorizeFastAggs(agg_functions_, nullptr, &specs)) return false;
  size_t m = specs.size();

  *out = input.MapPartitions(ctx, [&](size_t, const RowPartition& part) {
    std::unordered_map<int64_t, uint32_t> index;
    std::vector<FastAcc> banks;
    std::vector<int64_t> keys;
    int32_t null_slot = -1;

    size_t cancel_check = 0;
    for (const Row& row : part.rows) {
      ctx.CheckCancelledEvery(&cancel_check);
      const Value& kv = row.Get(0);
      uint32_t idx;
      if (kv.is_null()) {
        if (null_slot < 0) {
          null_slot = static_cast<int32_t>(banks.size() / m);
          banks.resize(banks.size() + m);
          keys.push_back(0);
        }
        idx = static_cast<uint32_t>(null_slot);
      } else {
        int64_t key = kv.AsInt64();
        auto it = index.find(key);
        if (it == index.end()) {
          idx = static_cast<uint32_t>(banks.size() / m);
          index.emplace(key, idx);
          banks.resize(banks.size() + m);
          keys.push_back(key);
        } else {
          idx = it->second;
        }
      }
      FastAcc* bank = &banks[static_cast<size_t>(idx) * m];
      for (size_t j = 0; j < m; ++j) {
        FastAcc& acc = bank[j];
        const Value& v = row.Get(1 + j);
        switch (specs[j].kind) {
          case FastAggSpec::Kind::kCountStar:
          case FastAggSpec::Kind::kCount:
            acc.count += v.i64();
            break;
          case FastAggSpec::Kind::kSumI64:
            if (!v.is_null()) {
              acc.i64 += v.AsInt64();
              acc.has = true;
            }
            break;
          case FastAggSpec::Kind::kSumF64:
            if (!v.is_null()) {
              acc.f64 += v.f64();
              acc.has = true;
            }
            break;
          case FastAggSpec::Kind::kAvg: {
            const auto& fields = v.struct_data().fields;
            acc.f64 += fields[0].f64();
            acc.count += fields[1].i64();
            break;
          }
          case FastAggSpec::Kind::kMinMaxI64:
            if (!v.is_null()) {
              int64_t x = v.AsInt64();
              if (!acc.has || (specs[j].is_min ? x < acc.i64 : x > acc.i64)) {
                acc.i64 = x;
              }
              acc.has = true;
            }
            break;
          case FastAggSpec::Kind::kMinMaxF64:
            if (!v.is_null()) {
              double x = v.f64();
              if (!acc.has || (specs[j].is_min ? x < acc.f64 : x > acc.f64)) {
                acc.f64 = x;
              }
              acc.has = true;
            }
            break;
        }
      }
    }

    // Finish + evaluate the result expressions per group.
    auto result = std::make_shared<RowPartition>();
    size_t num_groups = banks.size() / m;
    result->rows.reserve(num_groups);
    Row base;
    for (size_t g = 0; g < num_groups; ++g) {
      base.values().clear();
      base.Reserve(1 + m);
      bool is_null_group =
          null_slot >= 0 && g == static_cast<size_t>(null_slot);
      base.Append(is_null_group ? Value::Null()
                                : BoxIntLike(keys[g], key_type));
      for (size_t j = 0; j < m; ++j) {
        const FastAcc& acc = banks[g * m + j];
        switch (specs[j].kind) {
          case FastAggSpec::Kind::kCountStar:
          case FastAggSpec::Kind::kCount:
            base.Append(Value(acc.count));
            break;
          case FastAggSpec::Kind::kSumI64:
            base.Append(acc.has ? Value(acc.i64) : Value::Null());
            break;
          case FastAggSpec::Kind::kSumF64:
            base.Append(acc.has ? Value(acc.f64) : Value::Null());
            break;
          case FastAggSpec::Kind::kAvg:
            base.Append(acc.count > 0
                            ? Value(acc.f64 / static_cast<double>(acc.count))
                            : Value::Null());
            break;
          case FastAggSpec::Kind::kMinMaxI64:
            base.Append(acc.has ? BoxIntLike(acc.i64, specs[j].box_type)
                                : Value::Null());
            break;
          case FastAggSpec::Kind::kMinMaxF64:
            base.Append(acc.has ? Value(acc.f64) : Value::Null());
            break;
        }
      }
      Row produced;
      produced.Reserve(result_exprs.size());
      for (const auto& e : result_exprs) produced.Append(e->Eval(base));
      result->rows.push_back(std::move(produced));
    }
    return result;
  }, "aggregate.final");
  return true;
}

std::string HashAggregateExec::Describe() const {
  std::string s = NodeName() + " keys=[";
  for (size_t i = 0; i < groupings_.size(); ++i) {
    if (i > 0) s += ", ";
    s += groupings_[i]->ToString();
  }
  s += "], output=[";
  for (size_t i = 0; i < aggregates_.size(); ++i) {
    if (i > 0) s += ", ";
    s += aggregates_[i]->ToString();
  }
  return s + "]";
}

}  // namespace ssql
