#include "exec/interval_join_exec.h"

#include <algorithm>

namespace ssql {

IntervalTree::IntervalTree(std::vector<Interval> intervals) {
  nodes_.reserve(intervals.size());
  std::sort(intervals.begin(), intervals.end(),
            [](const Interval& a, const Interval& b) { return a.start < b.start; });
  root_ = Build(intervals, 0, static_cast<int>(intervals.size()));
}

int IntervalTree::Build(std::vector<Interval>& sorted, int lo, int hi) {
  if (lo >= hi) return -1;
  int mid = lo + (hi - lo) / 2;
  int idx = static_cast<int>(nodes_.size());
  nodes_.push_back(Node{sorted[mid], sorted[mid].end, -1, -1});
  // Children are built after the parent slot is reserved; indices stay
  // valid because the vector only grows.
  int left = Build(sorted, lo, mid);
  int right = Build(sorted, mid + 1, hi);
  nodes_[idx].left = left;
  nodes_[idx].right = right;
  double max_end = nodes_[idx].interval.end;
  if (left >= 0) max_end = std::max(max_end, nodes_[left].max_end);
  if (right >= 0) max_end = std::max(max_end, nodes_[right].max_end);
  nodes_[idx].max_end = max_end;
  return idx;
}

void IntervalTree::Query(double p, std::vector<size_t>* out) const {
  QueryNode(root_, p, out);
}

void IntervalTree::QueryNode(int node, double p, std::vector<size_t>* out) const {
  if (node < 0) return;
  const Node& n = nodes_[node];
  // No interval below this node ends after p.
  if (n.max_end <= p) return;
  // Left subtree may always contain smaller starts.
  QueryNode(n.left, p, out);
  if (n.interval.start < p) {
    if (p < n.interval.end) out->push_back(n.interval.payload);
    // Right subtree has starts >= this start; only useful while start < p.
    QueryNode(n.right, p, out);
  }
}

IntervalJoinExec::IntervalJoinExec(PhysPtr left, PhysPtr right,
                                   bool interval_on_left, ExprPtr start,
                                   ExprPtr end, ExprPtr point, ExprPtr residual)
    : left_(std::move(left)),
      right_(std::move(right)),
      interval_on_left_(interval_on_left),
      start_(std::move(start)),
      end_(std::move(end)),
      point_(std::move(point)),
      residual_(std::move(residual)) {}

AttributeVector IntervalJoinExec::Output() const {
  AttributeVector out = left_->Output();
  auto right_out = right_->Output();
  out.insert(out.end(), right_out.begin(), right_out.end());
  return out;
}

RowDataset IntervalJoinExec::ExecuteImpl(QueryContext& ctx) const {
  AttributeVector left_out = left_->Output();
  AttributeVector right_out = right_->Output();
  AttributeVector joined_out = left_out;
  joined_out.insert(joined_out.end(), right_out.begin(), right_out.end());

  const PhysPtr& interval_side = interval_on_left_ ? left_ : right_;
  const PhysPtr& point_side = interval_on_left_ ? right_ : left_;
  AttributeVector interval_attrs = interval_side->Output();
  AttributeVector point_attrs = point_side->Output();

  ExprPtr bound_start = BindReferences(start_, interval_attrs);
  ExprPtr bound_end = BindReferences(end_, interval_attrs);
  ExprPtr bound_point = BindReferences(point_, point_attrs);
  ExprPtr bound_residual =
      residual_ ? BindReferences(residual_, joined_out) : nullptr;

  // Build the tree over the collected interval side.
  std::vector<Row> build = interval_side->Execute(ctx).Collect();
  std::vector<IntervalTree::Interval> intervals;
  intervals.reserve(build.size());
  size_t build_cancel_check = 0;
  for (size_t i = 0; i < build.size(); ++i) {
    ctx.CheckCancelledEvery(&build_cancel_check);
    Value s = bound_start->Eval(build[i]);
    Value e = bound_end->Eval(build[i]);
    if (s.is_null() || e.is_null()) continue;
    intervals.push_back({s.AsDouble(), e.AsDouble(), i});
  }
  IntervalTree tree(std::move(intervals));
  ctx.metrics().Add("rangejoin.build_rows", static_cast<int64_t>(build.size()));

  bool interval_on_left = interval_on_left_;
  RowDataset stream = point_side->Execute(ctx);
  return stream.MapPartitions(ctx, [&](size_t, const RowPartition& part) {
    auto out = std::make_shared<RowPartition>();
    std::vector<size_t> matches;
    size_t cancel_check = 0;
    for (const Row& row : part.rows) {
      ctx.CheckCancelledEvery(&cancel_check);
      Value p = bound_point->Eval(row);
      if (p.is_null()) continue;
      matches.clear();
      tree.Query(p.AsDouble(), &matches);
      for (size_t idx : matches) {
        Row joined = interval_on_left ? Row::Concat(build[idx], row)
                                      : Row::Concat(row, build[idx]);
        if (bound_residual && !EvalPredicate(*bound_residual, joined)) continue;
        out->rows.push_back(std::move(joined));
      }
    }
    return out;
  });
}

std::string IntervalJoinExec::Describe() const {
  std::string s = "IntervalJoin interval(" + start_->ToString() + ", " +
                  end_->ToString() + ") contains " + point_->ToString();
  if (residual_) s += " residual: " + residual_->ToString();
  return s;
}

}  // namespace ssql
