#ifndef SSQL_EXEC_JOIN_EXEC_H_
#define SSQL_EXEC_JOIN_EXEC_H_

#include <memory>
#include <vector>

#include "catalyst/plan/logical_plan.h"
#include "exec/physical_plan.h"

namespace ssql {

/// Shared shape of the equi-join operators: key expressions per side plus
/// an optional residual (non-equi) condition evaluated on the joined row.
class JoinExecBase : public PhysicalPlan {
 public:
  JoinExecBase(PhysPtr left, PhysPtr right, ExprVector left_keys,
               ExprVector right_keys, JoinType join_type, ExprPtr residual);

  std::vector<PhysPtr> Children() const override { return {left_, right_}; }
  AttributeVector Output() const override;
  std::string Describe() const override;

 protected:
  /// Width of a null-extended row for the non-matching side.
  size_t LeftWidth() const { return left_->Output().size(); }
  size_t RightWidth() const { return right_->Output().size(); }

  PhysPtr left_;
  PhysPtr right_;
  ExprVector left_keys_;   // reference left output
  ExprVector right_keys_;  // reference right output
  JoinType join_type_;
  ExprPtr residual_;  // references joined output; may be null
};

/// Broadcast hash join (Section 4.3.3): the build side — estimated small by
/// the cost model — is collected once ("broadcast") and hashed; each
/// streamed partition probes it without any shuffle. Supports Inner,
/// LeftOuter and LeftSemi with the right side as build.
class BroadcastHashJoinExec : public JoinExecBase {
 public:
  using JoinExecBase::JoinExecBase;
  std::string NodeName() const override { return "BroadcastHashJoin"; }
  RowDataset ExecuteImpl(QueryContext& ctx) const override;

  /// Batched probe: the streamed side flows in as batches (probe keys
  /// evaluate as whole columns), matches emit into output batches. The
  /// build side is still collected as rows — it is small by construction.
  bool SupportsBatches() const override { return true; }
  /// The build side always collects as rows (index 1); only the streamed
  /// probe side (index 0) flows in as batches.
  bool PullsChildBatched(size_t child_index) const override {
    return child_index == 0;
  }

 protected:
  BatchDataset ExecuteBatchesImpl(QueryContext& ctx) const override;
  /// The batched probe pays when the streamed side is natively columnar:
  /// keys evaluate as whole columns and non-matching probe rows are never
  /// boxed. Over a row-native stream the pack outweighs that.
  bool PreferBatchExecution() const override {
    return left_->BatchesAreNative();
  }
};

/// Shuffle hash join: both sides are hash-partitioned by key, then each
/// pair of co-located partitions is hash-joined. Supports all join types.
class ShuffleHashJoinExec : public JoinExecBase {
 public:
  using JoinExecBase::JoinExecBase;
  std::string NodeName() const override { return "ShuffleHashJoin"; }
  RowDataset ExecuteImpl(QueryContext& ctx) const override;
};

/// Sort-merge join: both sides shuffled by key, sorted per partition, and
/// merged. Inner joins only; the planner falls back to shuffle hash for
/// other types.
class SortMergeJoinExec : public JoinExecBase {
 public:
  using JoinExecBase::JoinExecBase;
  std::string NodeName() const override { return "SortMergeJoin"; }
  RowDataset ExecuteImpl(QueryContext& ctx) const override;
};

/// Nested loop join for non-equi conditions and cross joins. The right
/// side is collected and every streamed row is tested against it.
class NestedLoopJoinExec : public PhysicalPlan {
 public:
  NestedLoopJoinExec(PhysPtr left, PhysPtr right, JoinType join_type,
                     ExprPtr condition);

  std::string NodeName() const override { return "NestedLoopJoin"; }
  std::vector<PhysPtr> Children() const override { return {left_, right_}; }
  AttributeVector Output() const override;
  RowDataset ExecuteImpl(QueryContext& ctx) const override;
  std::string Describe() const override;

 private:
  PhysPtr left_;
  PhysPtr right_;
  JoinType join_type_;
  ExprPtr condition_;  // references joined output; may be null
};

}  // namespace ssql

#endif  // SSQL_EXEC_JOIN_EXEC_H_
