#ifndef SSQL_EXEC_INTERVAL_JOIN_EXEC_H_
#define SSQL_EXEC_INTERVAL_JOIN_EXEC_H_

#include <memory>
#include <vector>

#include "catalyst/plan/logical_plan.h"
#include "exec/physical_plan.h"

namespace ssql {

/// The genomics range join of Section 7.2 (ADAM): inequality-predicate
/// joins of the shape
///
///   a.start < b.point AND b.point < a.end
///
/// "would be executed by many systems using an inefficient algorithm such
/// as a nested loop join. In contrast, a specialized system could compute
/// the answer to this join using an interval tree." The planner rule
/// (about 100 lines in the paper's retelling) detects the pattern in an
/// inner join condition and plans this operator instead of the nested
/// loop; remaining conjuncts become the residual.
///
/// `interval_on_left` says which side supplies the (start, end) interval;
/// the other side supplies the probe point. Strict inequalities.
class IntervalJoinExec : public PhysicalPlan {
 public:
  IntervalJoinExec(PhysPtr left, PhysPtr right, bool interval_on_left,
                   ExprPtr start, ExprPtr end, ExprPtr point, ExprPtr residual);

  std::string NodeName() const override { return "IntervalJoin"; }
  std::vector<PhysPtr> Children() const override { return {left_, right_}; }
  AttributeVector Output() const override;
  RowDataset ExecuteImpl(QueryContext& ctx) const override;
  std::string Describe() const override;

 private:
  PhysPtr left_;
  PhysPtr right_;
  bool interval_on_left_;
  ExprPtr start_;  // references the interval side's output
  ExprPtr end_;
  ExprPtr point_;     // references the point side's output
  ExprPtr residual_;  // references the joined output; may be null
};

/// A static interval tree over [start, end) pairs keyed by double; built
/// once from the collected build side, queried per probe row. Exposed for
/// unit tests and the range-join ablation bench.
class IntervalTree {
 public:
  struct Interval {
    double start;
    double end;
    size_t payload;
  };

  /// Builds in O(n log n); the tree is immutable afterwards.
  explicit IntervalTree(std::vector<Interval> intervals);

  /// Appends the payloads of all intervals with start < p && p < end.
  void Query(double p, std::vector<size_t>* out) const;

  size_t size() const { return nodes_.size(); }

 private:
  struct Node {
    Interval interval;
    double max_end;
    int left = -1;
    int right = -1;
  };
  int Build(std::vector<Interval>& sorted, int lo, int hi);
  void QueryNode(int node, double p, std::vector<size_t>* out) const;

  std::vector<Node> nodes_;
  int root_ = -1;
};

}  // namespace ssql

#endif  // SSQL_EXEC_INTERVAL_JOIN_EXEC_H_
