#include "exec/join_exec.h"

#include <algorithm>
#include <functional>
#include <optional>
#include <unordered_map>

#include "catalyst/codegen/compiled_expression.h"
#include "exec/exchange_exec.h"
#include "util/spill_file.h"

namespace ssql {

namespace {

/// Join key: evaluated key columns of one row. Null components make the
/// key non-joinable (SQL equi-join semantics).
struct JoinKey {
  std::vector<Value> values;
  bool has_null = false;

  bool operator==(const JoinKey& other) const {
    if (values.size() != other.values.size()) return false;
    for (size_t i = 0; i < values.size(); ++i) {
      if (values[i].Compare(other.values[i]) != 0) return false;
    }
    return true;
  }
};

struct JoinKeyHash {
  size_t operator()(const JoinKey& k) const {
    uint64_t h = 1469598103934665603ULL;
    for (const auto& v : k.values) h = h * 1099511628211ULL + v.Hash();
    return static_cast<size_t>(h);
  }
};

JoinKey EvalKey(const Row& row, const ExprVector& bound_keys) {
  JoinKey key;
  key.values.reserve(bound_keys.size());
  for (const auto& k : bound_keys) {
    Value v = k->Eval(row);
    key.has_null = key.has_null || v.is_null();
    key.values.push_back(std::move(v));
  }
  return key;
}

Row NullExtendLeft(size_t left_width, const Row& right) {
  Row out;
  out.Reserve(left_width + right.size());
  for (size_t i = 0; i < left_width; ++i) out.Append(Value::Null());
  for (size_t i = 0; i < right.size(); ++i) out.Append(right.Get(i));
  return out;
}

Row NullExtendRight(const Row& left, size_t right_width) {
  Row out;
  out.Reserve(left.size() + right_width);
  for (size_t i = 0; i < left.size(); ++i) out.Append(left.Get(i));
  for (size_t i = 0; i < right_width; ++i) out.Append(Value::Null());
  return out;
}

using BuildMap =
    std::unordered_map<JoinKey, std::vector<size_t>, JoinKeyHash>;

BuildMap BuildHashTable(const std::vector<Row>& rows,
                        const ExprVector& bound_keys) {
  BuildMap map;
  map.reserve(rows.size());
  for (size_t i = 0; i < rows.size(); ++i) {
    JoinKey key = EvalKey(rows[i], bound_keys);
    if (key.has_null) continue;
    map[std::move(key)].push_back(i);
  }
  return map;
}

/// Hash-table node + index-vector overhead per build row beyond the row
/// payload, used when charging a build side against the memory budget.
constexpr int64_t kJoinEntryOverhead = 64;

/// Buckets a Grace-partitioned join scatters each side into.
constexpr size_t kJoinSpillFanout = 16;

int64_t EstimateBuildBytes(const std::vector<Row>& rows) {
  int64_t bytes = 0;
  for (const Row& r : rows) bytes += EstimateRowBytes(r) + kJoinEntryOverhead;
  return bytes;
}

}  // namespace

JoinExecBase::JoinExecBase(PhysPtr left, PhysPtr right, ExprVector left_keys,
                           ExprVector right_keys, JoinType join_type,
                           ExprPtr residual)
    : left_(std::move(left)),
      right_(std::move(right)),
      left_keys_(std::move(left_keys)),
      right_keys_(std::move(right_keys)),
      join_type_(join_type),
      residual_(std::move(residual)) {}

AttributeVector JoinExecBase::Output() const {
  AttributeVector out;
  auto left_out = left_->Output();
  auto right_out = right_->Output();
  bool left_nullable = join_type_ == JoinType::kRightOuter ||
                       join_type_ == JoinType::kFullOuter;
  bool right_nullable = join_type_ == JoinType::kLeftOuter ||
                        join_type_ == JoinType::kFullOuter;
  for (const auto& a : left_out) {
    out.push_back(left_nullable ? a->WithNullability(true) : a);
  }
  if (join_type_ != JoinType::kLeftSemi && join_type_ != JoinType::kLeftAnti) {
    for (const auto& a : right_out) {
      out.push_back(right_nullable ? a->WithNullability(true) : a);
    }
  }
  return out;
}

std::string JoinExecBase::Describe() const {
  std::string s = NodeName() + " " + JoinTypeName(join_type_) + " keys: (";
  for (size_t i = 0; i < left_keys_.size(); ++i) {
    if (i > 0) s += ", ";
    s += left_keys_[i]->ToString() + " = " + right_keys_[i]->ToString();
  }
  s += ")";
  if (residual_) s += " residual: " + residual_->ToString();
  return s;
}

RowDataset BroadcastHashJoinExec::ExecuteImpl(QueryContext& ctx) const {
  AttributeVector left_out = left_->Output();
  AttributeVector right_out = right_->Output();
  AttributeVector joined_out = left_out;
  joined_out.insert(joined_out.end(), right_out.begin(), right_out.end());

  ExprVector bound_left, bound_right;
  for (const auto& k : left_keys_) bound_left.push_back(BindReferences(k, left_out));
  for (const auto& k : right_keys_) {
    bound_right.push_back(BindReferences(k, right_out));
  }
  ExprPtr bound_residual =
      residual_ ? BindReferences(residual_, joined_out) : nullptr;

  // Broadcast: collect and hash the build side once. A broadcast build
  // cannot spill (every probe task needs the whole table), so going over
  // budget is a hard error; the planner avoids this by capping the
  // broadcast threshold at the memory limit.
  std::vector<Row> build = right_->Execute(ctx).Collect();
  ctx.profile().Add(nullptr, ProfileCounter::kBroadcastRows,
                    static_cast<int64_t>(build.size()));
  ctx.profile().Add(nullptr, ProfileCounter::kBuildRows,
                    static_cast<int64_t>(build.size()));
  MemoryReservation reservation = ctx.memory().CreateReservation();
  int64_t build_bytes = EstimateBuildBytes(build);
  if (!reservation.EnsureReserved(build_bytes)) {
    throw ExecutionError(
        "query memory limit of " + std::to_string(ctx.memory().limit_bytes()) +
        " bytes exceeded by join.broadcast build side (~" +
        std::to_string(build_bytes) +
        " bytes); broadcast joins cannot spill — raise "
        "query_memory_limit_bytes or lower broadcast_threshold_bytes so the "
        "planner picks a shuffle join");
  }
  BuildMap table = BuildHashTable(build, bound_right);

  RowDataset stream = left_->Execute(ctx);
  ctx.profile().Add(nullptr, ProfileCounter::kProbeRows,
                    static_cast<int64_t>(stream.TotalRows()));
  bool semi = join_type_ == JoinType::kLeftSemi;
  bool anti = join_type_ == JoinType::kLeftAnti;
  bool left_outer = join_type_ == JoinType::kLeftOuter;
  size_t right_width = right_out.size();

  return stream.MapPartitions(ctx, [&](size_t, const RowPartition& part) {
    auto out = std::make_shared<RowPartition>();
    size_t cancel_check = 0;
    for (const Row& row : part.rows) {
      ctx.CheckCancelledEvery(&cancel_check);
      JoinKey key = EvalKey(row, bound_left);
      const std::vector<size_t>* matches = nullptr;
      if (!key.has_null) {
        auto it = table.find(key);
        if (it != table.end()) matches = &it->second;
      }
      bool matched = false;
      if (matches != nullptr) {
        for (size_t idx : *matches) {
          Row joined = Row::Concat(row, build[idx]);
          if (bound_residual && !EvalPredicate(*bound_residual, joined)) {
            continue;
          }
          matched = true;
          if (semi || anti) break;
          out->rows.push_back(std::move(joined));
        }
      }
      if (semi && matched) out->rows.push_back(row);
      if (anti && !matched) out->rows.push_back(row);
      if (left_outer && !matched) {
        out->rows.push_back(NullExtendRight(row, right_width));
      }
    }
    return out;
  }, "join.probe");
}

BatchDataset BroadcastHashJoinExec::ExecuteBatchesImpl(QueryContext& ctx) const {
  AttributeVector left_out = left_->Output();
  AttributeVector right_out = right_->Output();
  AttributeVector joined_out = left_out;
  joined_out.insert(joined_out.end(), right_out.begin(), right_out.end());

  ExprVector bound_left, bound_right;
  for (const auto& k : left_keys_) {
    bound_left.push_back(BindReferences(k, left_out));
  }
  for (const auto& k : right_keys_) {
    bound_right.push_back(BindReferences(k, right_out));
  }
  ExprPtr bound_residual =
      residual_ ? BindReferences(residual_, joined_out) : nullptr;

  // Build side: collected and hashed as rows, exactly like the row probe —
  // it is small by the planner's construction, so columnarizing it buys
  // nothing. Same no-spill contract.
  std::vector<Row> build = right_->Execute(ctx).Collect();
  ctx.profile().Add(nullptr, ProfileCounter::kBroadcastRows,
                    static_cast<int64_t>(build.size()));
  ctx.profile().Add(nullptr, ProfileCounter::kBuildRows,
                    static_cast<int64_t>(build.size()));
  MemoryReservation reservation = ctx.memory().CreateReservation();
  int64_t build_bytes = EstimateBuildBytes(build);
  if (!reservation.EnsureReserved(build_bytes)) {
    throw ExecutionError(
        "query memory limit of " + std::to_string(ctx.memory().limit_bytes()) +
        " bytes exceeded by join.broadcast build side (~" +
        std::to_string(build_bytes) +
        " bytes); broadcast joins cannot spill — raise "
        "query_memory_limit_bytes or lower broadcast_threshold_bytes so the "
        "planner picks a shuffle join");
  }
  BuildMap table = BuildHashTable(build, bound_right);

  // When every probe key compiles, keys evaluate as whole columns per
  // batch; rows box lazily, so non-matching inner rows never box at all.
  std::vector<std::optional<CompiledExpression>> key_programs;
  bool keys_compiled = ctx.config().codegen_enabled;
  if (keys_compiled) {
    for (const auto& bk : bound_left) {
      auto prog = CompiledExpression::Compile(bk);
      if (!prog) {
        keys_compiled = false;
        break;
      }
      key_programs.push_back(std::move(prog));
    }
  }

  BatchDataset stream = left_->ExecuteBatches(ctx);
  ctx.profile().Add(nullptr, ProfileCounter::kProbeRows,
                    static_cast<int64_t>(stream.TotalRows()));
  const bool semi = join_type_ == JoinType::kLeftSemi;
  const bool anti = join_type_ == JoinType::kLeftAnti;
  const bool left_outer = join_type_ == JoinType::kLeftOuter;
  const size_t right_width = right_out.size();
  const std::vector<DataTypePtr> out_types = OutputTypes();
  const size_t batch_size = ctx.config().batch_size;

  return stream.MapPartitions(ctx, [&](size_t, const BatchPartition& part) {
    auto out = std::make_shared<BatchPartition>();
    std::shared_ptr<RowBatch> builder;
    size_t builder_rows = 0;
    auto emit = [&](const Row& row) {
      if (!builder) {
        builder = std::make_shared<RowBatch>(out_types);
        builder_rows = 0;
      }
      builder->AppendRow(row);
      if (++builder_rows >= batch_size) {
        out->batches.push_back(std::move(builder));
        builder.reset();
      }
    };
    std::vector<std::optional<CompiledExpression::VectorEvaluator>> key_evals(
        key_programs.size());
    if (keys_compiled) {
      for (size_t j = 0; j < key_programs.size(); ++j) {
        key_evals[j].emplace(key_programs[j]->NewVectorEvaluator());
      }
    }
    size_t cancel_rows = 0;
    for (const RowBatchPtr& batch : part.batches) {
      const size_t n = batch->ActiveRows();
      if (n == 0) continue;
      ctx.CheckCancelledEveryRows(&cancel_rows, n);
      std::vector<ColumnVector> key_cols;
      if (keys_compiled) {
        key_cols.reserve(key_evals.size());
        for (size_t j = 0; j < key_evals.size(); ++j) {
          ColumnVector col(key_programs[j]->result_type());
          col.Reserve(n);
          key_evals[j]->EvaluateColumn(*batch, &col);
          key_cols.push_back(std::move(col));
        }
      }
      for (size_t k = 0; k < n; ++k) {
        const size_t phys = batch->ActiveIndex(k);
        JoinKey key;
        std::optional<Row> boxed;  // only rows that produce output box
        if (keys_compiled) {
          key.values.reserve(key_cols.size());
          for (const auto& col : key_cols) {
            Value v = col.GetValue(k);
            key.has_null = key.has_null || v.is_null();
            key.values.push_back(std::move(v));
          }
        } else {
          boxed = batch->BoxRow(phys);
          key = EvalKey(*boxed, bound_left);
        }
        const std::vector<size_t>* matches = nullptr;
        if (!key.has_null) {
          auto it = table.find(key);
          if (it != table.end()) matches = &it->second;
        }
        bool matched = false;
        if (matches != nullptr) {
          if (!boxed) boxed = batch->BoxRow(phys);
          for (size_t idx : *matches) {
            Row joined = Row::Concat(*boxed, build[idx]);
            if (bound_residual && !EvalPredicate(*bound_residual, joined)) {
              continue;
            }
            matched = true;
            if (semi || anti) break;
            emit(joined);
          }
        }
        if ((semi && matched) || (anti && !matched)) {
          if (!boxed) boxed = batch->BoxRow(phys);
          emit(*boxed);
        }
        if (left_outer && !matched) {
          if (!boxed) boxed = batch->BoxRow(phys);
          emit(NullExtendRight(*boxed, right_width));
        }
      }
    }
    if (builder && builder_rows > 0) out->batches.push_back(std::move(builder));
    return out;
  }, "join.probe");
}

RowDataset ShuffleHashJoinExec::ExecuteImpl(QueryContext& ctx) const {
  AttributeVector left_out = left_->Output();
  AttributeVector right_out = right_->Output();
  AttributeVector joined_out = left_out;
  joined_out.insert(joined_out.end(), right_out.begin(), right_out.end());

  ExprVector bound_left, bound_right;
  for (const auto& k : left_keys_) bound_left.push_back(BindReferences(k, left_out));
  for (const auto& k : right_keys_) {
    bound_right.push_back(BindReferences(k, right_out));
  }
  ExprPtr bound_residual =
      residual_ ? BindReferences(residual_, joined_out) : nullptr;

  size_t parts = ctx.config().default_parallelism;
  RowDataset left_shuffled =
      left_->Execute(ctx).ShuffleByHash(ctx, parts, [&](const Row& row) {
        return HashRowKeys(row, bound_left);
      });
  RowDataset right_shuffled =
      right_->Execute(ctx).ShuffleByHash(ctx, parts, [&](const Row& row) {
        return HashRowKeys(row, bound_right);
      });

  bool semi = join_type_ == JoinType::kLeftSemi;
  bool anti = join_type_ == JoinType::kLeftAnti;
  bool left_outer = join_type_ == JoinType::kLeftOuter ||
                    join_type_ == JoinType::kFullOuter;
  bool right_outer = join_type_ == JoinType::kRightOuter ||
                     join_type_ == JoinType::kFullOuter;
  size_t left_width = left_out.size();
  size_t right_width = right_out.size();

  return left_shuffled.MapPartitions(ctx, [&](size_t p, const RowPartition&
                                                            left_part) {
    const RowPartition& right_part = *right_shuffled.partition(p);
    auto out = std::make_shared<RowPartition>();
    size_t cancel_check = 0;
    ctx.profile().Add(nullptr, ProfileCounter::kBuildRows,
                      static_cast<int64_t>(right_part.rows.size()));
    ctx.profile().Add(nullptr, ProfileCounter::kProbeRows,
                      static_cast<int64_t>(left_part.rows.size()));

    // One hash-join pass: hash `build`, stream probe rows from `next_probe`.
    // Correct per Grace bucket because equal keys always share a bucket, and
    // every input row lands in exactly one bucket (so each unmatched row is
    // null-extended/emitted exactly once across passes).
    auto join_pass = [&](const std::vector<Row>& build,
                         const std::function<const Row*()>& next_probe) {
      BuildMap table = BuildHashTable(build, bound_right);
      std::vector<uint8_t> right_matched(build.size(), 0);
      while (const Row* probe = next_probe()) {
        ctx.CheckCancelledEvery(&cancel_check);
        const Row& row = *probe;
        JoinKey key = EvalKey(row, bound_left);
        const std::vector<size_t>* matches = nullptr;
        if (!key.has_null) {
          auto it = table.find(key);
          if (it != table.end()) matches = &it->second;
        }
        bool matched = false;
        if (matches != nullptr) {
          for (size_t idx : *matches) {
            Row joined = Row::Concat(row, build[idx]);
            if (bound_residual && !EvalPredicate(*bound_residual, joined)) {
              continue;
            }
            matched = true;
            right_matched[idx] = 1;
            if (semi || anti) break;
            out->rows.push_back(std::move(joined));
          }
        }
        if (semi && matched) out->rows.push_back(row);
        if (anti && !matched) out->rows.push_back(row);
        if (left_outer && !matched && !semi && !anti) {
          out->rows.push_back(NullExtendRight(row, right_width));
        }
      }
      if (right_outer) {
        for (size_t i = 0; i < build.size(); ++i) {
          if (right_matched[i] == 0) {
            out->rows.push_back(NullExtendLeft(left_width, build[i]));
          }
        }
      }
    };

    MemoryReservation reservation = ctx.memory().CreateReservation();
    if (reservation.EnsureReserved(EstimateBuildBytes(right_part.rows))) {
      size_t i = 0;
      join_pass(right_part.rows, [&]() -> const Row* {
        return i < left_part.rows.size() ? &left_part.rows[i++] : nullptr;
      });
      return out;
    }
    if (!ctx.memory().spill_enabled()) {
      throw ExecutionError(ctx.memory().OverBudgetMessage("join.build"));
    }
    reservation.Release();

    // Grace fallback: scatter both sides to disk by mixed key hash, then
    // join bucket by bucket with a 1/kJoinSpillFanout-sized build table.
    // Null-key rows scatter by their (deterministic) null hash and never
    // match, which preserves outer/anti semantics within their bucket.
    struct BucketPair {
      std::optional<SpillFile> build, probe;
    };
    std::vector<BucketPair> buckets(kJoinSpillFanout);
    int64_t wrote = 0;
    size_t files_created = 0;
    auto scatter = [&](const std::vector<Row>& rows, const ExprVector& keys,
                       bool build_side) {
      for (const Row& row : rows) {
        ctx.CheckCancelledEvery(&cancel_check);
        size_t b =
            MixHash64(JoinKeyHash{}(EvalKey(row, keys))) % kJoinSpillFanout;
        auto& file = build_side ? buckets[b].build : buckets[b].probe;
        if (!file) {
          file.emplace(
              ctx.MakeSpillFile(build_side ? "join-build" : "join-probe"));
          ++files_created;
        }
        wrote += file->Append(row);
      }
    };
    scatter(right_part.rows, bound_right, /*build_side=*/true);
    scatter(left_part.rows, bound_left, /*build_side=*/false);
    if (files_created > 0) {
      ctx.profile().Add(nullptr, ProfileCounter::kSpillFiles,
                        static_cast<int64_t>(files_created));
    }
    if (wrote > 0) {
      ctx.profile().Add(nullptr, ProfileCounter::kSpillBytes, wrote);
      ctx.engine()
          .registry()
          .Histogram("ssql_spill_write_bytes",
                     "Bytes written per spill event")
          .Record(wrote);
    }

    for (auto& bucket : buckets) {
      std::vector<Row> build;
      if (bucket.build) {
        bucket.build->FinishWrites();
        build.reserve(bucket.build->row_count());
        SpillFile::Reader reader(*bucket.build);
        Row row;
        while (reader.Next(&row)) {
          ctx.CheckCancelledEvery(&cancel_check);
          build.push_back(std::move(row));
        }
      }
      // A bucket that still exceeds the budget is joined anyway
      // (single-level recursion); the overshoot is bounded by the fanout.
      if (!reservation.EnsureReserved(EstimateBuildBytes(build))) {
        reservation.ForceGrow(EstimateBuildBytes(build));
      }
      if (bucket.probe) {
        bucket.probe->FinishWrites();
        SpillFile::Reader reader(*bucket.probe);
        Row scratch;
        join_pass(build, [&]() -> const Row* {
          return reader.Next(&scratch) ? &scratch : nullptr;
        });
      } else {
        join_pass(build, []() -> const Row* { return nullptr; });
      }
      reservation.Release();
      bucket.build.reset();  // delete each pair as soon as it is joined
      bucket.probe.reset();
    }
    return out;
  }, "join.probe");
}

RowDataset SortMergeJoinExec::ExecuteImpl(QueryContext& ctx) const {
  AttributeVector left_out = left_->Output();
  AttributeVector right_out = right_->Output();
  AttributeVector joined_out = left_out;
  joined_out.insert(joined_out.end(), right_out.begin(), right_out.end());

  ExprVector bound_left, bound_right;
  for (const auto& k : left_keys_) bound_left.push_back(BindReferences(k, left_out));
  for (const auto& k : right_keys_) {
    bound_right.push_back(BindReferences(k, right_out));
  }
  ExprPtr bound_residual =
      residual_ ? BindReferences(residual_, joined_out) : nullptr;

  size_t parts = ctx.config().default_parallelism;
  RowDataset left_shuffled =
      left_->Execute(ctx).ShuffleByHash(ctx, parts, [&](const Row& row) {
        return HashRowKeys(row, bound_left);
      });
  RowDataset right_shuffled =
      right_->Execute(ctx).ShuffleByHash(ctx, parts, [&](const Row& row) {
        return HashRowKeys(row, bound_right);
      });

  auto key_less = [](const JoinKey& a, const JoinKey& b) {
    for (size_t i = 0; i < a.values.size(); ++i) {
      int c = a.values[i].Compare(b.values[i]);
      if (c != 0) return c < 0;
    }
    return false;
  };

  return left_shuffled.MapPartitions(ctx, [&](size_t p, const RowPartition&
                                                            left_part) {
    const RowPartition& right_part = *right_shuffled.partition(p);
    auto out = std::make_shared<RowPartition>();
    ctx.profile().Add(nullptr, ProfileCounter::kBuildRows,
                      static_cast<int64_t>(right_part.rows.size()));
    ctx.profile().Add(nullptr, ProfileCounter::kProbeRows,
                      static_cast<int64_t>(left_part.rows.size()));

    // Sort both sides by key (null keys dropped: inner join).
    struct Keyed {
      JoinKey key;
      const Row* row;
    };
    std::vector<Keyed> ls, rs;
    ls.reserve(left_part.rows.size());
    rs.reserve(right_part.rows.size());
    for (const Row& row : left_part.rows) {
      JoinKey k = EvalKey(row, bound_left);
      if (!k.has_null) ls.push_back({std::move(k), &row});
    }
    for (const Row& row : right_part.rows) {
      JoinKey k = EvalKey(row, bound_right);
      if (!k.has_null) rs.push_back({std::move(k), &row});
    }
    auto cmp = [&](const Keyed& a, const Keyed& b) { return key_less(a.key, b.key); };
    std::sort(ls.begin(), ls.end(), cmp);
    std::sort(rs.begin(), rs.end(), cmp);

    size_t i = 0, j = 0;
    size_t cancel_check = 0;
    while (i < ls.size() && j < rs.size()) {
      ctx.CheckCancelledEvery(&cancel_check);
      if (key_less(ls[i].key, rs[j].key)) {
        ++i;
      } else if (key_less(rs[j].key, ls[i].key)) {
        ++j;
      } else {
        // Equal-key runs on both sides.
        size_t i_end = i;
        while (i_end < ls.size() && !key_less(ls[i].key, ls[i_end].key) &&
               !key_less(ls[i_end].key, ls[i].key)) {
          ++i_end;
        }
        size_t j_end = j;
        while (j_end < rs.size() && !key_less(rs[j].key, rs[j_end].key) &&
               !key_less(rs[j_end].key, rs[j].key)) {
          ++j_end;
        }
        for (size_t a = i; a < i_end; ++a) {
          for (size_t b = j; b < j_end; ++b) {
            Row joined = Row::Concat(*ls[a].row, *rs[b].row);
            if (bound_residual && !EvalPredicate(*bound_residual, joined)) {
              continue;
            }
            out->rows.push_back(std::move(joined));
          }
        }
        i = i_end;
        j = j_end;
      }
    }
    return out;
  }, "join.merge");
}

NestedLoopJoinExec::NestedLoopJoinExec(PhysPtr left, PhysPtr right,
                                       JoinType join_type, ExprPtr condition)
    : left_(std::move(left)),
      right_(std::move(right)),
      join_type_(join_type),
      condition_(std::move(condition)) {}

AttributeVector NestedLoopJoinExec::Output() const {
  AttributeVector out = left_->Output();
  if (join_type_ != JoinType::kLeftSemi && join_type_ != JoinType::kLeftAnti) {
    auto right_out = right_->Output();
    bool right_nullable = join_type_ == JoinType::kLeftOuter;
    for (const auto& a : right_out) {
      out.push_back(right_nullable ? a->WithNullability(true) : a);
    }
  }
  return out;
}

RowDataset NestedLoopJoinExec::ExecuteImpl(QueryContext& ctx) const {
  if (join_type_ == JoinType::kRightOuter || join_type_ == JoinType::kFullOuter) {
    throw ExecutionError(
        "NestedLoopJoin does not support right/full outer joins");
  }
  AttributeVector left_out = left_->Output();
  AttributeVector right_out = right_->Output();
  AttributeVector joined_out = left_out;
  joined_out.insert(joined_out.end(), right_out.begin(), right_out.end());
  ExprPtr bound =
      condition_ ? BindReferences(condition_, joined_out) : nullptr;

  std::vector<Row> build = right_->Execute(ctx).Collect();
  ctx.profile().Add(nullptr, ProfileCounter::kBroadcastRows,
                    static_cast<int64_t>(build.size()));
  ctx.profile().Add(nullptr, ProfileCounter::kBuildRows,
                    static_cast<int64_t>(build.size()));
  MemoryReservation reservation = ctx.memory().CreateReservation();
  int64_t build_bytes = EstimateBuildBytes(build);
  if (!reservation.EnsureReserved(build_bytes)) {
    throw ExecutionError(
        "query memory limit of " + std::to_string(ctx.memory().limit_bytes()) +
        " bytes exceeded by join.nested_loop build side (~" +
        std::to_string(build_bytes) +
        " bytes); nested-loop builds cannot spill — raise "
        "query_memory_limit_bytes");
  }

  RowDataset stream = left_->Execute(ctx);
  ctx.profile().Add(nullptr, ProfileCounter::kProbeRows,
                    static_cast<int64_t>(stream.TotalRows()));
  bool semi = join_type_ == JoinType::kLeftSemi;
  bool anti = join_type_ == JoinType::kLeftAnti;
  bool left_outer = join_type_ == JoinType::kLeftOuter;
  size_t right_width = right_out.size();

  return stream.MapPartitions(ctx, [&](size_t, const RowPartition& part) {
    auto out = std::make_shared<RowPartition>();
    size_t cancel_check = 0;
    for (const Row& row : part.rows) {
      bool matched = false;
      for (const Row& other : build) {
        ctx.CheckCancelledEvery(&cancel_check);
        Row joined = Row::Concat(row, other);
        if (bound && !EvalPredicate(*bound, joined)) continue;
        matched = true;
        if (semi || anti) break;
        out->rows.push_back(std::move(joined));
      }
      if (semi && matched) out->rows.push_back(row);
      if (anti && !matched) out->rows.push_back(row);
      if (left_outer && !matched) {
        out->rows.push_back(NullExtendRight(row, right_width));
      }
    }
    return out;
  }, "join.probe");
}

std::string NestedLoopJoinExec::Describe() const {
  std::string s = "NestedLoopJoin " + JoinTypeName(join_type_);
  if (condition_) s += " condition: " + condition_->ToString();
  return s;
}

}  // namespace ssql
