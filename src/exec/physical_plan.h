#ifndef SSQL_EXEC_PHYSICAL_PLAN_H_
#define SSQL_EXEC_PHYSICAL_PLAN_H_

#include <memory>
#include <string>
#include <vector>

#include "catalyst/expr/attribute.h"
#include "catalyst/planner/cost_model.h"
#include "columnar/batch_dataset.h"
#include "engine/dataset.h"
#include "engine/query_context.h"

namespace ssql {

class PhysicalPlan;
using PhysPtr = std::shared_ptr<const PhysicalPlan>;

/// The planner's cardinality guess for one physical operator, stamped on
/// the node at planning time so execution can compare it against the rows
/// actually produced (rows < 0 = no estimate).
struct CardinalityEstimate {
  int64_t rows = -1;
  EstimateSource source = EstimateSource::kUnknown;
};

/// Base class of physical operators (the third tree family of Section 4.3:
/// "physical operators that match the Spark execution engine"). Execute()
/// pulls the children's datasets and produces this operator's output; the
/// per-partition work runs on the engine's worker pool.
///
/// Operators come in two execution modes. Row mode moves one boxed Row at a
/// time (the original volcano engine). Batch mode moves RowBatches of
/// ColumnVectors with a selection vector; converted operators override
/// ExecuteBatchesImpl/SupportsBatches. The two modes compose freely: a
/// batch-demanding parent over a row-only child gets its rows packed
/// (batch.pack), a row-demanding parent over a batch-preferring child gets
/// the batches unpacked (batch.unpack) — so unconverted operators (sort,
/// exchange, interval join, online agg) keep working unchanged.
class PhysicalPlan : public std::enable_shared_from_this<PhysicalPlan> {
 public:
  virtual ~PhysicalPlan() = default;

  virtual std::string NodeName() const = 0;
  virtual std::vector<PhysPtr> Children() const = 0;

  /// Output attributes (positions define the produced row layout).
  virtual AttributeVector Output() const = 0;

  /// Runs the subtree to completion, wrapped in a profiling span: the
  /// operator's rows_out/batches and wall time are recorded on the query
  /// profile, stages/tasks/spills started while it runs attribute to it,
  /// and an exception closes the span with an error status before
  /// propagating. The actual work is ExecuteImpl() — or, when this operator
  /// prefers batch execution and the config enables it, ExecuteBatchesImpl()
  /// followed by the batch→row adapter.
  RowDataset Execute(QueryContext& ctx) const;

  /// Batch-demanding form of Execute(), same profiling contract: rows_out
  /// counts live rows (not batches), batches counts RowBatches produced.
  /// Row-only operators are adapted via the row→batch packer.
  BatchDataset ExecuteBatches(QueryContext& ctx) const;

  /// True when this operator has a native batched implementation
  /// (ExecuteBatchesImpl). Drives both runtime dispatch (with
  /// config.vectorized_enabled) and the planner's EXPLAIN stamp.
  virtual bool SupportsBatches() const { return false; }

  /// True when ExecuteBatches() yields batches with no row→batch pack
  /// anywhere underneath — the data is columnar at the source (cached
  /// columnar scan) and stays columnar through zero-copy/vector operators.
  /// Parents use this to decide whether extending the batched pipeline
  /// downward is profitable: over a row-native source, packing costs more
  /// than vectorized evaluation saves.
  virtual bool BatchesAreNative() const { return false; }

  /// The dispatch decision Execute()/ExecuteBatches() make at runtime,
  /// exposed for the planner's EXPLAIN stamp: an operator runs batched when
  /// it supports batches and either a batch-demanding parent pulls it or it
  /// prefers batch execution on its own.
  bool WouldRunBatched(bool parent_pulls_batches) const {
    return SupportsBatches() &&
           (parent_pulls_batches || PreferBatchExecution());
  }

  /// Whether a batched run of this operator pulls child `child_index` via
  /// ExecuteBatches(). Default: all children. The broadcast join overrides
  /// this — its build side is always collected as rows. Only consulted for
  /// the EXPLAIN stamp; the runtime simply calls the form it needs.
  virtual bool PullsChildBatched(size_t child_index) const {
    (void)child_index;
    return true;
  }

  /// One-line description for EXPLAIN.
  virtual std::string Describe() const { return NodeName(); }

  /// Planner-stamped cardinality estimate (see PhysicalPlanner); flows into
  /// the profile span so EXPLAIN ANALYZE / system.query_operators can show
  /// plan-vs-actual, and feeds the ssql_cardinality_misestimate histogram.
  const CardinalityEstimate& estimate() const { return estimate_; }
  void set_estimate(const CardinalityEstimate& est) { estimate_ = est; }

  /// Planner-stamped "this node runs batched" flag, rendered in the
  /// physical plan / EXPLAIN output (display-only; runtime dispatch
  /// re-checks SupportsBatches() against the query's config snapshot).
  bool runs_batched() const { return runs_batched_; }
  void set_runs_batched(bool batched) { runs_batched_ = batched; }

  /// Indented physical plan rendering.
  std::string TreeString() const;

  void Foreach(const std::function<void(const PhysicalPlan&)>& fn) const;

 protected:
  /// The operator's execution logic; subclasses override this instead of
  /// Execute() so every operator is instrumented uniformly. Children must
  /// be pulled with child->Execute(ctx) / child->ExecuteBatches(ctx) (the
  /// wrappers), never the Impl forms.
  virtual RowDataset ExecuteImpl(QueryContext& ctx) const = 0;

  /// Native batched execution logic for operators that SupportsBatches().
  /// The default adapts the row implementation by packing its partitions
  /// into batches of config.batch_size rows.
  virtual BatchDataset ExecuteBatchesImpl(QueryContext& ctx) const;

  /// Whether a row-demanding Execute() should still run the batched
  /// implementation and unpack at the top. Vectorized operators return true
  /// only when their input is natively columnar (BatchesAreNative() on the
  /// child): over a row-native source the row→batch pack at the boundary
  /// costs more than the vector kernels save, so the row path stays.
  virtual bool PreferBatchExecution() const { return false; }

  /// Row-layout types of Output(), for packing batches.
  std::vector<DataTypePtr> OutputTypes() const;

 private:
  void TreeStringInternal(int indent, std::string* out) const;

  CardinalityEstimate estimate_;
  bool runs_batched_ = false;
};

/// Pretty-prints an attribute list for Describe() implementations.
std::string FormatAttributes(const AttributeVector& attrs);

}  // namespace ssql

#endif  // SSQL_EXEC_PHYSICAL_PLAN_H_
