#ifndef SSQL_EXEC_PHYSICAL_PLAN_H_
#define SSQL_EXEC_PHYSICAL_PLAN_H_

#include <memory>
#include <string>
#include <vector>

#include "catalyst/expr/attribute.h"
#include "catalyst/planner/cost_model.h"
#include "engine/dataset.h"
#include "engine/query_context.h"

namespace ssql {

class PhysicalPlan;
using PhysPtr = std::shared_ptr<const PhysicalPlan>;

/// The planner's cardinality guess for one physical operator, stamped on
/// the node at planning time so execution can compare it against the rows
/// actually produced (rows < 0 = no estimate).
struct CardinalityEstimate {
  int64_t rows = -1;
  EstimateSource source = EstimateSource::kUnknown;
};

/// Base class of physical operators (the third tree family of Section 4.3:
/// "physical operators that match the Spark execution engine"). Execute()
/// pulls the children's datasets and produces this operator's output; the
/// per-partition work runs on the engine's worker pool.
class PhysicalPlan : public std::enable_shared_from_this<PhysicalPlan> {
 public:
  virtual ~PhysicalPlan() = default;

  virtual std::string NodeName() const = 0;
  virtual std::vector<PhysPtr> Children() const = 0;

  /// Output attributes (positions define the produced row layout).
  virtual AttributeVector Output() const = 0;

  /// Runs the subtree to completion, wrapped in a profiling span: the
  /// operator's rows_out/batches and wall time are recorded on the query
  /// profile, stages/tasks/spills started while it runs attribute to it,
  /// and an exception closes the span with an error status before
  /// propagating. The actual work is ExecuteImpl().
  RowDataset Execute(QueryContext& ctx) const;

  /// One-line description for EXPLAIN.
  virtual std::string Describe() const { return NodeName(); }

  /// Planner-stamped cardinality estimate (see PhysicalPlanner); flows into
  /// the profile span so EXPLAIN ANALYZE / system.query_operators can show
  /// plan-vs-actual, and feeds the ssql_cardinality_misestimate histogram.
  const CardinalityEstimate& estimate() const { return estimate_; }
  void set_estimate(const CardinalityEstimate& est) { estimate_ = est; }

  /// Indented physical plan rendering.
  std::string TreeString() const;

  void Foreach(const std::function<void(const PhysicalPlan&)>& fn) const;

 protected:
  /// The operator's execution logic; subclasses override this instead of
  /// Execute() so every operator is instrumented uniformly. Children must
  /// be pulled with child->Execute(ctx) (the wrapper), never ExecuteImpl.
  virtual RowDataset ExecuteImpl(QueryContext& ctx) const = 0;

 private:
  void TreeStringInternal(int indent, std::string* out) const;

  CardinalityEstimate estimate_;
};

/// Pretty-prints an attribute list for Describe() implementations.
std::string FormatAttributes(const AttributeVector& attrs);

}  // namespace ssql

#endif  // SSQL_EXEC_PHYSICAL_PLAN_H_
