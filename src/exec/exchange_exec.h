#ifndef SSQL_EXEC_EXCHANGE_EXEC_H_
#define SSQL_EXEC_EXCHANGE_EXEC_H_

#include <memory>
#include <vector>

#include "catalyst/expr/expression.h"
#include "exec/physical_plan.h"

namespace ssql {

/// Hash-partitions the child's output by key expressions — the shuffle
/// stage boundary of the mini-Spark engine.
class ExchangeExec : public PhysicalPlan {
 public:
  ExchangeExec(ExprVector keys, size_t num_partitions, PhysPtr child)
      : keys_(std::move(keys)),
        num_partitions_(num_partitions),
        child_(std::move(child)) {}

  std::string NodeName() const override { return "Exchange"; }
  std::vector<PhysPtr> Children() const override { return {child_}; }
  AttributeVector Output() const override { return child_->Output(); }
  RowDataset ExecuteImpl(QueryContext& ctx) const override;
  std::string Describe() const override;

 private:
  ExprVector keys_;  // unbound, reference child output
  size_t num_partitions_;
  PhysPtr child_;
};

/// Gathers the child's partitions into one (global sort/limit input).
class CoalesceExec : public PhysicalPlan {
 public:
  explicit CoalesceExec(PhysPtr child) : child_(std::move(child)) {}

  std::string NodeName() const override { return "Coalesce"; }
  std::vector<PhysPtr> Children() const override { return {child_}; }
  AttributeVector Output() const override { return child_->Output(); }
  RowDataset ExecuteImpl(QueryContext& ctx) const override;

 private:
  PhysPtr child_;
};

/// Hashes the key columns of a row (bound evaluators supplied by caller).
uint64_t HashRowKeys(const Row& row, const ExprVector& bound_keys);

}  // namespace ssql

#endif  // SSQL_EXEC_EXCHANGE_EXEC_H_
