#ifndef SSQL_EXEC_SCAN_EXEC_H_
#define SSQL_EXEC_SCAN_EXEC_H_

#include <memory>
#include <string>
#include <vector>

#include "catalyst/codegen/compiled_expression.h"
#include "catalyst/plan/logical_plan.h"
#include "columnar/columnar_cache.h"
#include "datasources/data_source.h"
#include "exec/physical_plan.h"

namespace ssql {

/// Scan of driver-local rows (LocalRelation).
class LocalTableScanExec : public PhysicalPlan {
 public:
  LocalTableScanExec(AttributeVector output,
                     std::shared_ptr<const std::vector<Row>> rows)
      : output_(std::move(output)), rows_(std::move(rows)) {}

  std::string NodeName() const override { return "LocalTableScan"; }
  std::vector<PhysPtr> Children() const override { return {}; }
  AttributeVector Output() const override { return output_; }
  RowDataset ExecuteImpl(QueryContext& ctx) const override;
  std::string Describe() const override {
    return "LocalTableScan " + FormatAttributes(output_) +
           " rows=" + std::to_string(rows_->size());
  }

 private:
  AttributeVector output_;
  std::shared_ptr<const std::vector<Row>> rows_;
};

/// Scan of an external data source with negotiated column pruning and
/// filter pushdown (Section 4.4.1). Picks the most capable interface the
/// source implements: CatalystScan > PrunedFilteredScan > PrunedScan >
/// TableScan; filters a source cannot evaluate exactly are re-applied here.
class DataSourceScanExec : public PhysicalPlan {
 public:
  DataSourceScanExec(std::shared_ptr<SourceRelation> source,
                     AttributeVector full_output,
                     std::vector<int> required_columns, ExprVector pushed_filters);

  std::string NodeName() const override { return "Scan"; }
  std::vector<PhysPtr> Children() const override { return {}; }
  AttributeVector Output() const override;
  RowDataset ExecuteImpl(QueryContext& ctx) const override;
  std::string Describe() const override;

  /// Native batched scan when the source implements the BatchedScan
  /// capability and every pushed filter translates to a FilterSpec (so the
  /// source evaluates them exactly — no row-at-a-time recheck needed).
  /// COUNT(*)-style scans (no required columns) stay row-based.
  bool SupportsBatches() const override;
  /// A BatchedScan source decodes straight into ColumnVectors: this is a
  /// root of the natively-columnar pipeline, like InMemoryColumnarScan.
  bool BatchesAreNative() const override { return SupportsBatches(); }

 protected:
  BatchDataset ExecuteBatchesImpl(QueryContext& ctx) const override;

 private:
  std::shared_ptr<SourceRelation> source_;
  AttributeVector full_output_;
  std::vector<int> required_columns_;
  ExprVector pushed_filters_;
};

/// A cached DataFrame in compressed columnar form, usable as a leaf in
/// later plans (Section 3.6). Logical side of the cache: the api layer
/// swaps this node in for the cached plan subtree.
class InMemoryRelation : public LogicalPlan {
 public:
  InMemoryRelation(AttributeVector output,
                   std::shared_ptr<const CachedTable> table, std::string label)
      : output_(std::move(output)), table_(std::move(table)),
        label_(std::move(label)) {}

  static PlanPtr Make(AttributeVector output,
                      std::shared_ptr<const CachedTable> table,
                      std::string label) {
    return std::make_shared<InMemoryRelation>(std::move(output), std::move(table),
                                              std::move(label));
  }

  const std::shared_ptr<const CachedTable>& table() const { return table_; }

  std::string NodeName() const override { return "InMemoryRelation"; }
  PlanVector Children() const override { return {}; }
  PlanPtr WithNewChildren(PlanVector) const override { return self(); }
  AttributeVector Output() const override { return output_; }
  std::string Describe() const override {
    return "InMemoryRelation " + label_ + " " + FormatAttributes(output_);
  }

 private:
  AttributeVector output_;
  std::shared_ptr<const CachedTable> table_;
  std::string label_;
};

/// Physical scan over an InMemoryRelation: decodes only the needed columns.
class CachedScanExec : public PhysicalPlan {
 public:
  CachedScanExec(AttributeVector output, std::vector<int> columns,
                 std::shared_ptr<const CachedTable> table)
      : output_(std::move(output)), columns_(std::move(columns)),
        table_(std::move(table)) {}

  std::string NodeName() const override { return "InMemoryColumnarScan"; }
  std::vector<PhysPtr> Children() const override { return {}; }
  AttributeVector Output() const override { return output_; }
  RowDataset ExecuteImpl(QueryContext& ctx) const override;
  std::string Describe() const override {
    return "InMemoryColumnarScan " + FormatAttributes(output_);
  }

  /// Native batch scan: cached chunks decode straight into ColumnVectors,
  /// never boxing a row. COUNT(*)-style scans (no columns) stay row-based.
  bool SupportsBatches() const override { return !columns_.empty(); }
  /// The root of every natively-columnar pipeline: batches come straight
  /// from the compressed cache, no pack anywhere.
  bool BatchesAreNative() const override { return SupportsBatches(); }

 protected:
  BatchDataset ExecuteBatchesImpl(QueryContext& ctx) const override;
  /// Row-demanding parents keep the direct decode-and-box scan; the native
  /// batch scan pays off when a vectorized parent consumes the columns.
  bool PreferBatchExecution() const override { return false; }

 private:
  AttributeVector output_;
  std::vector<int> columns_;
  std::shared_ptr<const CachedTable> table_;
};

/// Projection (optionally fused with a filter — Section 4.3.3's
/// "pipelining projections or filters into one Spark map operation").
/// Expressions are bound at construction; with codegen enabled each worker
/// evaluates the compiled register programs instead of walking the trees.
class ProjectFilterExec : public PhysicalPlan {
 public:
  /// `condition` may be null (pure projection). `projections` may be empty
  /// (pure filter: output == child output, rows pass through).
  ProjectFilterExec(std::vector<NamedExprPtr> projections, ExprPtr condition,
                    PhysPtr child);

  std::string NodeName() const override {
    return condition_ ? (projections_.empty() ? "Filter" : "Project+Filter")
                      : "Project";
  }
  std::vector<PhysPtr> Children() const override { return {child_}; }
  AttributeVector Output() const override;
  RowDataset ExecuteImpl(QueryContext& ctx) const override;
  std::string Describe() const override;

  const ExprPtr& condition() const { return condition_; }
  const std::vector<NamedExprPtr>& projections() const { return projections_; }
  const PhysPtr& child() const { return child_; }

  /// Vectorized filter/project: conditions refine the selection vector
  /// (zero-copy), projections evaluate whole output columns per batch.
  bool SupportsBatches() const override { return true; }
  /// Filters pass the child's columns through a selection view and
  /// projections evaluate into fresh vectors — columnar in, columnar out.
  bool BatchesAreNative() const override { return child_->BatchesAreNative(); }

 protected:
  BatchDataset ExecuteBatchesImpl(QueryContext& ctx) const override;
  /// Vectorize only when the input is natively columnar; over a row source
  /// the pack at the scan boundary outweighs the vector kernels (measured
  /// on the AMPLab colf workload, bench_fig8_amplab).
  bool PreferBatchExecution() const override {
    return child_->BatchesAreNative();
  }

 private:
  std::vector<NamedExprPtr> projections_;  // bound to child output
  ExprPtr condition_;                      // bound to child output; may be null
  PhysPtr child_;
  AttributeVector output_;
};

/// Bernoulli sample (Sample logical node).
class SampleExec : public PhysicalPlan {
 public:
  SampleExec(double fraction, uint64_t seed, PhysPtr child)
      : fraction_(fraction), seed_(seed), child_(std::move(child)) {}

  std::string NodeName() const override { return "Sample"; }
  std::vector<PhysPtr> Children() const override { return {child_}; }
  AttributeVector Output() const override { return child_->Output(); }
  RowDataset ExecuteImpl(QueryContext& ctx) const override;

 private:
  double fraction_;
  uint64_t seed_;
  PhysPtr child_;
};

/// UNION ALL: concatenation of the children's partitions.
class UnionExec : public PhysicalPlan {
 public:
  explicit UnionExec(std::vector<PhysPtr> children)
      : children_(std::move(children)) {}

  std::string NodeName() const override { return "Union"; }
  std::vector<PhysPtr> Children() const override { return children_; }
  AttributeVector Output() const override { return children_[0]->Output(); }
  RowDataset ExecuteImpl(QueryContext& ctx) const override;

 private:
  std::vector<PhysPtr> children_;
};

/// Binds `expr` against `input` and compiles it when enabled; shared by
/// the executors. Returns the bound tree and optionally the program.
struct BoundCompiled {
  ExprPtr bound;
  std::optional<CompiledExpression> compiled;
};
BoundCompiled BindAndCompile(const ExprPtr& expr, const AttributeVector& input,
                             bool codegen_enabled);

}  // namespace ssql

#endif  // SSQL_EXEC_SCAN_EXEC_H_
