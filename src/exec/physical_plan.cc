#include "exec/physical_plan.h"

#include <cmath>

#include "util/trace.h"

namespace ssql {

namespace {

/// Feeds the plan-vs-actual gap of one finished operator into the
/// misestimation histogram (ratio rounded to the nearest integer; always
/// >= 1, so bucket 0/1 means "estimate was right").
void RecordMisestimate(QueryContext& ctx, const CardinalityEstimate& est,
                       int64_t actual_rows) {
  if (est.rows < 0) return;
  ctx.engine()
      .registry()
      .Histogram("ssql_cardinality_misestimate",
                 "Ratio of planner cardinality estimates to actual rows "
                 "per operator, (max+1)/(min+1)")
      .Record(std::llround(MisestimateRatio(est.rows, actual_rows)));
}

}  // namespace

RowDataset PhysicalPlan::Execute(QueryContext& ctx) const {
  QueryProfile& profile = ctx.profile();
  HistogramMetric& op_wall = ctx.engine().registry().Histogram(
      "ssql_operator_wall_us", "Per-operator wall time, microseconds");
  if (!profile.detailed()) {
    const int64_t start_ns = TraceNowNs();
    RowDataset out = ExecuteImpl(ctx);
    op_wall.Record((TraceNowNs() - start_ns) / 1000);
    RecordMisestimate(ctx, estimate_, static_cast<int64_t>(out.TotalRows()));
    return out;
  }
  ProfileSpan* span = profile.BeginOperator(
      NodeName(), Describe(), estimate_.rows,
      estimate_.rows >= 0 ? EstimateSourceName(estimate_.source)
                          : std::string());
  const int64_t start_ns = TraceNowNs();
  try {
    RowDataset out = ExecuteImpl(ctx);
    op_wall.Record((TraceNowNs() - start_ns) / 1000);
    profile.Add(span, ProfileCounter::kRowsOut,
                static_cast<int64_t>(out.TotalRows()));
    profile.Add(span, ProfileCounter::kBatches,
                static_cast<int64_t>(out.num_partitions()));
    RecordMisestimate(ctx, estimate_, static_cast<int64_t>(out.TotalRows()));
    profile.EndOperator(span, "ok");
    return out;
  } catch (const std::exception& e) {
    op_wall.Record((TraceNowNs() - start_ns) / 1000);
    profile.EndOperator(span, std::string("error: ") + e.what());
    throw;
  } catch (...) {
    op_wall.Record((TraceNowNs() - start_ns) / 1000);
    profile.EndOperator(span, "error: unknown");
    throw;
  }
}

std::string PhysicalPlan::TreeString() const {
  std::string out;
  TreeStringInternal(0, &out);
  return out;
}

void PhysicalPlan::TreeStringInternal(int indent, std::string* out) const {
  for (int i = 0; i < indent; ++i) *out += "  ";
  *out += Describe();
  *out += "\n";
  for (const auto& c : Children()) c->TreeStringInternal(indent + 1, out);
}

void PhysicalPlan::Foreach(
    const std::function<void(const PhysicalPlan&)>& fn) const {
  fn(*this);
  for (const auto& c : Children()) c->Foreach(fn);
}

std::string FormatAttributes(const AttributeVector& attrs) {
  std::string s = "[";
  for (size_t i = 0; i < attrs.size(); ++i) {
    if (i > 0) s += ", ";
    s += attrs[i]->ToString();
  }
  return s + "]";
}

}  // namespace ssql
