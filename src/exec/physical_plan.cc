#include "exec/physical_plan.h"

#include <cmath>

#include "util/trace.h"

namespace ssql {

namespace {

/// Feeds the plan-vs-actual gap of one finished operator into the
/// misestimation histogram (ratio rounded to the nearest integer; always
/// >= 1, so bucket 0/1 means "estimate was right").
void RecordMisestimate(QueryContext& ctx, const CardinalityEstimate& est,
                       int64_t actual_rows) {
  if (est.rows < 0) return;
  ctx.engine()
      .registry()
      .Histogram("ssql_cardinality_misestimate",
                 "Ratio of planner cardinality estimates to actual rows "
                 "per operator, (max+1)/(min+1)")
      .Record(std::llround(MisestimateRatio(est.rows, actual_rows)));
}

}  // namespace

/// Shared profiling shell of Execute/ExecuteBatches: runs `work` inside an
/// operator span, recording wall time, rows_out (live rows in either mode),
/// batches (RowBatches in batch mode, partitions in row mode), and the
/// misestimation ratio. `work` returns (dataset, rows, batches).
template <typename Work>
static auto RunProfiled(const PhysicalPlan& node,
                        const CardinalityEstimate& est, QueryContext& ctx,
                        Work&& work) {
  QueryProfile& profile = ctx.profile();
  HistogramMetric& op_wall = ctx.engine().registry().Histogram(
      "ssql_operator_wall_us", "Per-operator wall time, microseconds");
  if (!profile.detailed()) {
    const int64_t start_ns = TraceNowNs();
    auto out = work();
    op_wall.Record((TraceNowNs() - start_ns) / 1000);
    RecordMisestimate(ctx, est, out.rows);
    return std::move(out.data);
  }
  ProfileSpan* span = profile.BeginOperator(
      node.NodeName(), node.Describe(), est.rows,
      est.rows >= 0 ? EstimateSourceName(est.source) : std::string());
  const int64_t start_ns = TraceNowNs();
  try {
    auto out = work();
    op_wall.Record((TraceNowNs() - start_ns) / 1000);
    profile.Add(span, ProfileCounter::kRowsOut, out.rows);
    profile.Add(span, ProfileCounter::kBatches, out.batches);
    RecordMisestimate(ctx, est, out.rows);
    profile.EndOperator(span, "ok");
    return std::move(out.data);
  } catch (const std::exception& e) {
    op_wall.Record((TraceNowNs() - start_ns) / 1000);
    profile.EndOperator(span, std::string("error: ") + e.what());
    throw;
  } catch (...) {
    op_wall.Record((TraceNowNs() - start_ns) / 1000);
    profile.EndOperator(span, "error: unknown");
    throw;
  }
}

RowDataset PhysicalPlan::Execute(QueryContext& ctx) const {
  struct Out {
    RowDataset data;
    int64_t rows;
    int64_t batches;
  };
  return RunProfiled(*this, estimate_, ctx, [&]() -> Out {
    if (SupportsBatches() && PreferBatchExecution() &&
        ctx.config().vectorized_enabled) {
      // Vectorized internals, row-demanding caller: run batched, unpack at
      // the operator boundary. rows_out/batches describe the batched
      // output the operator actually produced.
      BatchDataset batches = ExecuteBatchesImpl(ctx);
      int64_t rows = static_cast<int64_t>(batches.TotalRows());
      int64_t nbatches = static_cast<int64_t>(batches.TotalBatches());
      return Out{batches.ToRowDataset(ctx), rows, nbatches};
    }
    RowDataset out = ExecuteImpl(ctx);
    int64_t rows = static_cast<int64_t>(out.TotalRows());
    int64_t parts = static_cast<int64_t>(out.num_partitions());
    return Out{std::move(out), rows, parts};
  });
}

BatchDataset PhysicalPlan::ExecuteBatches(QueryContext& ctx) const {
  struct Out {
    BatchDataset data;
    int64_t rows;
    int64_t batches;
  };
  return RunProfiled(*this, estimate_, ctx, [&]() -> Out {
    BatchDataset out;
    if (SupportsBatches() && ctx.config().vectorized_enabled) {
      out = ExecuteBatchesImpl(ctx);
    } else {
      // Row-only operator under a batch-demanding parent: pack.
      out = BatchDataset::FromRowDataset(ctx, ExecuteImpl(ctx), OutputTypes(),
                                         ctx.config().batch_size);
    }
    int64_t rows = static_cast<int64_t>(out.TotalRows());
    int64_t nbatches = static_cast<int64_t>(out.TotalBatches());
    return Out{std::move(out), rows, nbatches};
  });
}

BatchDataset PhysicalPlan::ExecuteBatchesImpl(QueryContext& ctx) const {
  return BatchDataset::FromRowDataset(ctx, ExecuteImpl(ctx), OutputTypes(),
                                      ctx.config().batch_size);
}

std::vector<DataTypePtr> PhysicalPlan::OutputTypes() const {
  std::vector<DataTypePtr> types;
  AttributeVector attrs = Output();
  types.reserve(attrs.size());
  for (const auto& a : attrs) types.push_back(a->data_type());
  return types;
}

std::string PhysicalPlan::TreeString() const {
  std::string out;
  TreeStringInternal(0, &out);
  return out;
}

void PhysicalPlan::TreeStringInternal(int indent, std::string* out) const {
  for (int i = 0; i < indent; ++i) *out += "  ";
  *out += Describe();
  // The planner's batched stamp, so EXPLAIN shows which operators run
  // vectorized (physical plans only; logical TreeStrings are untouched —
  // they key the columnar cache).
  if (runs_batched_) *out += " [batched]";
  *out += "\n";
  for (const auto& c : Children()) c->TreeStringInternal(indent + 1, out);
}

void PhysicalPlan::Foreach(
    const std::function<void(const PhysicalPlan&)>& fn) const {
  fn(*this);
  for (const auto& c : Children()) c->Foreach(fn);
}

std::string FormatAttributes(const AttributeVector& attrs) {
  std::string s = "[";
  for (size_t i = 0; i < attrs.size(); ++i) {
    if (i > 0) s += ", ";
    s += attrs[i]->ToString();
  }
  return s + "]";
}

}  // namespace ssql
