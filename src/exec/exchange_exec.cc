#include "exec/exchange_exec.h"

namespace ssql {

uint64_t HashRowKeys(const Row& row, const ExprVector& bound_keys) {
  uint64_t h = 1469598103934665603ULL;
  for (const auto& k : bound_keys) {
    h = h * 1099511628211ULL + k->Eval(row).Hash();
  }
  return h;
}

RowDataset ExchangeExec::ExecuteImpl(QueryContext& ctx) const {
  RowDataset input = child_->Execute(ctx);
  AttributeVector child_out = child_->Output();
  ExprVector bound;
  bound.reserve(keys_.size());
  for (const auto& k : keys_) bound.push_back(BindReferences(k, child_out));
  size_t parts = num_partitions_ == 0 ? ctx.config().default_parallelism
                                      : num_partitions_;
  return input.ShuffleByHash(ctx, parts, [&bound](const Row& row) {
    return HashRowKeys(row, bound);
  });
}

std::string ExchangeExec::Describe() const {
  std::string s = "Exchange hashpartitioning(";
  for (size_t i = 0; i < keys_.size(); ++i) {
    if (i > 0) s += ", ";
    s += keys_[i]->ToString();
  }
  return s + ")";
}

RowDataset CoalesceExec::ExecuteImpl(QueryContext& ctx) const {
  RowDataset input = child_->Execute(ctx);
  return RowDataset::SinglePartition(input.Collect());
}

}  // namespace ssql
