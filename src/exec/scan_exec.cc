#include "exec/scan_exec.h"

#include "util/string_util.h"

namespace ssql {

BoundCompiled BindAndCompile(const ExprPtr& expr, const AttributeVector& input,
                             bool codegen_enabled) {
  BoundCompiled out;
  out.bound = BindReferences(expr, input);
  if (codegen_enabled) {
    out.compiled = CompiledExpression::Compile(out.bound);
  }
  return out;
}

namespace {

/// Small LRU of partitioned local tables. The backing row vectors are
/// immutable and shared by every plan over the same DataFrame, so the
/// partitioning (which copies every boxed row) should happen once per
/// dataset, not once per query — the engine-side analogue of Spark keeping
/// parallelized data resident on the executors.
class LocalPartitionCache {
 public:
  static LocalPartitionCache& Global() {
    static LocalPartitionCache* cache = new LocalPartitionCache();
    return *cache;
  }

  std::shared_ptr<const RowDataset> Get(
      const std::shared_ptr<const std::vector<Row>>& rows, size_t parts) {
    std::lock_guard<std::mutex> lock(mu_);
    for (size_t i = 0; i < entries_.size(); ++i) {
      if (entries_[i].rows.get() == rows.get() && entries_[i].parts == parts) {
        Entry hit = entries_[i];
        entries_.erase(entries_.begin() + static_cast<long>(i));
        entries_.push_back(hit);  // move to MRU position
        return hit.dataset;
      }
    }
    auto dataset = std::make_shared<const RowDataset>(
        RowDataset::FromRows(*rows, parts));
    entries_.push_back({rows, parts, dataset});
    if (entries_.size() > kCapacity) entries_.erase(entries_.begin());
    return dataset;
  }

 private:
  struct Entry {
    std::shared_ptr<const std::vector<Row>> rows;
    size_t parts;
    std::shared_ptr<const RowDataset> dataset;
  };
  static constexpr size_t kCapacity = 16;
  std::mutex mu_;
  std::vector<Entry> entries_;
};

}  // namespace

RowDataset LocalTableScanExec::ExecuteImpl(QueryContext& ctx) const {
  size_t parts = ctx.config().default_parallelism;
  return *LocalPartitionCache::Global().Get(rows_, parts);
}

DataSourceScanExec::DataSourceScanExec(std::shared_ptr<SourceRelation> source,
                                       AttributeVector full_output,
                                       std::vector<int> required_columns,
                                       ExprVector pushed_filters)
    : source_(std::move(source)),
      full_output_(std::move(full_output)),
      required_columns_(std::move(required_columns)),
      pushed_filters_(std::move(pushed_filters)) {}

AttributeVector DataSourceScanExec::Output() const {
  AttributeVector out;
  out.reserve(required_columns_.size());
  for (int i : required_columns_) out.push_back(full_output_[i]);
  return out;
}

RowDataset DataSourceScanExec::ExecuteImpl(QueryContext& ctx) const {
  std::vector<Row> rows;
  bool need_recheck = false;

  // Translate pushed filters to FilterSpecs where possible.
  std::vector<FilterSpec> specs;
  bool all_translated = true;
  for (const auto& f : pushed_filters_) {
    auto spec = TranslateFilter(*f);
    if (spec.has_value()) {
      specs.push_back(std::move(*spec));
    } else {
      all_translated = false;
    }
  }

  // Partition-preserving fast path (in-memory columnar cache): the
  // pre-partitioned dataset flows through untouched, filters applied
  // exactly inside the source.
  if (all_translated) {
    if (const auto* partitioned =
            dynamic_cast<const PartitionedScan*>(source_.get())) {
      return partitioned->ScanPartitions(ctx, required_columns_, specs);
    }
  }

  const auto* pruned_filtered = dynamic_cast<const PrunedFilteredScan*>(source_.get());
  const auto* catalyst_scan = dynamic_cast<const CatalystScan*>(source_.get());
  const auto* pruned = dynamic_cast<const PrunedScan*>(source_.get());
  const auto* table_scan = dynamic_cast<const TableScan*>(source_.get());

  if (catalyst_scan != nullptr && (!all_translated || pruned_filtered == nullptr)) {
    // Most capable interface: ship the bound expression trees.
    ExprVector bound;
    bound.reserve(pushed_filters_.size());
    for (const auto& f : pushed_filters_) {
      bound.push_back(BindReferences(f, full_output_));
    }
    rows = catalyst_scan->ScanCatalyst(ctx, required_columns_, bound);
  } else if (pruned_filtered != nullptr && all_translated) {
    rows = pruned_filtered->ScanFiltered(ctx, required_columns_, specs);
    need_recheck = !pruned_filtered->FiltersAreExact();
  } else if (pruned != nullptr) {
    rows = pruned->ScanColumns(ctx, required_columns_);
    need_recheck = !pushed_filters_.empty();
  } else if (table_scan != nullptr) {
    std::vector<Row> full = table_scan->ScanAll(ctx);
    rows.reserve(full.size());
    for (Row& row : full) {
      Row projected;
      projected.Reserve(required_columns_.size());
      for (int c : required_columns_) projected.Append(row.Get(c));
      rows.push_back(std::move(projected));
    }
    need_recheck = !pushed_filters_.empty();
  } else {
    throw ExecutionError("data source " + source_->name() +
                         " implements no scan interface");
  }

  if (need_recheck && !pushed_filters_.empty()) {
    // Filters were advisory (or not pushable after all): re-check against
    // the *output* attribute layout.
    AttributeVector out_attrs = Output();
    ExprVector bound;
    for (const auto& f : pushed_filters_) {
      bound.push_back(BindReferences(f, out_attrs));
    }
    std::vector<Row> kept;
    kept.reserve(rows.size());
    size_t cancel_check = 0;
    for (Row& row : rows) {
      ctx.CheckCancelledEvery(&cancel_check);
      bool pass = true;
      for (const auto& p : bound) {
        if (!EvalPredicate(*p, row)) {
          pass = false;
          break;
        }
      }
      if (pass) kept.push_back(std::move(row));
    }
    rows = std::move(kept);
  }

  return RowDataset::FromRows(std::move(rows), ctx.config().default_parallelism);
}

bool DataSourceScanExec::SupportsBatches() const {
  if (required_columns_.empty()) return false;
  if (dynamic_cast<const BatchedScan*>(source_.get()) == nullptr) return false;
  for (const auto& f : pushed_filters_) {
    if (!TranslateFilter(*f).has_value()) return false;
  }
  return true;
}

BatchDataset DataSourceScanExec::ExecuteBatchesImpl(QueryContext& ctx) const {
  const auto* batched = dynamic_cast<const BatchedScan*>(source_.get());
  std::vector<FilterSpec> specs;
  specs.reserve(pushed_filters_.size());
  for (const auto& f : pushed_filters_) {
    specs.push_back(*TranslateFilter(*f));  // checked by SupportsBatches()
  }
  return batched->ScanBatches(ctx, required_columns_, specs,
                              ctx.config().batch_size);
}

std::string DataSourceScanExec::Describe() const {
  std::string s = "Scan " + source_->name() + " " + FormatAttributes(Output());
  if (!pushed_filters_.empty()) {
    s += " PushedFilters: [";
    for (size_t i = 0; i < pushed_filters_.size(); ++i) {
      if (i > 0) s += ", ";
      s += pushed_filters_[i]->ToString();
    }
    s += "]";
  }
  return s;
}

RowDataset CachedScanExec::ExecuteImpl(QueryContext& ctx) const {
  ctx.metrics().Add("cache.scans", 1);
  return table_->Scan(columns_, &ctx.engine());
}

BatchDataset CachedScanExec::ExecuteBatchesImpl(QueryContext& ctx) const {
  ctx.metrics().Add("cache.scans", 1);
  return table_->ScanBatches(columns_, ctx.config().batch_size, &ctx.engine());
}

ProjectFilterExec::ProjectFilterExec(std::vector<NamedExprPtr> projections,
                                     ExprPtr condition, PhysPtr child)
    : projections_(std::move(projections)),
      condition_(std::move(condition)),
      child_(std::move(child)) {
  if (projections_.empty()) {
    output_ = child_->Output();
  } else {
    output_.reserve(projections_.size());
    for (const auto& p : projections_) output_.push_back(p->ToAttribute());
  }
}

AttributeVector ProjectFilterExec::Output() const { return output_; }

RowDataset ProjectFilterExec::ExecuteImpl(QueryContext& ctx) const {
  RowDataset input = child_->Execute(ctx);
  AttributeVector child_out = child_->Output();
  bool codegen = ctx.config().codegen_enabled;

  // Bind once; compile once. Evaluators are created per partition task so
  // the scratch register state is never shared across threads.
  std::optional<BoundCompiled> cond;
  if (condition_) cond = BindAndCompile(condition_, child_out, codegen);
  std::vector<BoundCompiled> projs;
  projs.reserve(projections_.size());
  for (const auto& p : projections_) {
    // Strip the top-level alias: only the value matters positionally.
    ExprPtr value = p;
    if (const auto* alias = As<Alias>(value)) value = alias->child();
    projs.push_back(BindAndCompile(value, child_out, codegen));
  }

  return input.MapPartitions(ctx, [&](size_t, const RowPartition& part) {
    auto out = std::make_shared<RowPartition>();
    out->rows.reserve(part.rows.size());
    size_t cancel_check = 0;
    std::optional<CompiledExpression::Evaluator> cond_eval;
    if (cond && cond->compiled) cond_eval.emplace(cond->compiled->NewEvaluator());
    std::vector<CompiledExpression::Evaluator> proj_evals;
    for (auto& p : projs) {
      if (p.compiled) proj_evals.push_back(p.compiled->NewEvaluator());
    }
    bool all_compiled = proj_evals.size() == projs.size();

    for (const Row& row : part.rows) {
      ctx.CheckCancelledEvery(&cancel_check);
      if (cond) {
        bool pass;
        if (cond_eval) {
          bool is_null = false;
          pass = cond_eval->EvaluateBool(row, &is_null) && !is_null;
        } else {
          pass = EvalPredicate(*cond->bound, row);
        }
        if (!pass) continue;
      }
      if (projections_.empty()) {
        out->rows.push_back(row);
        continue;
      }
      Row result;
      result.Reserve(projs.size());
      if (all_compiled) {
        for (auto& ev : proj_evals) result.Append(ev.Evaluate(row));
      } else {
        size_t ev_idx = 0;
        for (auto& p : projs) {
          if (p.compiled) {
            result.Append(proj_evals[ev_idx++].Evaluate(row));
          } else {
            result.Append(p.bound->Eval(row));
          }
        }
      }
      out->rows.push_back(std::move(result));
    }
    return out;
  }, "project");
}

BatchDataset ProjectFilterExec::ExecuteBatchesImpl(QueryContext& ctx) const {
  BatchDataset input = child_->ExecuteBatches(ctx);
  AttributeVector child_out = child_->Output();
  bool codegen = ctx.config().codegen_enabled;

  // Bind once; compile once — exactly the row path's programs, evaluated
  // with the vector evaluator instead (one lane loop per instruction).
  std::optional<BoundCompiled> cond;
  if (condition_) cond = BindAndCompile(condition_, child_out, codegen);
  std::vector<BoundCompiled> projs;
  projs.reserve(projections_.size());
  for (const auto& p : projections_) {
    ExprPtr value = p;
    if (const auto* alias = As<Alias>(value)) value = alias->child();
    projs.push_back(BindAndCompile(value, child_out, codegen));
  }
  std::vector<DataTypePtr> out_types = OutputTypes();

  return input.MapPartitions(ctx, [&](size_t, const BatchPartition& part) {
    auto out = std::make_shared<BatchPartition>();
    out->batches.reserve(part.batches.size());
    size_t cancel_rows = 0;
    // Per-task evaluators (lane banks are scratch, not shareable).
    std::optional<CompiledExpression::VectorEvaluator> cond_eval;
    if (cond && cond->compiled) {
      cond_eval.emplace(cond->compiled->NewVectorEvaluator());
    }
    std::vector<std::optional<CompiledExpression::VectorEvaluator>> proj_evals(
        projs.size());
    for (size_t i = 0; i < projs.size(); ++i) {
      if (projs[i].compiled) {
        proj_evals[i].emplace(projs[i].compiled->NewVectorEvaluator());
      }
    }

    for (const RowBatchPtr& batch : part.batches) {
      ctx.CheckCancelledEveryRows(&cancel_rows, batch->ActiveRows());
      RowBatchPtr cur = batch;
      if (cond) {
        std::vector<uint32_t> sel;
        if (cond_eval) {
          cond_eval->EvaluateSelection(*cur, &sel);
        } else {
          // Interpreted predicate: box each live row, keep survivors'
          // physical indices (same WHERE semantics: true-and-not-null).
          sel.reserve(cur->ActiveRows());
          for (size_t k = 0; k < cur->ActiveRows(); ++k) {
            size_t i = cur->ActiveIndex(k);
            if (EvalPredicate(*cond->bound, cur->BoxRow(i))) {
              sel.push_back(static_cast<uint32_t>(i));
            }
          }
        }
        if (sel.empty()) continue;  // fully filtered: emit no batch
        cur = RowBatch::FilterView(cur, std::move(sel));
      }
      if (cur->ActiveRows() == 0) continue;
      if (projections_.empty()) {
        // Pure filter: the view shares the input columns — zero copies.
        out->batches.push_back(std::move(cur));
        continue;
      }
      // Projection: evaluate one dense output column per expression.
      std::vector<std::shared_ptr<ColumnVector>> cols;
      cols.reserve(projs.size());
      for (size_t i = 0; i < projs.size(); ++i) {
        auto col = std::make_shared<ColumnVector>(out_types[i]);
        col->Reserve(cur->ActiveRows());
        if (proj_evals[i]) {
          proj_evals[i]->EvaluateColumn(*cur, col.get());
        } else {
          for (size_t k = 0; k < cur->ActiveRows(); ++k) {
            col->Append(projs[i].bound->Eval(cur->BoxRow(cur->ActiveIndex(k))));
          }
        }
        cols.push_back(std::move(col));
      }
      out->batches.push_back(
          std::make_shared<const RowBatch>(std::move(cols)));
    }
    return out;
  }, "project");
}

std::string ProjectFilterExec::Describe() const {
  std::string s = NodeName();
  if (!projections_.empty()) {
    s += " [";
    for (size_t i = 0; i < projections_.size(); ++i) {
      if (i > 0) s += ", ";
      s += projections_[i]->ToString();
    }
    s += "]";
  }
  if (condition_) s += " condition: " + condition_->ToString();
  return s;
}

RowDataset SampleExec::ExecuteImpl(QueryContext& ctx) const {
  RowDataset input = child_->Execute(ctx);
  double fraction = fraction_;
  uint64_t seed = seed_;
  return input.MapPartitions(ctx, [&, fraction, seed](size_t p,
                                                      const RowPartition& part) {
    auto out = std::make_shared<RowPartition>();
    // Deterministic per-row hash-based Bernoulli draw.
    uint64_t threshold =
        static_cast<uint64_t>(fraction * static_cast<double>(UINT64_MAX));
    uint64_t state = seed * 0x9e3779b97f4a7c15ULL + p;
    for (const Row& row : part.rows) {
      state = state * 6364136223846793005ULL + 1442695040888963407ULL;
      if (state <= threshold) out->rows.push_back(row);
    }
    return out;
  }, "sample");
}

RowDataset UnionExec::ExecuteImpl(QueryContext& ctx) const {
  std::vector<RowPartitionPtr> parts;
  for (const auto& child : children_) {
    RowDataset d = child->Execute(ctx);
    for (const auto& p : d.partitions()) parts.push_back(p);
  }
  return RowDataset(std::move(parts));
}

}  // namespace ssql
