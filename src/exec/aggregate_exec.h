#ifndef SSQL_EXEC_AGGREGATE_EXEC_H_
#define SSQL_EXEC_AGGREGATE_EXEC_H_

#include <memory>
#include <vector>

#include "catalyst/expr/aggregates.h"
#include "exec/physical_plan.h"

namespace ssql {

/// Aggregation stage. The planner always produces the two-stage shape of
/// the engine's shuffle protocol:
///
///   HashAggregate(Final) <- Exchange/Coalesce <- HashAggregate(Partial)
///
/// Partial computes per-partition accumulators keyed by the grouping
/// values (map-side combine); accumulators travel the shuffle as plain
/// Values; Final merges them, finishes each aggregate function and
/// evaluates the result expressions (which may nest aggregates inside
/// arithmetic, e.g. sum(a)/count(b) + 1).
enum class AggregateMode { kPartial, kFinal };

class HashAggregateExec : public PhysicalPlan {
 public:
  /// `groupings`: grouping expressions over the ORIGINAL child output.
  /// `aggregates`: the named output expressions (grouping columns and/or
  /// expressions containing aggregate functions).
  /// For kFinal, `child` must be the exchange over the partial stage.
  HashAggregateExec(ExprVector groupings, std::vector<NamedExprPtr> aggregates,
                    AggregateMode mode, PhysPtr child);

  std::string NodeName() const override {
    return mode_ == AggregateMode::kPartial ? "HashAggregate(Partial)"
                                            : "HashAggregate(Final)";
  }
  std::vector<PhysPtr> Children() const override { return {child_}; }
  AttributeVector Output() const override;
  RowDataset ExecuteImpl(QueryContext& ctx) const override;
  std::string Describe() const override;

  /// The synthesized attributes of the partial stage's output:
  /// [one per grouping expr] ++ [one per distinct aggregate function].
  /// The grouping attrs are the Exchange keys between the stages.
  const AttributeVector& partial_output() const { return partial_output_; }

  /// Only the map-side (partial) stage is vectorized: it sits on top of the
  /// batched scan/filter/project pipeline. The final stage's input always
  /// crosses the shuffle as rows, so batching it would be pure adapter
  /// overhead; its (small) output still packs on demand via the adapter.
  bool SupportsBatches() const override {
    return mode_ == AggregateMode::kPartial;
  }

 protected:
  BatchDataset ExecuteBatchesImpl(QueryContext& ctx) const override;
  /// Vectorize the map-side combine only when the input pipeline is
  /// natively columnar; over a row source the pack costs more than the
  /// lane loops save. Output (accumulator rows) packs, so this node never
  /// reports BatchesAreNative() itself.
  bool PreferBatchExecution() const override {
    return SupportsBatches() && child_->BatchesAreNative();
  }

 private:
  RowDataset ExecutePartial(QueryContext& ctx) const;
  RowDataset ExecuteFinal(QueryContext& ctx) const;

  /// Codegen fast path for the map-side combine: when the grouping key is
  /// a single integer-like column and every aggregate is a simple
  /// count/sum/avg/min/max over a numeric column, per-row work runs on
  /// typed accumulators keyed by int64 — no boxed keys, no Value
  /// allocation per row. This is where Section 4.3.4's code generation
  /// pays off for aggregation (the Figure 9 DataFrame bar). Returns false
  /// when the shape is unsupported and the generic path must run.
  bool TryExecutePartialFast(QueryContext& ctx, const RowDataset& input,
                             const AttributeVector& child_out,
                             RowDataset* out) const;

  /// Batched form of the partial fast path: grouping key and aggregate
  /// arguments evaluate as whole columns per batch (vector evaluator), then
  /// a tight lane loop folds them into the typed accumulator banks. Same
  /// shape conditions and bit-identical results as the row fast path.
  bool TryExecutePartialFastBatched(QueryContext& ctx,
                                    const BatchDataset& input,
                                    const AttributeVector& child_out,
                                    BatchDataset* out) const;

  /// Matching fast path for the reduce side: merges the typed partial
  /// accumulators without boxed group keys. Same shape conditions as the
  /// partial fast path.
  bool TryExecuteFinalFast(QueryContext& ctx, const RowDataset& input,
                           const ExprVector& result_exprs,
                           RowDataset* out) const;

  ExprVector groupings_;
  std::vector<NamedExprPtr> aggregates_;
  AggregateMode mode_;
  PhysPtr child_;

  /// Distinct aggregate functions appearing in `aggregates_`, in first-
  /// appearance order; shared layout between the two stages.
  std::vector<AggregatePtr> agg_functions_;
  AttributeVector partial_output_;
};

}  // namespace ssql

#endif  // SSQL_EXEC_AGGREGATE_EXEC_H_
