#ifndef SSQL_EXEC_SORT_LIMIT_EXEC_H_
#define SSQL_EXEC_SORT_LIMIT_EXEC_H_

#include <functional>
#include <memory>
#include <vector>

#include "catalyst/plan/logical_plan.h"
#include "exec/physical_plan.h"

namespace ssql {

/// Global sort: local sort per partition, then a driver-side k-way gather
/// into one ordered partition.
class SortExec : public PhysicalPlan {
 public:
  SortExec(std::vector<std::shared_ptr<const SortOrder>> orders, PhysPtr child)
      : orders_(std::move(orders)), child_(std::move(child)) {}

  std::string NodeName() const override { return "Sort"; }
  std::vector<PhysPtr> Children() const override { return {child_}; }
  AttributeVector Output() const override { return child_->Output(); }
  RowDataset ExecuteImpl(QueryContext& ctx) const override;
  std::string Describe() const override;

 private:
  /// Memory-bounded local sort for one partition: budgeted buffer, stable-
  /// sorted runs spilled to disk when a grant is denied, then a stable
  /// k-way merge of the run files plus the in-memory tail.
  std::shared_ptr<RowPartition> ExternalSortPartition(
      QueryContext& ctx, const RowPartition& part,
      const std::function<bool(const Row&, const Row&)>& less) const;

  std::vector<std::shared_ptr<const SortOrder>> orders_;
  PhysPtr child_;
};

/// LIMIT: per-partition local limit, then a global cut on the driver.
class LimitExec : public PhysicalPlan {
 public:
  LimitExec(int64_t n, PhysPtr child) : n_(n), child_(std::move(child)) {}

  std::string NodeName() const override { return "Limit"; }
  std::vector<PhysPtr> Children() const override { return {child_}; }
  AttributeVector Output() const override { return child_->Output(); }
  RowDataset ExecuteImpl(QueryContext& ctx) const override;
  std::string Describe() const override {
    return "Limit " + std::to_string(n_);
  }

 private:
  int64_t n_;
  PhysPtr child_;
};

}  // namespace ssql

#endif  // SSQL_EXEC_SORT_LIMIT_EXEC_H_
