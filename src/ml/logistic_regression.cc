#include "ml/logistic_regression.h"

#include <cmath>

#include "api/sql_context.h"
#include "catalyst/expr/udf_expr.h"

namespace ssql {

namespace {

double Sigmoid(double z) { return 1.0 / (1.0 + std::exp(-z)); }

}  // namespace

double LogisticRegressionModel::PredictProbability(const MlVector& features) const {
  return Sigmoid(features.Dot(weights_) + intercept_);
}

DataFrame LogisticRegressionModel::Transform(const DataFrame& input) const {
  std::vector<double> weights = weights_;
  double intercept = intercept_;
  ExprPtr prediction = ScalarUDF::Make(
      "predict", {input(features_col_).expr()}, DataType::Double(),
      [weights, intercept](const std::vector<Value>& args) -> Value {
        if (args[0].is_null()) return Value::Null();
        MlVector v = VectorUDT::FromStruct(args[0]);
        double p = Sigmoid(v.Dot(weights) + intercept);
        return Value(p >= 0.5 ? 1.0 : 0.0);
      });
  return input.WithColumn(prediction_col_, Column(std::move(prediction)));
}

std::shared_ptr<LogisticRegressionModel> LogisticRegression::FitModel(
    const DataFrame& input) const {
  // Materialize (label, features) pairs on the driver.
  std::vector<Row> rows =
      input.Select(std::vector<std::string>{label_col_, features_col_}).Collect();
  std::vector<double> labels;
  std::vector<MlVector> features;
  labels.reserve(rows.size());
  features.reserve(rows.size());
  int dim = 0;
  for (const Row& row : rows) {
    if (row.IsNullAt(0) || row.IsNullAt(1)) continue;
    labels.push_back(row.Get(0).AsDouble());
    features.push_back(VectorUDT::FromStruct(row.Get(1)));
    dim = std::max(dim, static_cast<int>(features.back().size()));
  }

  std::vector<double> weights(dim, 0.0);
  double intercept = 0.0;
  size_t n = features.size();
  if (n > 0) {
    for (int iter = 0; iter < iterations_; ++iter) {
      std::vector<double> grad(dim, 0.0);
      double grad_intercept = 0.0;
      for (size_t i = 0; i < n; ++i) {
        double error =
            Sigmoid(features[i].Dot(weights) + intercept) - labels[i];
        features[i].AddTo(error, &grad);
        grad_intercept += error;
      }
      double step = learning_rate_ / static_cast<double>(n);
      for (int d = 0; d < dim; ++d) weights[d] -= step * grad[d];
      intercept -= step * grad_intercept;
    }
  }
  return std::make_shared<LogisticRegressionModel>(
      std::move(weights), intercept, features_col_, prediction_col_);
}

std::shared_ptr<Transformer> LogisticRegression::Fit(const DataFrame& input) const {
  return FitModel(input);
}

}  // namespace ssql
