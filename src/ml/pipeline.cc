#include "ml/pipeline.h"

namespace ssql {

std::shared_ptr<PipelineModel> Pipeline::Fit(const DataFrame& input) const {
  std::vector<std::shared_ptr<Transformer>> fitted;
  fitted.reserve(stages_.size());
  DataFrame current = input;
  for (const PipelineStage& stage : stages_) {
    std::shared_ptr<Transformer> t = stage.transformer;
    if (stage.estimator) t = stage.estimator->Fit(current);
    current = t->Transform(current);
    fitted.push_back(std::move(t));
  }
  return std::make_shared<PipelineModel>(std::move(fitted));
}

DataFrame PipelineModel::Transform(const DataFrame& input) const {
  DataFrame current = input;
  for (const auto& stage : stages_) current = stage->Transform(current);
  return current;
}

}  // namespace ssql
