#ifndef SSQL_ML_PIPELINE_H_
#define SSQL_ML_PIPELINE_H_

#include <memory>
#include <string>
#include <vector>

#include "api/dataframe.h"

namespace ssql {

/// ML pipelines over DataFrames (Section 5.2, Figure 7): "a pipeline is a
/// graph of transformations on data ... each of which exchange datasets",
/// and DataFrames are the dataset type. All stages take input/output
/// column names, so they compose over any schema.
class Transformer {
 public:
  virtual ~Transformer() = default;
  /// Appends/derives columns on the input DataFrame.
  virtual DataFrame Transform(const DataFrame& input) const = 0;
  virtual std::string name() const = 0;
};

/// A stage that learns from data and produces a Transformer (a model).
class Estimator {
 public:
  virtual ~Estimator() = default;
  virtual std::shared_ptr<Transformer> Fit(const DataFrame& input) const = 0;
  virtual std::string name() const = 0;
};

/// One pipeline stage: a transformer or an estimator.
struct PipelineStage {
  std::shared_ptr<Transformer> transformer;
  std::shared_ptr<Estimator> estimator;

  static PipelineStage Of(std::shared_ptr<Transformer> t) {
    return {std::move(t), nullptr};
  }
  static PipelineStage Of(std::shared_ptr<Estimator> e) {
    return {nullptr, std::move(e)};
  }
};

class PipelineModel;

/// Sequential pipeline: Fit() runs every stage in order, fitting estimators
/// on the dataset as transformed so far.
class Pipeline {
 public:
  explicit Pipeline(std::vector<PipelineStage> stages)
      : stages_(std::move(stages)) {}

  std::shared_ptr<PipelineModel> Fit(const DataFrame& input) const;

 private:
  std::vector<PipelineStage> stages_;
};

/// The fitted pipeline: a chain of transformers.
class PipelineModel : public Transformer {
 public:
  explicit PipelineModel(std::vector<std::shared_ptr<Transformer>> stages)
      : stages_(std::move(stages)) {}

  DataFrame Transform(const DataFrame& input) const override;
  std::string name() const override { return "PipelineModel"; }

  const std::vector<std::shared_ptr<Transformer>>& stages() const {
    return stages_;
  }

 private:
  std::vector<std::shared_ptr<Transformer>> stages_;
};

}  // namespace ssql

#endif  // SSQL_ML_PIPELINE_H_
