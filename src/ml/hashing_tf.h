#ifndef SSQL_ML_HASHING_TF_H_
#define SSQL_ML_HASHING_TF_H_

#include <memory>
#include <string>

#include "ml/pipeline.h"
#include "ml/vector_udt.h"

namespace ssql {

/// Term-frequency featurizer (Figure 7's HashingTF): hashes each word of
/// an array<string> column into a fixed number of buckets and counts
/// occurrences, producing a sparse vector stored via the vector UDT.
class HashingTF : public Transformer {
 public:
  HashingTF(std::string input_col, std::string output_col, int num_features)
      : input_col_(std::move(input_col)),
        output_col_(std::move(output_col)),
        num_features_(num_features) {}

  static std::shared_ptr<HashingTF> Make(std::string input_col,
                                         std::string output_col,
                                         int num_features = 1000) {
    return std::make_shared<HashingTF>(std::move(input_col),
                                       std::move(output_col), num_features);
  }

  DataFrame Transform(const DataFrame& input) const override;
  std::string name() const override { return "HashingTF"; }

  int num_features() const { return num_features_; }

  /// The featurization itself, exposed for tests.
  static MlVector HashWords(const std::vector<std::string>& words,
                            int num_features);

 private:
  std::string input_col_;
  std::string output_col_;
  int num_features_;
};

}  // namespace ssql

#endif  // SSQL_ML_HASHING_TF_H_
