#ifndef SSQL_ML_TOKENIZER_H_
#define SSQL_ML_TOKENIZER_H_

#include <memory>
#include <string>

#include "ml/pipeline.h"

namespace ssql {

/// Splits a text column into lower-cased words (Figure 7's first stage).
class Tokenizer : public Transformer {
 public:
  Tokenizer(std::string input_col, std::string output_col)
      : input_col_(std::move(input_col)), output_col_(std::move(output_col)) {}

  static std::shared_ptr<Tokenizer> Make(std::string input_col,
                                         std::string output_col) {
    return std::make_shared<Tokenizer>(std::move(input_col),
                                       std::move(output_col));
  }

  DataFrame Transform(const DataFrame& input) const override;
  std::string name() const override { return "Tokenizer"; }

 private:
  std::string input_col_;
  std::string output_col_;
};

}  // namespace ssql

#endif  // SSQL_ML_TOKENIZER_H_
