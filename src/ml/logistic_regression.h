#ifndef SSQL_ML_LOGISTIC_REGRESSION_H_
#define SSQL_ML_LOGISTIC_REGRESSION_H_

#include <memory>
#include <string>
#include <vector>

#include "ml/pipeline.h"
#include "ml/vector_udt.h"

namespace ssql {

/// Fitted binary logistic regression (Figure 7's final stage). Exposes a
/// prediction Transformer and a raw Predict() usable as a SQL UDF, the
/// Section 3.7 pattern:
///   ctx.udf.register("predict", (x, y) => model.predict(...)).
class LogisticRegressionModel : public Transformer {
 public:
  LogisticRegressionModel(std::vector<double> weights, double intercept,
                          std::string features_col, std::string prediction_col)
      : weights_(std::move(weights)),
        intercept_(intercept),
        features_col_(std::move(features_col)),
        prediction_col_(std::move(prediction_col)) {}

  /// P(label = 1 | features).
  double PredictProbability(const MlVector& features) const;
  /// Hard 0/1 prediction.
  double Predict(const MlVector& features) const {
    return PredictProbability(features) >= 0.5 ? 1.0 : 0.0;
  }

  DataFrame Transform(const DataFrame& input) const override;
  std::string name() const override { return "LogisticRegressionModel"; }

  const std::vector<double>& weights() const { return weights_; }
  double intercept() const { return intercept_; }

 private:
  std::vector<double> weights_;
  double intercept_;
  std::string features_col_;
  std::string prediction_col_;
};

/// Batch-gradient-descent logistic regression over a DataFrame of
/// (label double, features vector) columns.
class LogisticRegression : public Estimator {
 public:
  LogisticRegression(std::string features_col, std::string label_col,
                     std::string prediction_col = "prediction",
                     int iterations = 100, double learning_rate = 1.0)
      : features_col_(std::move(features_col)),
        label_col_(std::move(label_col)),
        prediction_col_(std::move(prediction_col)),
        iterations_(iterations),
        learning_rate_(learning_rate) {}

  static std::shared_ptr<LogisticRegression> Make(
      std::string features_col, std::string label_col,
      std::string prediction_col = "prediction", int iterations = 100,
      double learning_rate = 1.0) {
    return std::make_shared<LogisticRegression>(
        std::move(features_col), std::move(label_col), std::move(prediction_col),
        iterations, learning_rate);
  }

  std::shared_ptr<Transformer> Fit(const DataFrame& input) const override;
  /// Typed Fit, when the caller needs the model's weights/Predict().
  std::shared_ptr<LogisticRegressionModel> FitModel(const DataFrame& input) const;
  std::string name() const override { return "LogisticRegression"; }

 private:
  std::string features_col_;
  std::string label_col_;
  std::string prediction_col_;
  int iterations_;
  double learning_rate_;
};

}  // namespace ssql

#endif  // SSQL_ML_LOGISTIC_REGRESSION_H_
