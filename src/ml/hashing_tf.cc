#include "ml/hashing_tf.h"

#include <algorithm>
#include <map>

#include "api/sql_context.h"
#include "catalyst/expr/udf_expr.h"
#include "util/string_util.h"

namespace ssql {

MlVector HashingTF::HashWords(const std::vector<std::string>& words,
                              int num_features) {
  std::map<int32_t, double> counts;
  for (const auto& w : words) {
    int32_t bucket = static_cast<int32_t>(HashBytes(w.data(), w.size()) %
                                          static_cast<uint64_t>(num_features));
    counts[bucket] += 1.0;
  }
  std::vector<int32_t> indices;
  std::vector<double> values;
  indices.reserve(counts.size());
  values.reserve(counts.size());
  for (const auto& [idx, count] : counts) {
    indices.push_back(idx);
    values.push_back(count);
  }
  return MlVector::Sparse(num_features, std::move(indices), std::move(values));
}

DataFrame HashingTF::Transform(const DataFrame& input) const {
  int num_features = num_features_;
  ExprPtr features = ScalarUDF::Make(
      "hashing_tf", {input(input_col_).expr()}, VectorUDT::Instance()->sql_type(),
      [num_features](const std::vector<Value>& args) -> Value {
        if (args[0].is_null()) return Value::Null();
        std::vector<std::string> words;
        for (const auto& w : args[0].array().elements) {
          if (!w.is_null()) words.push_back(w.str());
        }
        return VectorUDT::ToStruct(HashWords(words, num_features));
      });
  return input.WithColumn(output_col_, Column(std::move(features)));
}

}  // namespace ssql
