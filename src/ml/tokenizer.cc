#include "ml/tokenizer.h"

#include "api/sql_context.h"
#include "catalyst/expr/udf_expr.h"
#include "util/string_util.h"

namespace ssql {

DataFrame Tokenizer::Transform(const DataFrame& input) const {
  ExprPtr words = ScalarUDF::Make(
      "tokenize", {input(input_col_).expr()},
      ArrayType::Make(DataType::String(), false),
      [](const std::vector<Value>& args) -> Value {
        if (args[0].is_null()) return Value::Null();
        std::vector<Value> out;
        for (const std::string& w : SplitWhitespace(args[0].str())) {
          out.emplace_back(ToLower(w));
        }
        return Value::Array(std::move(out));
      });
  return input.WithColumn(output_col_, Column(std::move(words)));
}

}  // namespace ssql
