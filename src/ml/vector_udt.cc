#include "ml/vector_udt.h"

#include "util/status.h"

namespace ssql {

MlVector MlVector::Dense(std::vector<double> values) {
  MlVector v;
  v.dense_ = true;
  v.size_ = static_cast<int32_t>(values.size());
  v.values_ = std::move(values);
  return v;
}

MlVector MlVector::Sparse(int32_t size, std::vector<int32_t> indices,
                          std::vector<double> values) {
  MlVector v;
  v.dense_ = false;
  v.size_ = size;
  v.indices_ = std::move(indices);
  v.values_ = std::move(values);
  return v;
}

double MlVector::Get(int32_t i) const {
  if (dense_) {
    return (i >= 0 && i < size_) ? values_[i] : 0.0;
  }
  for (size_t k = 0; k < indices_.size(); ++k) {
    if (indices_[k] == i) return values_[k];
  }
  return 0.0;
}

double MlVector::Dot(const std::vector<double>& weights) const {
  double sum = 0.0;
  if (dense_) {
    size_t n = std::min(values_.size(), weights.size());
    for (size_t i = 0; i < n; ++i) sum += values_[i] * weights[i];
    return sum;
  }
  for (size_t k = 0; k < indices_.size(); ++k) {
    if (static_cast<size_t>(indices_[k]) < weights.size()) {
      sum += values_[k] * weights[indices_[k]];
    }
  }
  return sum;
}

void MlVector::AddTo(double scale, std::vector<double>* out) const {
  if (dense_) {
    size_t n = std::min(values_.size(), out->size());
    for (size_t i = 0; i < n; ++i) (*out)[i] += scale * values_[i];
    return;
  }
  for (size_t k = 0; k < indices_.size(); ++k) {
    if (static_cast<size_t>(indices_[k]) < out->size()) {
      (*out)[indices_[k]] += scale * values_[k];
    }
  }
}

bool MlVector::operator==(const MlVector& other) const {
  if (size_ != other.size_) return false;
  for (int32_t i = 0; i < size_; ++i) {
    if (Get(i) != other.Get(i)) return false;
  }
  return true;
}

std::shared_ptr<const VectorUDT> VectorUDT::Instance() {
  static const auto instance = std::make_shared<const VectorUDT>();
  return instance;
}

const std::string& VectorUDT::name() const {
  static const std::string kName = "vector";
  return kName;
}

const DataTypePtr& VectorUDT::sql_type() const {
  static const DataTypePtr type = StructType::Make({
      Field("dense", DataType::Boolean(), false),
      Field("size", DataType::Int32(), false),
      Field("indices", ArrayType::Make(DataType::Int32(), false), true),
      Field("values", ArrayType::Make(DataType::Double(), false), true),
  });
  return type;
}

Value VectorUDT::ToStruct(const MlVector& v) {
  std::vector<Value> indices;
  indices.reserve(v.indices().size());
  for (int32_t i : v.indices()) indices.emplace_back(i);
  std::vector<Value> values;
  values.reserve(v.values().size());
  for (double d : v.values()) values.emplace_back(d);
  return Value::Struct({Value(v.dense()), Value(v.size()),
                        Value::Array(std::move(indices)),
                        Value::Array(std::move(values))});
}

MlVector VectorUDT::FromStruct(const Value& v) {
  const auto& fields = v.struct_data().fields;
  bool dense = fields[0].bool_value();
  int32_t size = fields[1].i32();
  std::vector<double> values;
  for (const auto& d : fields[3].array().elements) values.push_back(d.f64());
  if (dense) return MlVector::Dense(std::move(values));
  std::vector<int32_t> indices;
  for (const auto& i : fields[2].array().elements) indices.push_back(i.i32());
  return MlVector::Sparse(size, std::move(indices), std::move(values));
}

Value VectorUDT::ToObject(MlVector v) {
  return Value::Object(std::make_shared<MlVector>(std::move(v)),
                       Instance().get());
}

Value VectorUDT::Serialize(const Value& object) const {
  if (object.is_null()) return Value::Null();
  const auto& obj = object.object();
  const auto* vec = static_cast<const MlVector*>(obj.ptr.get());
  if (vec == nullptr) throw ExecutionError("VectorUDT: not an MlVector");
  return ToStruct(*vec);
}

Value VectorUDT::Deserialize(const Value& serialized) const {
  if (serialized.is_null()) return Value::Null();
  return ToObject(FromStruct(serialized));
}

}  // namespace ssql
