#ifndef SSQL_ML_VECTOR_UDT_H_
#define SSQL_ML_VECTOR_UDT_H_

#include <memory>
#include <vector>

#include "types/schema.h"
#include "types/value.h"

namespace ssql {

/// MLlib's vector type (Section 5.2): dense or sparse feature vectors.
class MlVector {
 public:
  static MlVector Dense(std::vector<double> values);
  static MlVector Sparse(int32_t size, std::vector<int32_t> indices,
                         std::vector<double> values);

  bool dense() const { return dense_; }
  int32_t size() const { return size_; }
  const std::vector<int32_t>& indices() const { return indices_; }
  const std::vector<double>& values() const { return values_; }

  /// Value at coordinate `i`.
  double Get(int32_t i) const;

  /// Dot product with a dense weight vector.
  double Dot(const std::vector<double>& weights) const;

  /// Accumulates `scale * this` into `out` (gradient updates).
  void AddTo(double scale, std::vector<double>* out) const;

  bool operator==(const MlVector& other) const;

 private:
  bool dense_ = true;
  int32_t size_ = 0;
  std::vector<int32_t> indices_;
  std::vector<double> values_;
};

/// The vector UDT (Section 5.2): stores both sparse and dense vectors as
/// "four primitive fields: a boolean for the type (dense or sparse), a size
/// for the vector, an array of indices (for sparse coordinates), and an
/// array of double values". Columnar caching and data sources see only
/// this struct; UDFs registered on vectors receive MlVector objects.
class VectorUDT : public UserDefinedType {
 public:
  static std::shared_ptr<const VectorUDT> Instance();

  const std::string& name() const override;
  const DataTypePtr& sql_type() const override;

  Value Serialize(const Value& object) const override;
  Value Deserialize(const Value& serialized) const override;

  /// Convenience: MlVector -> struct Value of sql_type().
  static Value ToStruct(const MlVector& v);
  /// Convenience: struct Value of sql_type() -> MlVector.
  static MlVector FromStruct(const Value& v);
  /// Wraps an MlVector in a Value::Object tagged with this UDT.
  static Value ToObject(MlVector v);
};

}  // namespace ssql

#endif  // SSQL_ML_VECTOR_UDT_H_
