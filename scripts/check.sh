#!/usr/bin/env bash
# Tier-1 check: full build + test suite, then the fault-tolerance and
# memory/spill tests again under AddressSanitizer/UBSan (retry,
# cancellation, reservation accounting and spill-file cleanup exercise
# concurrent code and raw buffers worth running instrumented).
set -euo pipefail
cd "$(dirname "$0")/.."

cmake -B build -S . >/dev/null
cmake --build build -j >/dev/null
(cd build && ctest --output-on-failure -j "$(nproc)")

cmake -B build-sanitize -S . -DSSQL_SANITIZE=ON >/dev/null
cmake --build build-sanitize -j --target test_fault_tolerance --target test_memory >/dev/null
./build-sanitize/tests/test_fault_tolerance
./build-sanitize/tests/test_memory
