#!/usr/bin/env bash
# Tier-1 check: full build + test suite, then the fault-tolerance,
# memory/spill, observability and vectorized/columnar tests again under
# AddressSanitizer/UBSan (retry, cancellation, reservation accounting,
# spill-file cleanup, concurrent span/counter updates, and selection-vector
# indexing into raw column banks exercise concurrent code and raw buffers
# worth running instrumented), then the concurrency + vectorized suites
# under ThreadSanitizer, then the chaos harness under both — including a
# batch_size=1 lane over cached (natively columnar) tables. Finishes with a
# quick overhead sanity pass of bench_observe (profiled vs un-profiled
# execution).
set -euo pipefail
cd "$(dirname "$0")/.."

cmake -B build -S . >/dev/null
cmake --build build -j >/dev/null
(cd build && ctest --output-on-failure -j "$(nproc)")

cmake -B build-sanitize -S . -DSSQL_SANITIZE=address >/dev/null
cmake --build build-sanitize -j --target test_fault_tolerance --target test_memory --target test_observability --target test_system_tables --target test_statistics --target test_chaos --target test_vectorized --target test_columnar --target test_property_end_to_end --target test_flight_recorder >/dev/null
./build-sanitize/tests/test_fault_tolerance
./build-sanitize/tests/test_memory
./build-sanitize/tests/test_observability
./build-sanitize/tests/test_system_tables
./build-sanitize/tests/test_statistics
# The vectorized/columnar suites under ASan: selection vectors index into
# raw column banks, null slots must hold defined zeros, and FilterView
# windows alias parent batches — all pointer-arithmetic surface. The
# end-to-end property suite rides along because its batched-vs-row
# equivalence sweep (batch_size 1 and 1024) is the strongest detector of
# out-of-bounds lane reads turning into wrong-but-plausible answers.
./build-sanitize/tests/test_vectorized
./build-sanitize/tests/test_columnar
./build-sanitize/tests/test_property_end_to_end
# Flight recorder under ASan: the journal's fixed-size slots and detail
# truncation are raw-buffer surface; bundle writing walks directories.
./build-sanitize/tests/test_flight_recorder

# The concurrency suite (N driver threads on one SqlContext) again under
# ThreadSanitizer: races between QueryContexts, the admission gate, and the
# shared memory pool are exactly what TSan exists to catch. The system-table
# suite joins it because its scans read live engine state (active query list,
# metrics registry, memory pool) while other threads mutate it, and the
# fault-tolerance suite joins it because speculation deliberately races two
# attempts of one partition against an exactly-once commit (plus the
# watchdog thread scanning heartbeats that task threads publish). The
# statistics suite joins both lanes: ANALYZE TABLE racing queries,
# re-registration and the copy-on-write staleness swap are its TSan
# surface, and the HLL/histogram buffers its ASan surface.
cmake -B build-tsan -S . -DSSQL_SANITIZE=thread >/dev/null
cmake --build build-tsan -j --target test_concurrency --target test_system_tables --target test_fault_tolerance --target test_statistics --target test_chaos --target test_vectorized --target test_property_end_to_end --target test_flight_recorder >/dev/null
./build-tsan/tests/test_concurrency
./build-tsan/tests/test_system_tables
./build-tsan/tests/test_fault_tolerance
./build-tsan/tests/test_statistics
# Vectorized suites under TSan: batch partitions are produced by parallel
# tasks sharing decoded column vectors (shared_ptr columns aliased by
# FilterView windows across task boundaries), and the property sweep runs
# the same shapes through the speculatable task runner.
./build-tsan/tests/test_vectorized
./build-tsan/tests/test_property_end_to_end
# Flight recorder under TSan: emitters on every engine thread race
# snapshot readers, the sampler thread, and a mid-flight reconfigure.
./build-tsan/tests/test_flight_recorder

# Chaos harness: seeded rounds of concurrent queries with random fault
# injection at every I/O boundary — speculation, the watchdog and corrupt
# spill-bit rules armed — checking post-round invariants (memory pool
# drained, disk quota released, spill dir empty, no stuck admission
# tickets). 10 distinct seeds, each under both ASan and TSan — faults take
# error paths the happy-path suites never reach, which is exactly where
# use-after-free and lock-order bugs hide. (SSQL_CHAOS_SPECULATION=0
# disarms speculation when bisecting a failing seed.)
for seed in 1 2 3 4 5 6 7 8 9 10; do
  echo "chaos seed ${seed} (ASan)"
  SSQL_CHAOS_SEED="${seed}" ./build-sanitize/tests/test_chaos
  echo "chaos seed ${seed} (TSan)"
  SSQL_CHAOS_SEED="${seed}" ./build-tsan/tests/test_chaos
done

# Vectorized chaos lane: same fault storm over the batched pipeline with a
# degenerate batch size (SSQL_BATCH_SIZE=1 caches the workload tables and
# forces one row per batch — the maximum rate of batch-boundary crossings,
# where selection-vector and null-mask bugs live).
for seed in 1 2 3; do
  echo "chaos seed ${seed} batch_size=1 (ASan)"
  SSQL_BATCH_SIZE=1 SSQL_CHAOS_SEED="${seed}" ./build-sanitize/tests/test_chaos
  echo "chaos seed ${seed} batch_size=1 (TSan)"
  SSQL_BATCH_SIZE=1 SSQL_CHAOS_SEED="${seed}" ./build-tsan/tests/test_chaos
done

# Smoke the instrumentation-overhead benchmark (a few quick repetitions; the
# full comparison is a manual/CI readout, not a gate).
./build/bench/bench_observe --benchmark_min_time=0.05
