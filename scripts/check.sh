#!/usr/bin/env bash
# Tier-1 check: full build + test suite, then the fault-tolerance,
# memory/spill and observability tests again under AddressSanitizer/UBSan
# (retry, cancellation, reservation accounting, spill-file cleanup and the
# concurrent span/counter updates exercise concurrent code and raw buffers
# worth running instrumented), then the concurrency suite under
# ThreadSanitizer. Finishes with a quick overhead sanity pass of
# bench_observe (profiled vs un-profiled execution).
set -euo pipefail
cd "$(dirname "$0")/.."

cmake -B build -S . >/dev/null
cmake --build build -j >/dev/null
(cd build && ctest --output-on-failure -j "$(nproc)")

cmake -B build-sanitize -S . -DSSQL_SANITIZE=address >/dev/null
cmake --build build-sanitize -j --target test_fault_tolerance --target test_memory --target test_observability --target test_system_tables >/dev/null
./build-sanitize/tests/test_fault_tolerance
./build-sanitize/tests/test_memory
./build-sanitize/tests/test_observability
./build-sanitize/tests/test_system_tables

# The concurrency suite (N driver threads on one SqlContext) again under
# ThreadSanitizer: races between QueryContexts, the admission gate, and the
# shared memory pool are exactly what TSan exists to catch. The system-table
# suite joins it because its scans read live engine state (active query list,
# metrics registry, memory pool) while other threads mutate it.
cmake -B build-tsan -S . -DSSQL_SANITIZE=thread >/dev/null
cmake --build build-tsan -j --target test_concurrency --target test_system_tables >/dev/null
./build-tsan/tests/test_concurrency
./build-tsan/tests/test_system_tables

# Smoke the instrumentation-overhead benchmark (a few quick repetitions; the
# full comparison is a manual/CI readout, not a gate).
./build/bench/bench_observe --benchmark_min_time=0.05
