# Empty compiler generated dependencies file for bench_columnar_cache.
# This may be replaced when dependencies are built.
