file(REMOVE_RECURSE
  "CMakeFiles/bench_columnar_cache.dir/bench_columnar_cache.cc.o"
  "CMakeFiles/bench_columnar_cache.dir/bench_columnar_cache.cc.o.d"
  "bench_columnar_cache"
  "bench_columnar_cache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_columnar_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
