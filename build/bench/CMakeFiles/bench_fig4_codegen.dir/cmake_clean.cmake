file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_codegen.dir/bench_fig4_codegen.cc.o"
  "CMakeFiles/bench_fig4_codegen.dir/bench_fig4_codegen.cc.o.d"
  "bench_fig4_codegen"
  "bench_fig4_codegen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_codegen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
