# Empty dependencies file for bench_fig4_codegen.
# This may be replaced when dependencies are built.
