
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_join_selection.cc" "bench/CMakeFiles/bench_join_selection.dir/bench_join_selection.cc.o" "gcc" "bench/CMakeFiles/bench_join_selection.dir/bench_join_selection.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/ssql_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ssql_online.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ssql_api.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ssql_exec.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ssql_datasources.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ssql_columnar.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ssql_sql.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ssql_catalyst.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ssql_engine.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ssql_types.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ssql_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
