file(REMOVE_RECURSE
  "CMakeFiles/bench_join_selection.dir/bench_join_selection.cc.o"
  "CMakeFiles/bench_join_selection.dir/bench_join_selection.cc.o.d"
  "bench_join_selection"
  "bench_join_selection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_join_selection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
