file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_amplab.dir/bench_fig8_amplab.cc.o"
  "CMakeFiles/bench_fig8_amplab.dir/bench_fig8_amplab.cc.o.d"
  "bench_fig8_amplab"
  "bench_fig8_amplab.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_amplab.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
