# Empty dependencies file for bench_fig9_dataframe_vs_rdd.
# This may be replaced when dependencies are built.
