file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9_dataframe_vs_rdd.dir/bench_fig9_dataframe_vs_rdd.cc.o"
  "CMakeFiles/bench_fig9_dataframe_vs_rdd.dir/bench_fig9_dataframe_vs_rdd.cc.o.d"
  "bench_fig9_dataframe_vs_rdd"
  "bench_fig9_dataframe_vs_rdd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_dataframe_vs_rdd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
