file(REMOVE_RECURSE
  "CMakeFiles/bench_range_join.dir/bench_range_join.cc.o"
  "CMakeFiles/bench_range_join.dir/bench_range_join.cc.o.d"
  "bench_range_join"
  "bench_range_join.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_range_join.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
