# Empty dependencies file for bench_range_join.
# This may be replaced when dependencies are built.
