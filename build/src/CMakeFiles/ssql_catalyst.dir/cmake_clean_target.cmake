file(REMOVE_RECURSE
  "libssql_catalyst.a"
)
