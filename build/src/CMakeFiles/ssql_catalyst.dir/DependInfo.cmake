
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/catalyst/analysis/analyzer.cc" "src/CMakeFiles/ssql_catalyst.dir/catalyst/analysis/analyzer.cc.o" "gcc" "src/CMakeFiles/ssql_catalyst.dir/catalyst/analysis/analyzer.cc.o.d"
  "/root/repo/src/catalyst/analysis/catalog.cc" "src/CMakeFiles/ssql_catalyst.dir/catalyst/analysis/catalog.cc.o" "gcc" "src/CMakeFiles/ssql_catalyst.dir/catalyst/analysis/catalog.cc.o.d"
  "/root/repo/src/catalyst/analysis/function_registry.cc" "src/CMakeFiles/ssql_catalyst.dir/catalyst/analysis/function_registry.cc.o" "gcc" "src/CMakeFiles/ssql_catalyst.dir/catalyst/analysis/function_registry.cc.o.d"
  "/root/repo/src/catalyst/analysis/type_coercion.cc" "src/CMakeFiles/ssql_catalyst.dir/catalyst/analysis/type_coercion.cc.o" "gcc" "src/CMakeFiles/ssql_catalyst.dir/catalyst/analysis/type_coercion.cc.o.d"
  "/root/repo/src/catalyst/codegen/compiled_expression.cc" "src/CMakeFiles/ssql_catalyst.dir/catalyst/codegen/compiled_expression.cc.o" "gcc" "src/CMakeFiles/ssql_catalyst.dir/catalyst/codegen/compiled_expression.cc.o.d"
  "/root/repo/src/catalyst/expr/aggregates.cc" "src/CMakeFiles/ssql_catalyst.dir/catalyst/expr/aggregates.cc.o" "gcc" "src/CMakeFiles/ssql_catalyst.dir/catalyst/expr/aggregates.cc.o.d"
  "/root/repo/src/catalyst/expr/arithmetic.cc" "src/CMakeFiles/ssql_catalyst.dir/catalyst/expr/arithmetic.cc.o" "gcc" "src/CMakeFiles/ssql_catalyst.dir/catalyst/expr/arithmetic.cc.o.d"
  "/root/repo/src/catalyst/expr/attribute.cc" "src/CMakeFiles/ssql_catalyst.dir/catalyst/expr/attribute.cc.o" "gcc" "src/CMakeFiles/ssql_catalyst.dir/catalyst/expr/attribute.cc.o.d"
  "/root/repo/src/catalyst/expr/case_when.cc" "src/CMakeFiles/ssql_catalyst.dir/catalyst/expr/case_when.cc.o" "gcc" "src/CMakeFiles/ssql_catalyst.dir/catalyst/expr/case_when.cc.o.d"
  "/root/repo/src/catalyst/expr/cast.cc" "src/CMakeFiles/ssql_catalyst.dir/catalyst/expr/cast.cc.o" "gcc" "src/CMakeFiles/ssql_catalyst.dir/catalyst/expr/cast.cc.o.d"
  "/root/repo/src/catalyst/expr/complex_types.cc" "src/CMakeFiles/ssql_catalyst.dir/catalyst/expr/complex_types.cc.o" "gcc" "src/CMakeFiles/ssql_catalyst.dir/catalyst/expr/complex_types.cc.o.d"
  "/root/repo/src/catalyst/expr/expression.cc" "src/CMakeFiles/ssql_catalyst.dir/catalyst/expr/expression.cc.o" "gcc" "src/CMakeFiles/ssql_catalyst.dir/catalyst/expr/expression.cc.o.d"
  "/root/repo/src/catalyst/expr/literal.cc" "src/CMakeFiles/ssql_catalyst.dir/catalyst/expr/literal.cc.o" "gcc" "src/CMakeFiles/ssql_catalyst.dir/catalyst/expr/literal.cc.o.d"
  "/root/repo/src/catalyst/expr/predicates.cc" "src/CMakeFiles/ssql_catalyst.dir/catalyst/expr/predicates.cc.o" "gcc" "src/CMakeFiles/ssql_catalyst.dir/catalyst/expr/predicates.cc.o.d"
  "/root/repo/src/catalyst/expr/string_ops.cc" "src/CMakeFiles/ssql_catalyst.dir/catalyst/expr/string_ops.cc.o" "gcc" "src/CMakeFiles/ssql_catalyst.dir/catalyst/expr/string_ops.cc.o.d"
  "/root/repo/src/catalyst/expr/udf_expr.cc" "src/CMakeFiles/ssql_catalyst.dir/catalyst/expr/udf_expr.cc.o" "gcc" "src/CMakeFiles/ssql_catalyst.dir/catalyst/expr/udf_expr.cc.o.d"
  "/root/repo/src/catalyst/optimizer/expression_rules.cc" "src/CMakeFiles/ssql_catalyst.dir/catalyst/optimizer/expression_rules.cc.o" "gcc" "src/CMakeFiles/ssql_catalyst.dir/catalyst/optimizer/expression_rules.cc.o.d"
  "/root/repo/src/catalyst/optimizer/optimizer.cc" "src/CMakeFiles/ssql_catalyst.dir/catalyst/optimizer/optimizer.cc.o" "gcc" "src/CMakeFiles/ssql_catalyst.dir/catalyst/optimizer/optimizer.cc.o.d"
  "/root/repo/src/catalyst/optimizer/plan_rules.cc" "src/CMakeFiles/ssql_catalyst.dir/catalyst/optimizer/plan_rules.cc.o" "gcc" "src/CMakeFiles/ssql_catalyst.dir/catalyst/optimizer/plan_rules.cc.o.d"
  "/root/repo/src/catalyst/plan/logical_plan.cc" "src/CMakeFiles/ssql_catalyst.dir/catalyst/plan/logical_plan.cc.o" "gcc" "src/CMakeFiles/ssql_catalyst.dir/catalyst/plan/logical_plan.cc.o.d"
  "/root/repo/src/catalyst/tree/rule_executor.cc" "src/CMakeFiles/ssql_catalyst.dir/catalyst/tree/rule_executor.cc.o" "gcc" "src/CMakeFiles/ssql_catalyst.dir/catalyst/tree/rule_executor.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/ssql_types.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ssql_engine.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ssql_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
