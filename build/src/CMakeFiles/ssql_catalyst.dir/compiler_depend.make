# Empty compiler generated dependencies file for ssql_catalyst.
# This may be replaced when dependencies are built.
