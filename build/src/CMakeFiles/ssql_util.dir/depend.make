# Empty dependencies file for ssql_util.
# This may be replaced when dependencies are built.
