file(REMOVE_RECURSE
  "CMakeFiles/ssql_util.dir/util/status.cc.o"
  "CMakeFiles/ssql_util.dir/util/status.cc.o.d"
  "CMakeFiles/ssql_util.dir/util/string_util.cc.o"
  "CMakeFiles/ssql_util.dir/util/string_util.cc.o.d"
  "CMakeFiles/ssql_util.dir/util/thread_pool.cc.o"
  "CMakeFiles/ssql_util.dir/util/thread_pool.cc.o.d"
  "libssql_util.a"
  "libssql_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ssql_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
