file(REMOVE_RECURSE
  "libssql_util.a"
)
