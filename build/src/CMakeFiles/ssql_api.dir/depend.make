# Empty dependencies file for ssql_api.
# This may be replaced when dependencies are built.
