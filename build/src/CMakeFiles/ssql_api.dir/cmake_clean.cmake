file(REMOVE_RECURSE
  "CMakeFiles/ssql_api.dir/api/column.cc.o"
  "CMakeFiles/ssql_api.dir/api/column.cc.o.d"
  "CMakeFiles/ssql_api.dir/api/dataframe.cc.o"
  "CMakeFiles/ssql_api.dir/api/dataframe.cc.o.d"
  "CMakeFiles/ssql_api.dir/api/sql_context.cc.o"
  "CMakeFiles/ssql_api.dir/api/sql_context.cc.o.d"
  "libssql_api.a"
  "libssql_api.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ssql_api.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
