file(REMOVE_RECURSE
  "libssql_api.a"
)
