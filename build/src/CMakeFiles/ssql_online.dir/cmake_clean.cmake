file(REMOVE_RECURSE
  "CMakeFiles/ssql_online.dir/online/online_aggregation.cc.o"
  "CMakeFiles/ssql_online.dir/online/online_aggregation.cc.o.d"
  "libssql_online.a"
  "libssql_online.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ssql_online.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
