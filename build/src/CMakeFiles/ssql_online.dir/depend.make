# Empty dependencies file for ssql_online.
# This may be replaced when dependencies are built.
