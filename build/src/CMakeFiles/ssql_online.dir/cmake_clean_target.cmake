file(REMOVE_RECURSE
  "libssql_online.a"
)
