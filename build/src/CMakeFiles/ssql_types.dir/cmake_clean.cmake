file(REMOVE_RECURSE
  "CMakeFiles/ssql_types.dir/types/data_type.cc.o"
  "CMakeFiles/ssql_types.dir/types/data_type.cc.o.d"
  "CMakeFiles/ssql_types.dir/types/decimal.cc.o"
  "CMakeFiles/ssql_types.dir/types/decimal.cc.o.d"
  "CMakeFiles/ssql_types.dir/types/row.cc.o"
  "CMakeFiles/ssql_types.dir/types/row.cc.o.d"
  "CMakeFiles/ssql_types.dir/types/schema.cc.o"
  "CMakeFiles/ssql_types.dir/types/schema.cc.o.d"
  "CMakeFiles/ssql_types.dir/types/value.cc.o"
  "CMakeFiles/ssql_types.dir/types/value.cc.o.d"
  "libssql_types.a"
  "libssql_types.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ssql_types.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
