file(REMOVE_RECURSE
  "libssql_types.a"
)
