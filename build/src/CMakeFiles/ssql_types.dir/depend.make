# Empty dependencies file for ssql_types.
# This may be replaced when dependencies are built.
