file(REMOVE_RECURSE
  "libssql_engine.a"
)
