
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/engine/dataset.cc" "src/CMakeFiles/ssql_engine.dir/engine/dataset.cc.o" "gcc" "src/CMakeFiles/ssql_engine.dir/engine/dataset.cc.o.d"
  "/root/repo/src/engine/exec_context.cc" "src/CMakeFiles/ssql_engine.dir/engine/exec_context.cc.o" "gcc" "src/CMakeFiles/ssql_engine.dir/engine/exec_context.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/ssql_types.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ssql_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
