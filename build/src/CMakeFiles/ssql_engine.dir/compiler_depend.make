# Empty compiler generated dependencies file for ssql_engine.
# This may be replaced when dependencies are built.
