file(REMOVE_RECURSE
  "CMakeFiles/ssql_engine.dir/engine/dataset.cc.o"
  "CMakeFiles/ssql_engine.dir/engine/dataset.cc.o.d"
  "CMakeFiles/ssql_engine.dir/engine/exec_context.cc.o"
  "CMakeFiles/ssql_engine.dir/engine/exec_context.cc.o.d"
  "libssql_engine.a"
  "libssql_engine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ssql_engine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
