# Empty compiler generated dependencies file for ssql_datasources.
# This may be replaced when dependencies are built.
