file(REMOVE_RECURSE
  "CMakeFiles/ssql_datasources.dir/datasources/colf_format.cc.o"
  "CMakeFiles/ssql_datasources.dir/datasources/colf_format.cc.o.d"
  "CMakeFiles/ssql_datasources.dir/datasources/csv_source.cc.o"
  "CMakeFiles/ssql_datasources.dir/datasources/csv_source.cc.o.d"
  "CMakeFiles/ssql_datasources.dir/datasources/data_source.cc.o"
  "CMakeFiles/ssql_datasources.dir/datasources/data_source.cc.o.d"
  "CMakeFiles/ssql_datasources.dir/datasources/json_parser.cc.o"
  "CMakeFiles/ssql_datasources.dir/datasources/json_parser.cc.o.d"
  "CMakeFiles/ssql_datasources.dir/datasources/json_source.cc.o"
  "CMakeFiles/ssql_datasources.dir/datasources/json_source.cc.o.d"
  "CMakeFiles/ssql_datasources.dir/datasources/kvdb.cc.o"
  "CMakeFiles/ssql_datasources.dir/datasources/kvdb.cc.o.d"
  "CMakeFiles/ssql_datasources.dir/datasources/schema_inference.cc.o"
  "CMakeFiles/ssql_datasources.dir/datasources/schema_inference.cc.o.d"
  "libssql_datasources.a"
  "libssql_datasources.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ssql_datasources.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
