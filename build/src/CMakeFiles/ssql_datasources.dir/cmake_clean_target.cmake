file(REMOVE_RECURSE
  "libssql_datasources.a"
)
