
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/datasources/colf_format.cc" "src/CMakeFiles/ssql_datasources.dir/datasources/colf_format.cc.o" "gcc" "src/CMakeFiles/ssql_datasources.dir/datasources/colf_format.cc.o.d"
  "/root/repo/src/datasources/csv_source.cc" "src/CMakeFiles/ssql_datasources.dir/datasources/csv_source.cc.o" "gcc" "src/CMakeFiles/ssql_datasources.dir/datasources/csv_source.cc.o.d"
  "/root/repo/src/datasources/data_source.cc" "src/CMakeFiles/ssql_datasources.dir/datasources/data_source.cc.o" "gcc" "src/CMakeFiles/ssql_datasources.dir/datasources/data_source.cc.o.d"
  "/root/repo/src/datasources/json_parser.cc" "src/CMakeFiles/ssql_datasources.dir/datasources/json_parser.cc.o" "gcc" "src/CMakeFiles/ssql_datasources.dir/datasources/json_parser.cc.o.d"
  "/root/repo/src/datasources/json_source.cc" "src/CMakeFiles/ssql_datasources.dir/datasources/json_source.cc.o" "gcc" "src/CMakeFiles/ssql_datasources.dir/datasources/json_source.cc.o.d"
  "/root/repo/src/datasources/kvdb.cc" "src/CMakeFiles/ssql_datasources.dir/datasources/kvdb.cc.o" "gcc" "src/CMakeFiles/ssql_datasources.dir/datasources/kvdb.cc.o.d"
  "/root/repo/src/datasources/schema_inference.cc" "src/CMakeFiles/ssql_datasources.dir/datasources/schema_inference.cc.o" "gcc" "src/CMakeFiles/ssql_datasources.dir/datasources/schema_inference.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/ssql_catalyst.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ssql_columnar.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ssql_engine.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ssql_types.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ssql_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
