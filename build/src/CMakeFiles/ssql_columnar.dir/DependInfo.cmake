
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/columnar/column_vector.cc" "src/CMakeFiles/ssql_columnar.dir/columnar/column_vector.cc.o" "gcc" "src/CMakeFiles/ssql_columnar.dir/columnar/column_vector.cc.o.d"
  "/root/repo/src/columnar/columnar_cache.cc" "src/CMakeFiles/ssql_columnar.dir/columnar/columnar_cache.cc.o" "gcc" "src/CMakeFiles/ssql_columnar.dir/columnar/columnar_cache.cc.o.d"
  "/root/repo/src/columnar/encoding.cc" "src/CMakeFiles/ssql_columnar.dir/columnar/encoding.cc.o" "gcc" "src/CMakeFiles/ssql_columnar.dir/columnar/encoding.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/ssql_types.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ssql_engine.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ssql_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
