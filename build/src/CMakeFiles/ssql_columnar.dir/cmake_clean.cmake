file(REMOVE_RECURSE
  "CMakeFiles/ssql_columnar.dir/columnar/column_vector.cc.o"
  "CMakeFiles/ssql_columnar.dir/columnar/column_vector.cc.o.d"
  "CMakeFiles/ssql_columnar.dir/columnar/columnar_cache.cc.o"
  "CMakeFiles/ssql_columnar.dir/columnar/columnar_cache.cc.o.d"
  "CMakeFiles/ssql_columnar.dir/columnar/encoding.cc.o"
  "CMakeFiles/ssql_columnar.dir/columnar/encoding.cc.o.d"
  "libssql_columnar.a"
  "libssql_columnar.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ssql_columnar.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
