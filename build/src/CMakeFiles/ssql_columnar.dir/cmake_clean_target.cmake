file(REMOVE_RECURSE
  "libssql_columnar.a"
)
