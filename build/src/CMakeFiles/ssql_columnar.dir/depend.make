# Empty dependencies file for ssql_columnar.
# This may be replaced when dependencies are built.
