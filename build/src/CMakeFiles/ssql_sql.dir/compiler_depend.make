# Empty compiler generated dependencies file for ssql_sql.
# This may be replaced when dependencies are built.
