file(REMOVE_RECURSE
  "CMakeFiles/ssql_sql.dir/sql/lexer.cc.o"
  "CMakeFiles/ssql_sql.dir/sql/lexer.cc.o.d"
  "CMakeFiles/ssql_sql.dir/sql/parser.cc.o"
  "CMakeFiles/ssql_sql.dir/sql/parser.cc.o.d"
  "libssql_sql.a"
  "libssql_sql.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ssql_sql.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
