file(REMOVE_RECURSE
  "libssql_sql.a"
)
