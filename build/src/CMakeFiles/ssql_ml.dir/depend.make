# Empty dependencies file for ssql_ml.
# This may be replaced when dependencies are built.
