file(REMOVE_RECURSE
  "libssql_ml.a"
)
