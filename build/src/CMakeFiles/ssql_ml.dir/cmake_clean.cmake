file(REMOVE_RECURSE
  "CMakeFiles/ssql_ml.dir/ml/hashing_tf.cc.o"
  "CMakeFiles/ssql_ml.dir/ml/hashing_tf.cc.o.d"
  "CMakeFiles/ssql_ml.dir/ml/logistic_regression.cc.o"
  "CMakeFiles/ssql_ml.dir/ml/logistic_regression.cc.o.d"
  "CMakeFiles/ssql_ml.dir/ml/pipeline.cc.o"
  "CMakeFiles/ssql_ml.dir/ml/pipeline.cc.o.d"
  "CMakeFiles/ssql_ml.dir/ml/tokenizer.cc.o"
  "CMakeFiles/ssql_ml.dir/ml/tokenizer.cc.o.d"
  "CMakeFiles/ssql_ml.dir/ml/vector_udt.cc.o"
  "CMakeFiles/ssql_ml.dir/ml/vector_udt.cc.o.d"
  "libssql_ml.a"
  "libssql_ml.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ssql_ml.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
