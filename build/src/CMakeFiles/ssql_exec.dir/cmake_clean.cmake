file(REMOVE_RECURSE
  "CMakeFiles/ssql_exec.dir/catalyst/planner/cost_model.cc.o"
  "CMakeFiles/ssql_exec.dir/catalyst/planner/cost_model.cc.o.d"
  "CMakeFiles/ssql_exec.dir/catalyst/planner/planner.cc.o"
  "CMakeFiles/ssql_exec.dir/catalyst/planner/planner.cc.o.d"
  "CMakeFiles/ssql_exec.dir/exec/aggregate_exec.cc.o"
  "CMakeFiles/ssql_exec.dir/exec/aggregate_exec.cc.o.d"
  "CMakeFiles/ssql_exec.dir/exec/exchange_exec.cc.o"
  "CMakeFiles/ssql_exec.dir/exec/exchange_exec.cc.o.d"
  "CMakeFiles/ssql_exec.dir/exec/interval_join_exec.cc.o"
  "CMakeFiles/ssql_exec.dir/exec/interval_join_exec.cc.o.d"
  "CMakeFiles/ssql_exec.dir/exec/join_exec.cc.o"
  "CMakeFiles/ssql_exec.dir/exec/join_exec.cc.o.d"
  "CMakeFiles/ssql_exec.dir/exec/physical_plan.cc.o"
  "CMakeFiles/ssql_exec.dir/exec/physical_plan.cc.o.d"
  "CMakeFiles/ssql_exec.dir/exec/scan_exec.cc.o"
  "CMakeFiles/ssql_exec.dir/exec/scan_exec.cc.o.d"
  "CMakeFiles/ssql_exec.dir/exec/sort_limit_exec.cc.o"
  "CMakeFiles/ssql_exec.dir/exec/sort_limit_exec.cc.o.d"
  "libssql_exec.a"
  "libssql_exec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ssql_exec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
