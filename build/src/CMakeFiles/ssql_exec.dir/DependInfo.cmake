
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/catalyst/planner/cost_model.cc" "src/CMakeFiles/ssql_exec.dir/catalyst/planner/cost_model.cc.o" "gcc" "src/CMakeFiles/ssql_exec.dir/catalyst/planner/cost_model.cc.o.d"
  "/root/repo/src/catalyst/planner/planner.cc" "src/CMakeFiles/ssql_exec.dir/catalyst/planner/planner.cc.o" "gcc" "src/CMakeFiles/ssql_exec.dir/catalyst/planner/planner.cc.o.d"
  "/root/repo/src/exec/aggregate_exec.cc" "src/CMakeFiles/ssql_exec.dir/exec/aggregate_exec.cc.o" "gcc" "src/CMakeFiles/ssql_exec.dir/exec/aggregate_exec.cc.o.d"
  "/root/repo/src/exec/exchange_exec.cc" "src/CMakeFiles/ssql_exec.dir/exec/exchange_exec.cc.o" "gcc" "src/CMakeFiles/ssql_exec.dir/exec/exchange_exec.cc.o.d"
  "/root/repo/src/exec/interval_join_exec.cc" "src/CMakeFiles/ssql_exec.dir/exec/interval_join_exec.cc.o" "gcc" "src/CMakeFiles/ssql_exec.dir/exec/interval_join_exec.cc.o.d"
  "/root/repo/src/exec/join_exec.cc" "src/CMakeFiles/ssql_exec.dir/exec/join_exec.cc.o" "gcc" "src/CMakeFiles/ssql_exec.dir/exec/join_exec.cc.o.d"
  "/root/repo/src/exec/physical_plan.cc" "src/CMakeFiles/ssql_exec.dir/exec/physical_plan.cc.o" "gcc" "src/CMakeFiles/ssql_exec.dir/exec/physical_plan.cc.o.d"
  "/root/repo/src/exec/scan_exec.cc" "src/CMakeFiles/ssql_exec.dir/exec/scan_exec.cc.o" "gcc" "src/CMakeFiles/ssql_exec.dir/exec/scan_exec.cc.o.d"
  "/root/repo/src/exec/sort_limit_exec.cc" "src/CMakeFiles/ssql_exec.dir/exec/sort_limit_exec.cc.o" "gcc" "src/CMakeFiles/ssql_exec.dir/exec/sort_limit_exec.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/ssql_catalyst.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ssql_datasources.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ssql_columnar.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ssql_engine.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ssql_types.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ssql_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
