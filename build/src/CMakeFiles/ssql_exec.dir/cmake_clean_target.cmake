file(REMOVE_RECURSE
  "libssql_exec.a"
)
