# Empty dependencies file for ssql_exec.
# This may be replaced when dependencies are built.
