file(REMOVE_RECURSE
  "CMakeFiles/test_range_join.dir/test_range_join.cc.o"
  "CMakeFiles/test_range_join.dir/test_range_join.cc.o.d"
  "test_range_join"
  "test_range_join.pdb"
  "test_range_join[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_range_join.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
