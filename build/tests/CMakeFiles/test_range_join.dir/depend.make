# Empty dependencies file for test_range_join.
# This may be replaced when dependencies are built.
