file(REMOVE_RECURSE
  "CMakeFiles/test_write_path.dir/test_write_path.cc.o"
  "CMakeFiles/test_write_path.dir/test_write_path.cc.o.d"
  "test_write_path"
  "test_write_path.pdb"
  "test_write_path[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_write_path.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
