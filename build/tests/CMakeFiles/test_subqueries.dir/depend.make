# Empty dependencies file for test_subqueries.
# This may be replaced when dependencies are built.
