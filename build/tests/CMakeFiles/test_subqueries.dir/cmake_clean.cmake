file(REMOVE_RECURSE
  "CMakeFiles/test_subqueries.dir/test_subqueries.cc.o"
  "CMakeFiles/test_subqueries.dir/test_subqueries.cc.o.d"
  "test_subqueries"
  "test_subqueries.pdb"
  "test_subqueries[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_subqueries.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
