file(REMOVE_RECURSE
  "CMakeFiles/test_value_types.dir/test_value_types.cc.o"
  "CMakeFiles/test_value_types.dir/test_value_types.cc.o.d"
  "test_value_types"
  "test_value_types.pdb"
  "test_value_types[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_value_types.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
