# Empty compiler generated dependencies file for test_datasources.
# This may be replaced when dependencies are built.
