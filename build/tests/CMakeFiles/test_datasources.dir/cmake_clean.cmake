file(REMOVE_RECURSE
  "CMakeFiles/test_datasources.dir/test_datasources.cc.o"
  "CMakeFiles/test_datasources.dir/test_datasources.cc.o.d"
  "test_datasources"
  "test_datasources.pdb"
  "test_datasources[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_datasources.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
