file(REMOVE_RECURSE
  "CMakeFiles/test_expressions.dir/test_expressions.cc.o"
  "CMakeFiles/test_expressions.dir/test_expressions.cc.o.d"
  "test_expressions"
  "test_expressions.pdb"
  "test_expressions[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_expressions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
