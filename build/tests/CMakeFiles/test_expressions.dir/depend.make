# Empty dependencies file for test_expressions.
# This may be replaced when dependencies are built.
