file(REMOVE_RECURSE
  "CMakeFiles/test_online_agg.dir/test_online_agg.cc.o"
  "CMakeFiles/test_online_agg.dir/test_online_agg.cc.o.d"
  "test_online_agg"
  "test_online_agg.pdb"
  "test_online_agg[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_online_agg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
