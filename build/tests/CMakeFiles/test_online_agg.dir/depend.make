# Empty dependencies file for test_online_agg.
# This may be replaced when dependencies are built.
