# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_value_types[1]_include.cmake")
include("/root/repo/build/tests/test_expressions[1]_include.cmake")
include("/root/repo/build/tests/test_analyzer[1]_include.cmake")
include("/root/repo/build/tests/test_optimizer[1]_include.cmake")
include("/root/repo/build/tests/test_codegen[1]_include.cmake")
include("/root/repo/build/tests/test_end_to_end[1]_include.cmake")
include("/root/repo/build/tests/test_json[1]_include.cmake")
include("/root/repo/build/tests/test_datasources[1]_include.cmake")
include("/root/repo/build/tests/test_columnar[1]_include.cmake")
include("/root/repo/build/tests/test_engine[1]_include.cmake")
include("/root/repo/build/tests/test_exec[1]_include.cmake")
include("/root/repo/build/tests/test_range_join[1]_include.cmake")
include("/root/repo/build/tests/test_ml[1]_include.cmake")
include("/root/repo/build/tests/test_online_agg[1]_include.cmake")
include("/root/repo/build/tests/test_sql_parser[1]_include.cmake")
include("/root/repo/build/tests/test_subqueries[1]_include.cmake")
include("/root/repo/build/tests/test_api[1]_include.cmake")
include("/root/repo/build/tests/test_write_path[1]_include.cmake")
include("/root/repo/build/tests/test_property_end_to_end[1]_include.cmake")
include("/root/repo/build/tests/test_util[1]_include.cmake")
