file(REMOVE_RECURSE
  "CMakeFiles/genomics_range_join.dir/genomics_range_join.cpp.o"
  "CMakeFiles/genomics_range_join.dir/genomics_range_join.cpp.o.d"
  "genomics_range_join"
  "genomics_range_join.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/genomics_range_join.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
