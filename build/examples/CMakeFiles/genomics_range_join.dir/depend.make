# Empty dependencies file for genomics_range_join.
# This may be replaced when dependencies are built.
