file(REMOVE_RECURSE
  "CMakeFiles/json_tweets.dir/json_tweets.cpp.o"
  "CMakeFiles/json_tweets.dir/json_tweets.cpp.o.d"
  "json_tweets"
  "json_tweets.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/json_tweets.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
