# Empty compiler generated dependencies file for json_tweets.
# This may be replaced when dependencies are built.
