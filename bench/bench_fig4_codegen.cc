// Figure 4: "A comparison of the performance evaluating the expression
// x+x+x, where x is an integer, 1 billion times."
//
// The paper compares: intepreted (tree-walking) evaluation, hand-written
// code, and quasiquote-generated code — showing generated code matches
// hand-written. Here: the Catalyst tree interpreter over boxed Values, the
// compiled register program (our codegen analogue), and a raw C++ loop.
// The iteration count is scaled; google-benchmark reports per-item time,
// so the *ratios* are directly comparable to Figure 4's bar heights.

#include <benchmark/benchmark.h>

#include "catalyst/codegen/compiled_expression.h"
#include "catalyst/expr/arithmetic.h"
#include "catalyst/expr/expression.h"
#include "columnar/row_batch.h"

namespace ssql {
namespace {

// x + x + x over the single int column of the input row.
ExprPtr BuildXPlusXPlusX() {
  ExprPtr x = BoundReference::Make(0, DataType::Int32(), false);
  return Add::Make(Add::Make(x, x), x);
}

void BM_Fig4_Interpreted(benchmark::State& state) {
  ExprPtr expr = BuildXPlusXPlusX();
  Row row({Value(int32_t{7})});
  int64_t sink = 0;
  for (auto _ : state) {
    Value v = expr->Eval(row);
    sink += v.AsInt64();
  }
  benchmark::DoNotOptimize(sink);
  state.SetItemsProcessed(state.iterations());
  state.SetLabel("tree-walking interpreter over boxed values");
}
BENCHMARK(BM_Fig4_Interpreted);

void BM_Fig4_Compiled(benchmark::State& state) {
  ExprPtr expr = BuildXPlusXPlusX();
  auto compiled = CompiledExpression::Compile(expr);
  auto evaluator = compiled->NewEvaluator();
  Row row({Value(int32_t{7})});
  int64_t sink = 0;
  bool is_null = false;
  for (auto _ : state) {
    sink += evaluator.EvaluateInt64(row, &is_null);
  }
  benchmark::DoNotOptimize(sink);
  state.SetItemsProcessed(state.iterations());
  state.SetLabel("code generation (register program)");
}
BENCHMARK(BM_Fig4_Compiled);

void BM_Fig4_Vectorized(benchmark::State& state) {
  // The same register program evaluated over a RowBatch: one lane loop per
  // instruction instead of re-entering the program per row. Per-item time
  // is directly comparable to the other bars.
  ExprPtr expr = BuildXPlusXPlusX();
  auto compiled = CompiledExpression::Compile(expr);
  auto evaluator = compiled->NewVectorEvaluator();
  constexpr size_t kBatch = 1024;
  auto col = std::make_shared<ColumnVector>(DataType::Int32());
  col->Reserve(kBatch);
  for (size_t i = 0; i < kBatch; ++i) {
    col->Append(Value(static_cast<int32_t>(7)));
  }
  RowBatch batch({col});
  int64_t sink = 0;
  for (auto _ : state) {
    ColumnVector out(compiled->result_type());
    out.Reserve(kBatch);
    evaluator.EvaluateColumn(batch, &out);
    sink += out.ints().back();
  }
  benchmark::DoNotOptimize(sink);
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(kBatch));
  state.SetLabel("vectorized register program over a 1K-row batch");
}
BENCHMARK(BM_Fig4_Vectorized);

void BM_Fig4_HandWritten(benchmark::State& state) {
  // A hand-written program over the same record layout: one direct field
  // load, then x+x+x — no tree walk, no dispatch.
  Row row({Value(int32_t{7})});
  int64_t sink = 0;
  for (auto _ : state) {
    int32_t v = row.GetInt32(0);
    benchmark::DoNotOptimize(v);
    sink += v + v + v;
  }
  benchmark::DoNotOptimize(sink);
  state.SetItemsProcessed(state.iterations());
  state.SetLabel("hand-written C++ loop over the same row");
}
BENCHMARK(BM_Fig4_HandWritten);

}  // namespace
}  // namespace ssql

BENCHMARK_MAIN();
