// Straggler defense: tail latency of a stage with one 10x-slow partition,
// with and without speculative execution. The workload models a slow
// *executor*, not skewed data: the straggler partition's first attempt
// crawls, while a re-run of the same partition (the speculative duplicate)
// proceeds at normal speed — exactly the scenario Spark's speculation
// targets. The readout is slowdown_vs_median: stage wall time over the
// median healthy task time. Without speculation the stage is hostage to the
// straggler (~8-10x median); with speculation armed the duplicate bounds it
// to roughly first-completions + one duplicate runtime (~2x median).
//
// A second benchmark measures the cost of arming speculation on a healthy
// stage (no straggler): the coordinator thread, per-attempt tokens and
// runtime bookkeeping must be noise when nothing is actually slow.

#include <benchmark/benchmark.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <vector>

#include "engine/exec_context.h"
#include "engine/query_context.h"
#include "engine/task_runner.h"

namespace ssql {
namespace bench {
namespace {

constexpr size_t kPartitions = 4;
constexpr int64_t kStragglerFactor = 10;

/// Healthy runtime of partition p in milliseconds: 45/60/60/75 — a little
/// heterogeneity so the speculation coordinator sees a realistic duration
/// distribution (median 60 ms). The straggler is partition 0, the smallest:
/// a slow *node* hits whatever partition landed on it, and a sub-median
/// partition is the common case.
int64_t BaseMs(size_t p) {
  static constexpr int64_t kMs[kPartitions] = {45, 60, 60, 75};
  return kMs[p];
}

/// Compute-bound work for `target_ms`, polling cancellation cooperatively —
/// a cancelled (lost-race) attempt stops within one poll interval.
uint64_t SpinFor(QueryContext& ctx, int64_t target_ms) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(target_ms);
  uint64_t acc = 0x9e3779b97f4a7c15ULL;
  size_t poll = 0;
  while (std::chrono::steady_clock::now() < deadline) {
    for (int i = 0; i < 4096; ++i) {
      acc = acc * 6364136223846793005ULL + 1442695040888963407ULL;
    }
    ctx.CheckCancelledEvery(&poll);
  }
  return acc;
}

/// state.range(0): 1 = speculation armed, 0 = off.
/// state.range(1): 1 = partition 0's first attempt runs 10x slow.
void RunStragglerStage(benchmark::State& state) {
  const bool speculate = state.range(0) == 1;
  const bool straggle = state.range(1) == 1;
  EngineConfig config;
  config.num_threads = static_cast<int>(kPartitions);  // one wave
  if (speculate) {
    // Eager profile: once half the stage has finished, duplicate anything
    // running past the observed median. On a healthy stage this may probe
    // an occasional duplicate of the largest partition (cancelled within a
    // poll interval when the primary commits); the wall time must not move.
    config.speculation_multiplier = 1.0;
    config.speculation_quantile = 0.5;
  }
  ExecContext engine(config);

  int64_t median_ms = BaseMs(kPartitions / 2);
  double wall_ms_total = 0;
  uint64_t sink = 0;
  for (auto _ : state) {
    QueryContextPtr query = engine.BeginQuery();
    QueryContext& ctx = *query;
    std::vector<std::atomic<int>> attempts(kPartitions);
    std::vector<std::atomic<uint64_t>> results(kPartitions);
    const auto start = std::chrono::steady_clock::now();
    TaskRunner(ctx).RunStageSpeculatable(
        "straggle", kPartitions, [&](size_t p) -> TaskRunner::TaskCommitFn {
          const int attempt = attempts[p].fetch_add(1);
          int64_t target = BaseMs(p);
          if (straggle && p == 0 && attempt == 0) target *= kStragglerFactor;
          const uint64_t acc = SpinFor(ctx, target);
          return [&results, p, acc] {
            results[p].store(acc, std::memory_order_relaxed);
          };
        });
    wall_ms_total +=
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - start)
            .count();
    for (size_t p = 0; p < kPartitions; ++p) {
      sink ^= results[p].load(std::memory_order_relaxed);
    }
    query->Finish("ok");
  }
  benchmark::DoNotOptimize(sink);

  const double mean_wall = wall_ms_total / static_cast<double>(state.iterations());
  state.counters["stage_wall_ms"] = mean_wall;
  state.counters["median_task_ms"] = static_cast<double>(median_ms);
  state.counters["slowdown_vs_median"] =
      mean_wall / static_cast<double>(median_ms);
  state.counters["tasks_speculated"] = static_cast<double>(
      engine.registry().Counter("ssql_tasks_speculated_total").value());
  state.counters["speculation_wins"] = static_cast<double>(
      engine.registry().Counter("ssql_speculation_wins_total").value());
}

void BM_StragglerStage(benchmark::State& state) { RunStragglerStage(state); }

// {speculation, straggler}: the headline pair is {0,1} vs {1,1} — the tail
// latency of a straggling stage without/with defense. {0,0} vs {1,0} is the
// overhead pair: arming speculation on a healthy stage must cost nothing.
BENCHMARK(BM_StragglerStage)
    ->Args({0, 1})
    ->Args({1, 1})
    ->Args({0, 0})
    ->Args({1, 0})
    ->Iterations(5)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace bench
}  // namespace ssql

BENCHMARK_MAIN();
