// Figure 8: "Performance of Shark, Impala and Spark SQL on the big data
// benchmark queries" (Section 6.1).
//
// Engines:
//   shark      — this engine with the Hive-era feature set: no codegen, no
//                pushdown, no join selection, no operator fusion.
//   sparksql   — the full stack.
//   impala     — hand-written native C++ loops over columnar arrays (the
//                role Impala's C++/LLVM engine plays in the paper: the
//                native-code lower bound).
//
// Queries (Pavlo et al. web-analytics workload):
//   Q1x: SELECT pageURL, pageRank FROM rankings WHERE pageRank > X
//   Q2x: SELECT SUBSTR(sourceIP,1,X), SUM(adRevenue) FROM uservisits GROUP BY ..
//   Q3x: rankings JOIN uservisits date-windowed, GROUP BY sourceIP,
//        ORDER BY totalRevenue DESC LIMIT 1
//   Q4 : UDF word extraction + count over a document corpus (MapReduce-
//        style; "largely bound by the CPU cost of the UDF").
// The a/b/c variants step the selectivity, as in the benchmark.
//
// Expected shape (paper): sparksql beats shark everywhere (codegen), and
// approaches impala except on 3a, where the cost model's ignorance of
// filter selectivity picks the worse join (see cost_model.h).

#include <benchmark/benchmark.h>

#include <map>
#include <unordered_map>

#include "bench/workloads.h"
#include "engine/rdd.h"

namespace ssql {
namespace bench {
namespace {

constexpr size_t kRankings = 60000;
constexpr size_t kUserVisits = 200000;
constexpr size_t kDocuments = 20000;

// The uservisits colf file is ~10 MB; a 4 MB broadcast threshold makes the
// Q3 join-order decision non-trivial: the unfiltered visits side never
// broadcasts, so only a cost model that understands the date filter's
// selectivity (the CBO variant) finds the plan Impala uses on 3a.
constexpr uint64_t kFig8BroadcastThreshold = 4ull * 1024 * 1024;

EngineConfig Fig8SparkSqlConfig() {
  EngineConfig config = SparkSqlConfig();
  config.broadcast_threshold_bytes = kFig8BroadcastThreshold;
  return config;
}

EngineConfig Fig8SharkConfig() {
  EngineConfig config = SharkConfig();
  config.broadcast_threshold_bytes = kFig8BroadcastThreshold;
  return config;
}

EngineConfig CboConfig() {
  EngineConfig config = Fig8SparkSqlConfig();
  config.cbo_filter_selectivity = true;  // the future-work cost model
  return config;
}

EngineConfig RowExecConfig() {
  // The Spark SQL engine with vectorized execution disabled: the volcano
  // row-at-a-time baseline, for a direct batched-vs-row comparison on the
  // same queries and data.
  EngineConfig config = Fig8SparkSqlConfig();
  config.vectorized_enabled = false;
  return config;
}

struct Fixture {
  RankingsData rankings = GenerateRankings(kRankings);
  UserVisitsData visits = GenerateUserVisits(kUserVisits, kRankings);
  std::vector<std::string> documents = GenerateDocuments(kDocuments);
  SqlContext shark{Fig8SharkConfig()};
  SqlContext sparksql{Fig8SparkSqlConfig()};
  SqlContext sparksql_cbo{CboConfig()};
  SqlContext sparksql_rows{RowExecConfig()};

  Fixture() {
    const std::string dir = "/tmp";
    SetupAmplabTables(shark, rankings, visits, dir);
    SetupAmplabTables(sparksql, rankings, visits, dir);
    SetupAmplabTables(sparksql_cbo, rankings, visits, dir);
    SetupAmplabTables(sparksql_rows, rankings, visits, dir);
  }
};

Fixture& F() {
  static Fixture* fixture = new Fixture();
  return *fixture;
}

// Q1/Q2/Q3 SQL by selectivity variant.
std::string Q1(int cutoff) {
  return "SELECT pageURL, pageRank FROM rankings WHERE pageRank > " +
         std::to_string(cutoff);
}
std::string Q2(int prefix) {
  return "SELECT substr(sourceIP, 1, " + std::to_string(prefix) +
         "), sum(adRevenue) FROM uservisits GROUP BY substr(sourceIP, 1, " +
         std::to_string(prefix) + ")";
}
std::string Q3(const std::string& until) {
  return "SELECT sourceIP, sum(adRevenue) AS totalRevenue, avg(pageRank) AS "
         "avgPageRank FROM rankings JOIN uservisits ON pageURL = destURL "
         "WHERE visitDate BETWEEN '1980-01-01' AND '" +
         until +
         "' GROUP BY sourceIP ORDER BY totalRevenue DESC LIMIT 1";
}

void RunSql(benchmark::State& state, SqlContext& ctx, const std::string& sql) {
  int64_t rows = 0;
  for (auto _ : state) {
    rows = static_cast<int64_t>(ctx.Sql(sql).Collect().size());
    benchmark::DoNotOptimize(rows);
  }
  state.counters["result_rows"] = static_cast<double>(rows);
}

// --- Q1: scan + filter ----------------------------------------------------

void BM_Q1_Engine(benchmark::State& state, const char* engine, int cutoff) {
  if (std::string(engine) == "impala") {
    const auto& r = F().rankings;
    size_t hits = 0;
    for (auto _ : state) {
      hits = 0;
      for (size_t i = 0; i < r.page_rank.size(); ++i) {
        if (r.page_rank[i] > cutoff) {
          benchmark::DoNotOptimize(r.page_url[i].data());
          ++hits;
        }
      }
      benchmark::DoNotOptimize(hits);
    }
    state.counters["result_rows"] = static_cast<double>(hits);
    return;
  }
  SqlContext& ctx = std::string(engine) == "shark"
                        ? F().shark
                        : std::string(engine) == "sparksql_rows"
                              ? F().sparksql_rows
                              : F().sparksql;
  RunSql(state, ctx, Q1(cutoff));
}

// --- Q2: grouped aggregation on a string prefix ----------------------------

void BM_Q2_Engine(benchmark::State& state, const char* engine, int prefix) {
  if (std::string(engine) == "impala") {
    const auto& v = F().visits;
    size_t groups = 0;
    for (auto _ : state) {
      std::unordered_map<std::string, double> agg;
      agg.reserve(1 << 12);
      for (size_t i = 0; i < v.source_ip.size(); ++i) {
        agg[v.source_ip[i].substr(0, prefix)] += v.ad_revenue[i];
      }
      groups = agg.size();
      benchmark::DoNotOptimize(groups);
    }
    state.counters["result_rows"] = static_cast<double>(groups);
    return;
  }
  SqlContext& ctx = std::string(engine) == "shark"
                        ? F().shark
                        : std::string(engine) == "sparksql_rows"
                              ? F().sparksql_rows
                              : F().sparksql;
  RunSql(state, ctx, Q2(prefix));
}

// --- Q3: join + grouped aggregation + top-1 --------------------------------

void BM_Q3_Engine(benchmark::State& state, const char* engine,
                  const char* until) {
  if (std::string(engine) == "impala") {
    const auto& r = F().rankings;
    const auto& v = F().visits;
    DateValue lo, hi;
    ParseDate("1980-01-01", &lo);
    ParseDate(until, &hi);
    for (auto _ : state) {
      // Impala picks the better plan: build the hash table on the FILTERED
      // visits when the date window is selective (the paper's 3a note).
      std::unordered_map<std::string, int32_t> rank_of;
      rank_of.reserve(r.page_url.size());
      for (size_t i = 0; i < r.page_url.size(); ++i) {
        rank_of.emplace(r.page_url[i], r.page_rank[i]);
      }
      struct Acc {
        double revenue = 0;
        double rank_sum = 0;
        int64_t count = 0;
      };
      std::unordered_map<std::string, Acc> by_ip;
      for (size_t i = 0; i < v.dest_url.size(); ++i) {
        if (v.visit_date_days[i] < lo.days || v.visit_date_days[i] > hi.days) {
          continue;
        }
        auto it = rank_of.find(v.dest_url[i]);
        if (it == rank_of.end()) continue;
        Acc& acc = by_ip[v.source_ip[i]];
        acc.revenue += v.ad_revenue[i];
        acc.rank_sum += it->second;
        acc.count += 1;
      }
      const Acc* best = nullptr;
      const std::string* best_ip = nullptr;
      for (const auto& [ip, acc] : by_ip) {
        if (best == nullptr || acc.revenue > best->revenue) {
          best = &acc;
          best_ip = &ip;
        }
      }
      benchmark::DoNotOptimize(best_ip);
    }
    state.counters["result_rows"] = 1;
    return;
  }
  SqlContext& ctx = std::string(engine) == "shark"
                        ? F().shark
                        : (std::string(engine) == "sparksql_cbo"
                               ? F().sparksql_cbo
                               : F().sparksql);
  RunSql(state, ctx, Q3(until));
}

// --- Q4: UDF MapReduce job --------------------------------------------------

void BM_Q4_Engine(benchmark::State& state, const char* engine) {
  if (std::string(engine) == "impala") {
    // The paper could not run Q4 on Impala (Python UDF); report the native
    // word-count loop anyway as the hand-written reference.
    const auto& docs = F().documents;
    for (auto _ : state) {
      std::unordered_map<std::string, int64_t> counts;
      for (const auto& doc : docs) {
        for (const auto& w : SplitWhitespace(doc)) counts[w] += 1;
      }
      benchmark::DoNotOptimize(counts.size());
    }
    return;
  }
  SqlContext& ctx = std::string(engine) == "shark" ? F().shark : F().sparksql;
  // documents as a DataFrame; the "UDF" splits each document and the
  // procedural stage counts words — the MapReduce shape of the benchmark.
  auto schema = StructType::Make({Field("contents", DataType::String(), false)});
  std::vector<Row> rows;
  rows.reserve(F().documents.size());
  for (const auto& d : F().documents) rows.push_back(Row({Value(d)}));
  DataFrame docs = ctx.CreateDataFrame(schema, rows);
  for (auto _ : state) {
    auto rdd = docs.ToRdd();
    auto words = rdd->FlatMap([](const Row& row) {
      return SplitWhitespace(row.GetString(0));
    });
    auto pairs = words->Map([](const std::string& w) {
      return std::make_pair(w, int64_t{1});
    });
    auto counts = ReduceByKey<std::string, int64_t>(
        pairs, [](const int64_t& a, const int64_t& b) { return a + b; });
    benchmark::DoNotOptimize(counts->Collect().size());
  }
}

#define SSQL_FIG8(query_fn, variant_name, ...)                           \
  BENCHMARK_CAPTURE(query_fn, shark_##variant_name, "shark",             \
                    ##__VA_ARGS__)                                       \
      ->Unit(benchmark::kMillisecond)                                    \
      ->Iterations(3);                                                   \
  BENCHMARK_CAPTURE(query_fn, sparksql_##variant_name, "sparksql",       \
                    ##__VA_ARGS__)                                       \
      ->Unit(benchmark::kMillisecond)                                    \
      ->Iterations(3);                                                   \
  BENCHMARK_CAPTURE(query_fn, impala_##variant_name, "impala",           \
                    ##__VA_ARGS__)                                       \
      ->Unit(benchmark::kMillisecond)                                    \
      ->Iterations(3);

SSQL_FIG8(BM_Q1_Engine, q1a, 9500)
SSQL_FIG8(BM_Q1_Engine, q1b, 5000)
SSQL_FIG8(BM_Q1_Engine, q1c, 100)
SSQL_FIG8(BM_Q2_Engine, q2a, 4)
SSQL_FIG8(BM_Q2_Engine, q2b, 8)
SSQL_FIG8(BM_Q2_Engine, q2c, 12)
SSQL_FIG8(BM_Q3_Engine, q3a, "1980-04-01")
SSQL_FIG8(BM_Q3_Engine, q3b, "1983-01-01")
SSQL_FIG8(BM_Q3_Engine, q3c, "2010-01-01")

// Batched-vs-row A/B on the same engine, queries and data: the only
// difference is vectorized_enabled (row-at-a-time volcano vs RowBatch
// pipeline with the vector evaluator).
BENCHMARK_CAPTURE(BM_Q1_Engine, sparksql_rows_q1c, "sparksql_rows", 100)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(3);
BENCHMARK_CAPTURE(BM_Q2_Engine, sparksql_rows_q2a, "sparksql_rows", 4)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(3);
BENCHMARK_CAPTURE(BM_Q2_Engine, sparksql_rows_q2c, "sparksql_rows", 12)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(3);

// The future-work cost model (filter-selectivity aware): where the paper
// notes Spark SQL loses Q3a to Impala's better join plan, this variant
// recovers it by recognising the selective date window.
BENCHMARK_CAPTURE(BM_Q3_Engine, sparksql_cbo_q3a, "sparksql_cbo", "1980-04-01")
    ->Unit(benchmark::kMillisecond)
    ->Iterations(3);
BENCHMARK_CAPTURE(BM_Q3_Engine, sparksql_cbo_q3c, "sparksql_cbo", "2010-01-01")
    ->Unit(benchmark::kMillisecond)
    ->Iterations(3);
SSQL_FIG8(BM_Q4_Engine, q4)

}  // namespace
}  // namespace bench
}  // namespace ssql

BENCHMARK_MAIN();
