// Figure 9: "Performance of an aggregation written using the native Spark
// Python and Scala APIs versus the DataFrame API" (Section 6.2).
//
// The workload: pairs (a, b) with a moderate number of distinct `a`;
// compute the average of b for each a.
//
//   python_rdd    — the native API with *dynamically typed boxed values*
//                   and per-record closure dispatch: every map/reduce step
//                   allocates key-value tuples of boxed Values, the way
//                   CPython boxes every object. This is the paper's slow
//                   bar (12x).
//   scala_rdd     — the native API with statically-typed C++ closures:
//                   still allocates a (key, (sum, count)) tuple per record
//                   and is opaque to the optimizer, but no boxing. The
//                   paper's middle bar (2x slower than DataFrame).
//   dataframe     — df.groupBy("a").avg("b"): the logical plan is optimized
//                   and executed by the engine (hash aggregation with
//                   map-side combine), the paper's fast bar.
//
// Expected shape: dataframe < scala_rdd << python_rdd.

#include <benchmark/benchmark.h>

#include "api/sql_context.h"
#include "bench/workloads.h"
#include "engine/rdd.h"

namespace ssql {
namespace bench {
namespace {

// The paper uses 1B pairs with 100k distinct keys (10^4 rows per key);
// scaled down with the same reduction ratio.
constexpr size_t kPairs = 1000000;
constexpr int kDistinctKeys = 1000;

struct PairData {
  std::vector<std::pair<int32_t, double>> typed;   // for the "Scala" RDD
  std::vector<Row> boxed;                          // for "Python" + DataFrame
};

PairData& Data() {
  static PairData* data = [] {
    auto* d = new PairData();
    std::mt19937_64 rng(11);
    d->typed.reserve(kPairs);
    d->boxed.reserve(kPairs);
    for (size_t i = 0; i < kPairs; ++i) {
      int32_t a = static_cast<int32_t>(rng() % kDistinctKeys);
      double b = std::uniform_real_distribution<>(0, 100)(rng);
      d->typed.emplace_back(a, b);
      d->boxed.push_back(Row({Value(a), Value(b)}));
    }
    return d;
  }();
  return *data;
}

SqlContext& Ctx() {
  static SqlContext* ctx = new SqlContext(SparkSqlConfig());
  return *ctx;
}

// "Python": the data.map(lambda x: (x.a, (x.b, 1))).reduceByKey(...) of
// the paper, with boxed dynamically-typed values end to end.
void BM_Fig9_PythonRdd(benchmark::State& state) {
  auto& ctx = Ctx();
  for (auto _ : state) {
    auto rdd = RDD<Row>::Parallelize(ctx.exec(), Data().boxed, 8);
    // map: x -> (x.a, (x.b, 1)) with boxed values (a Row as the "tuple").
    auto pairs = rdd->Map([](const Row& x) {
      return std::make_pair(
          x.Get(0).AsInt64(),
          Row({x.Get(1), Value(int64_t{1})}));  // boxed (b, 1)
    });
    auto summed = ReduceByKey<int64_t, Row>(
        pairs, [](const Row& x, const Row& y) {
          // Dynamic dispatch + reboxing on every reduce step.
          return Row({Value(x.Get(0).AsDouble() + y.Get(0).AsDouble()),
                      Value(x.Get(1).AsInt64() + y.Get(1).AsInt64())});
        });
    auto collected = summed->Collect();
    double sink = 0;
    for (const auto& [a, sc] : collected) {
      sink += sc.Get(0).AsDouble() / static_cast<double>(sc.Get(1).AsInt64());
    }
    benchmark::DoNotOptimize(sink);
  }
  state.SetLabel("native API, boxed dynamic values (Python stand-in)");
}
BENCHMARK(BM_Fig9_PythonRdd)->Unit(benchmark::kMillisecond)->Iterations(3);

// "Scala": statically typed closures, but faithful to the JVM in one
// respect the paper calls out explicitly — "the code in the DataFrame
// version avoids expensive allocation of key-value pairs that occurs in
// hand-written Scala code". Every Scala tuple is a heap object, so the
// per-record (key, (sum, count)) tuples here are heap-allocated too.
using ScalaTuple = std::shared_ptr<std::pair<double, int64_t>>;

void BM_Fig9_ScalaRdd(benchmark::State& state) {
  auto& ctx = Ctx();
  for (auto _ : state) {
    auto rdd =
        RDD<std::pair<int32_t, double>>::Parallelize(ctx.exec(), Data().typed, 8);
    auto pairs = rdd->Map([](const std::pair<int32_t, double>& x) {
      // x -> (x.a, (x.b, 1)): the inner tuple is a fresh heap object.
      return std::make_pair(
          x.first, std::make_shared<std::pair<double, int64_t>>(x.second, 1));
    });
    auto summed = ReduceByKey<int32_t, ScalaTuple>(
        pairs, [](const ScalaTuple& x, const ScalaTuple& y) {
          // Immutable tuples: each reduce step allocates the result.
          return std::make_shared<std::pair<double, int64_t>>(
              x->first + y->first, x->second + y->second);
        });
    auto collected = summed->Collect();
    double sink = 0;
    for (const auto& [a, sc] : collected) {
      sink += sc->first / static_cast<double>(sc->second);
    }
    benchmark::DoNotOptimize(sink);
  }
  state.SetLabel("native API, static closures + per-record tuple allocation "
                 "(Scala stand-in)");
}
BENCHMARK(BM_Fig9_ScalaRdd)->Unit(benchmark::kMillisecond)->Iterations(3);

// DataFrame: df.groupBy("a").avg("b") — one line, optimized execution.
void BM_Fig9_DataFrame(benchmark::State& state) {
  auto& ctx = Ctx();
  auto schema = StructType::Make({
      Field("a", DataType::Int32(), false),
      Field("b", DataType::Double(), false),
  });
  DataFrame df = ctx.CreateDataFrame(schema, Data().boxed);
  for (auto _ : state) {
    auto rows = df.GroupBy(std::vector<std::string>{"a"}).Avg("b").Collect();
    benchmark::DoNotOptimize(rows.size());
  }
  state.SetLabel("DataFrame groupBy(\"a\").avg(\"b\")");
}
BENCHMARK(BM_Fig9_DataFrame)->Unit(benchmark::kMillisecond)->Iterations(3);

}  // namespace
}  // namespace bench
}  // namespace ssql

BENCHMARK_MAIN();
