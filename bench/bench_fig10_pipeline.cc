// Figure 10: "Performance of a two-stage pipeline written as a separate
// SQL query and Spark job (above) and an integrated DataFrame job
// (below)" (Section 6.3).
//
// The pipeline: filter a message corpus with a relational predicate
// (keeping ~90%), then compute the most frequent words procedurally.
//
//   separate   — stage 1 runs as a SQL query whose result is saved to a
//                file (the paper's intermediate HDFS dataset); stage 2 is
//                a separate job that re-loads the file and word-counts it.
//   integrated — one program: the DataFrame filter feeds the RDD word
//                count directly, so the filter's map pipeline fuses with
//                the word count and nothing is materialized.
//
// Expected shape: integrated ≈ 2x faster (the paper's Figure 10), the gap
// being the write+read of the intermediate dataset.

#include <benchmark/benchmark.h>

#include <cstdio>

#include "api/sql_context.h"
#include "bench/workloads.h"
#include "datasources/csv_source.h"
#include "engine/rdd.h"

namespace ssql {
namespace bench {
namespace {

constexpr size_t kMessages = 150000;

SqlContext& Ctx() {
  static SqlContext* ctx = [] {
    auto* c = new SqlContext(SparkSqlConfig());
    auto docs = GenerateDocuments(kMessages, /*words_per_doc=*/10,
                                  /*marked_fraction=*/0.9);
    auto schema =
        StructType::Make({Field("text", DataType::String(), false)});
    std::vector<Row> rows;
    rows.reserve(docs.size());
    for (auto& d : docs) rows.push_back(Row({Value(std::move(d))}));
    c->CreateDataFrame(schema, std::move(rows)).RegisterTempTable("messages");
    return c;
  }();
  return *ctx;
}

size_t WordCountFromRdd(const std::shared_ptr<RDD<Row>>& rdd) {
  auto words = rdd->FlatMap(
      [](const Row& row) { return SplitWhitespace(row.GetString(0)); });
  auto pairs = words->Map(
      [](const std::string& w) { return std::make_pair(w, int64_t{1}); });
  auto counts = ReduceByKey<std::string, int64_t>(
      pairs, [](const int64_t& a, const int64_t& b) { return a + b; });
  return counts->Collect().size();
}

void BM_Fig10_SeparateJobs(benchmark::State& state) {
  auto& ctx = Ctx();
  const std::string intermediate = "/tmp/ssql_fig10_intermediate.csv";
  auto schema = StructType::Make({Field("text", DataType::String(), false)});
  for (auto _ : state) {
    // Stage 1: relational engine runs the filter and SAVES the result —
    // the separate-engines world where SQL output lands in HDFS.
    DataFrame filtered =
        ctx.Sql("SELECT text FROM messages WHERE text LIKE '%keeper%'");
    CsvRelation::Write(intermediate, schema, filtered.Collect());

    // Stage 2: a separate procedural job re-reads the file and counts.
    DataFrame reloaded = ctx.Read(
        "csv", {{"path", intermediate}, {"schema", "text string"}});
    size_t distinct = WordCountFromRdd(reloaded.ToRdd());
    benchmark::DoNotOptimize(distinct);
  }
  std::remove(intermediate.c_str());
  state.SetLabel("SQL query -> file -> separate Spark job");
}
BENCHMARK(BM_Fig10_SeparateJobs)->Unit(benchmark::kMillisecond)->Iterations(3);

void BM_Fig10_IntegratedDataFrame(benchmark::State& state) {
  auto& ctx = Ctx();
  for (auto _ : state) {
    // One program: DataFrame filter pipelined straight into the RDD word
    // count; no intermediate dataset exists anywhere.
    DataFrame filtered =
        ctx.Sql("SELECT text FROM messages WHERE text LIKE '%keeper%'");
    size_t distinct = WordCountFromRdd(filtered.ToRdd());
    benchmark::DoNotOptimize(distinct);
  }
  state.SetLabel("integrated DataFrame + RDD pipeline");
}
BENCHMARK(BM_Fig10_IntegratedDataFrame)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(3);

}  // namespace
}  // namespace bench
}  // namespace ssql

BENCHMARK_MAIN();
