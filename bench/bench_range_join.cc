// Ablation: the Section 7.2 range join. The paper's genomics query runs
// as an interval-tree join vs the naive nested-loop plan across input
// sizes; the tree's O((n+k) log n) shape should pull away quadratically.

#include <benchmark/benchmark.h>

#include "bench/workloads.h"

namespace ssql {
namespace bench {
namespace {

std::unique_ptr<SqlContext> MakeCtx(size_t n, bool range_join) {
  EngineConfig config = SparkSqlConfig();
  config.range_join_enabled = range_join;
  auto ctx = std::make_unique<SqlContext>(config);
  auto schema = StructType::Make({
      Field("start", DataType::Int64(), false),
      Field("end", DataType::Int64(), false),
  });
  std::mt19937_64 rng(23);
  std::vector<Row> a_rows, b_rows;
  a_rows.reserve(n);
  b_rows.reserve(n);
  int64_t domain = static_cast<int64_t>(n) * 20;
  for (size_t i = 0; i < n; ++i) {
    int64_t s = static_cast<int64_t>(rng() % domain);
    a_rows.push_back(Row({Value(s), Value(s + 1 + int64_t(rng() % 40))}));
    int64_t t = static_cast<int64_t>(rng() % domain);
    b_rows.push_back(Row({Value(t), Value(t + 1 + int64_t(rng() % 40))}));
  }
  ctx->CreateDataFrame(schema, a_rows).RegisterTempTable("a");
  ctx->CreateDataFrame(schema, b_rows).RegisterTempTable("b");
  return ctx;
}

constexpr const char* kGenomicsQuery =
    "SELECT count(*) FROM a JOIN b "
    "ON a.start < a.end AND b.start < b.end "
    "AND a.start < b.start AND b.start < a.end";

void BM_RangeJoin_IntervalTree(benchmark::State& state) {
  auto ctx = MakeCtx(static_cast<size_t>(state.range(0)), true);
  int64_t matches = 0;
  for (auto _ : state) {
    matches = ctx->Sql(kGenomicsQuery).Collect()[0].GetInt64(0);
    benchmark::DoNotOptimize(matches);
  }
  state.counters["matches"] = static_cast<double>(matches);
  state.SetLabel("interval-tree plan (the ~100-line ADAM rule)");
}
BENCHMARK(BM_RangeJoin_IntervalTree)
    ->Arg(1000)
    ->Arg(4000)
    ->Arg(16000)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(2);

void BM_RangeJoin_NestedLoop(benchmark::State& state) {
  auto ctx = MakeCtx(static_cast<size_t>(state.range(0)), false);
  int64_t matches = 0;
  for (auto _ : state) {
    matches = ctx->Sql(kGenomicsQuery).Collect()[0].GetInt64(0);
    benchmark::DoNotOptimize(matches);
  }
  state.counters["matches"] = static_cast<double>(matches);
  state.SetLabel("naive nested-loop plan");
}
BENCHMARK(BM_RangeJoin_NestedLoop)
    ->Arg(1000)
    ->Arg(4000)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(2);

}  // namespace
}  // namespace bench
}  // namespace ssql

BENCHMARK_MAIN();
