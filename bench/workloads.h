#ifndef SSQL_BENCH_WORKLOADS_H_
#define SSQL_BENCH_WORKLOADS_H_

// Deterministic synthetic stand-ins for the AMPLab big data benchmark
// tables (Pavlo et al. web-analytics workload) used by the paper's
// Section 6.1 evaluation, scaled to laptop size. Shapes and selectivity
// knobs match the benchmark: `rankings` (pageURL, pageRank, avgDuration),
// `uservisits` (sourceIP, destURL, visitDate, adRevenue, ...), and a
// `documents` corpus for the UDF query.

#include <cstdint>
#include <random>
#include <string>
#include <vector>

#include "api/sql_context.h"
#include "datasources/colf_format.h"

namespace ssql {
namespace bench {

struct RankingsData {
  std::vector<std::string> page_url;
  std::vector<int32_t> page_rank;
  std::vector<int32_t> avg_duration;
};

struct UserVisitsData {
  std::vector<std::string> source_ip;
  std::vector<std::string> dest_url;
  std::vector<int32_t> visit_date_days;  // days since epoch
  std::vector<double> ad_revenue;
};

inline std::string UrlOf(uint64_t i) { return "url" + std::to_string(i); }

inline RankingsData GenerateRankings(size_t n, uint64_t seed = 1) {
  std::mt19937_64 rng(seed);
  RankingsData data;
  data.page_url.reserve(n);
  data.page_rank.reserve(n);
  data.avg_duration.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    data.page_url.push_back(UrlOf(i));
    // Skewed ranks: most pages low, few high — the benchmark's 1a/1b/1c
    // selectivity ladder (rank > 1000 rare, rank > 10 common).
    double u = std::uniform_real_distribution<>(0, 1)(rng);
    int32_t rank = static_cast<int32_t>(10000 * u * u * u);
    data.page_rank.push_back(rank);
    data.avg_duration.push_back(static_cast<int32_t>(rng() % 100));
  }
  return data;
}

inline UserVisitsData GenerateUserVisits(size_t n, size_t num_urls,
                                         uint64_t seed = 2) {
  std::mt19937_64 rng(seed);
  UserVisitsData data;
  data.source_ip.reserve(n);
  data.dest_url.reserve(n);
  data.visit_date_days.reserve(n);
  data.ad_revenue.reserve(n);
  DateValue epoch_1980, epoch_2010;
  ParseDate("1980-01-01", &epoch_1980);
  ParseDate("2010-01-01", &epoch_2010);
  for (size_t i = 0; i < n; ++i) {
    data.source_ip.push_back(std::to_string(rng() % 256) + "." +
                             std::to_string(rng() % 256) + "." +
                             std::to_string(rng() % 256) + "." +
                             std::to_string(rng() % 256));
    data.dest_url.push_back(UrlOf(rng() % num_urls));
    data.visit_date_days.push_back(
        epoch_1980.days +
        static_cast<int32_t>(rng() % (epoch_2010.days - epoch_1980.days)));
    data.ad_revenue.push_back(std::uniform_real_distribution<>(0, 1000)(rng));
  }
  return data;
}

inline std::vector<Row> RankingsRows(const RankingsData& d) {
  std::vector<Row> rows;
  rows.reserve(d.page_url.size());
  for (size_t i = 0; i < d.page_url.size(); ++i) {
    rows.push_back(Row({Value(d.page_url[i]), Value(d.page_rank[i]),
                        Value(d.avg_duration[i])}));
  }
  return rows;
}

inline std::vector<Row> UserVisitsRows(const UserVisitsData& d) {
  std::vector<Row> rows;
  rows.reserve(d.source_ip.size());
  for (size_t i = 0; i < d.source_ip.size(); ++i) {
    rows.push_back(Row({Value(d.source_ip[i]), Value(d.dest_url[i]),
                        Value(DateValue{d.visit_date_days[i]}),
                        Value(d.ad_revenue[i])}));
  }
  return rows;
}

inline SchemaPtr RankingsSchema() {
  return StructType::Make({
      Field("pageURL", DataType::String(), false),
      Field("pageRank", DataType::Int32(), false),
      Field("avgDuration", DataType::Int32(), false),
  });
}

inline SchemaPtr UserVisitsSchema() {
  return StructType::Make({
      Field("sourceIP", DataType::String(), false),
      Field("destURL", DataType::String(), false),
      Field("visitDate", DataType::Date(), false),
      Field("adRevenue", DataType::Double(), false),
  });
}

/// Synthetic message/document corpus: ~`words_per_doc` dictionary words
/// per line, a fraction carrying a marker word (the Figure 10 filter and
/// the Q4 "URL extraction" both key off markers).
inline std::vector<std::string> GenerateDocuments(size_t n,
                                                  size_t words_per_doc = 10,
                                                  double marked_fraction = 0.9,
                                                  uint64_t seed = 3) {
  static const char* kDict[] = {"the",  "quick", "brown", "fox",   "jumps",
                                "over", "lazy",  "dog",   "spark", "query",
                                "data", "frame", "plan",  "tree",  "rule"};
  constexpr size_t kDictSize = sizeof(kDict) / sizeof(kDict[0]);
  std::mt19937_64 rng(seed);
  std::vector<std::string> docs;
  docs.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    std::string doc;
    bool marked = std::uniform_real_distribution<>(0, 1)(rng) < marked_fraction;
    for (size_t w = 0; w < words_per_doc; ++w) {
      if (w > 0) doc += ' ';
      doc += kDict[rng() % kDictSize];
    }
    if (marked) doc += " keeper";
    docs.push_back(std::move(doc));
  }
  return docs;
}

/// Engine configurations for the Figure 8 comparison.
inline EngineConfig SparkSqlConfig() {
  EngineConfig config;
  config.num_threads = 4;
  config.default_parallelism = 8;
  return config;
}

/// "Shark mode": the Hive-era feature set — no code generation, no source
/// pushdown, no cost-based join selection, no operator fusion.
inline EngineConfig SharkConfig() {
  EngineConfig config = SparkSqlConfig();
  config.codegen_enabled = false;
  config.pushdown_enabled = false;
  config.join_selection_enabled = false;
  config.operator_fusion_enabled = false;
  return config;
}

/// Writes the AMPLab tables as colf files (the Parquet stand-in the
/// paper's cluster also used) and registers them in `ctx`.
inline void SetupAmplabTables(SqlContext& ctx, const RankingsData& rankings,
                              const UserVisitsData& visits,
                              const std::string& dir) {
  std::string rankings_path = dir + "/rankings.colf";
  std::string visits_path = dir + "/uservisits.colf";
  WriteColfFile(rankings_path, RankingsSchema(), RankingsRows(rankings));
  WriteColfFile(visits_path, UserVisitsSchema(), UserVisitsRows(visits));
  ctx.ReadColf(rankings_path).RegisterTempTable("rankings");
  ctx.ReadColf(visits_path).RegisterTempTable("uservisits");
}

}  // namespace bench
}  // namespace ssql

#endif  // SSQL_BENCH_WORKLOADS_H_
