// Ablation: Catalyst rule-engine overhead. Measures the cost of the four
// phases (parse, analyze, optimize, physical-plan) on queries of
// increasing depth — the framework cost the paper argues is worth paying
// for rule simplicity — plus single-rule microbenchmarks.

#include <benchmark/benchmark.h>

#include "api/sql_context.h"
#include "bench/workloads.h"
#include "catalyst/optimizer/optimizer.h"
#include "sql/parser.h"

namespace ssql {
namespace bench {
namespace {

struct Fixture {
  SqlContext ctx{SparkSqlConfig()};

  Fixture() {
    auto schema = StructType::Make({
        Field("a", DataType::Int32(), false),
        Field("b", DataType::Int32(), false),
        Field("c", DataType::String(), true),
    });
    ctx.CreateDataFrame(schema, {}).RegisterTempTable("t");
  }

  /// Builds a nested query `depth` subqueries deep, each adding a filter
  /// and an arithmetic projection.
  std::string NestedQuery(int depth) {
    std::string sql = "SELECT a, b, c FROM t WHERE a > 0";
    for (int i = 0; i < depth; ++i) {
      sql = "SELECT a + 1 AS a, b, c FROM (" + sql + ") s" +
            std::to_string(i) + " WHERE b > " + std::to_string(i) +
            " AND c LIKE 'prefix%'";
    }
    return sql;
  }
};

Fixture& F() {
  static Fixture* fixture = new Fixture();
  return *fixture;
}

void BM_Phase_Parse(benchmark::State& state) {
  std::string sql = F().NestedQuery(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    auto parsed = ParseSql(sql);
    benchmark::DoNotOptimize(parsed.plan.get());
  }
  state.counters["depth"] = static_cast<double>(state.range(0));
}
BENCHMARK(BM_Phase_Parse)->Arg(1)->Arg(4)->Arg(16)->Unit(benchmark::kMicrosecond);

void BM_Phase_Analyze(benchmark::State& state) {
  std::string sql = F().NestedQuery(static_cast<int>(state.range(0)));
  PlanPtr parsed = ParseSql(sql).plan;
  for (auto _ : state) {
    PlanPtr analyzed = F().ctx.Analyze(parsed);
    benchmark::DoNotOptimize(analyzed.get());
  }
  state.counters["depth"] = static_cast<double>(state.range(0));
}
BENCHMARK(BM_Phase_Analyze)->Arg(1)->Arg(4)->Arg(16)->Unit(benchmark::kMicrosecond);

void BM_Phase_Optimize(benchmark::State& state) {
  std::string sql = F().NestedQuery(static_cast<int>(state.range(0)));
  PlanPtr analyzed = F().ctx.Analyze(ParseSql(sql).plan);
  for (auto _ : state) {
    PlanPtr optimized = F().ctx.Optimize(analyzed);
    benchmark::DoNotOptimize(optimized.get());
  }
  state.counters["depth"] = static_cast<double>(state.range(0));
}
BENCHMARK(BM_Phase_Optimize)
    ->Arg(1)
    ->Arg(4)
    ->Arg(16)
    ->Unit(benchmark::kMicrosecond);

void BM_Phase_PhysicalPlan(benchmark::State& state) {
  std::string sql = F().NestedQuery(static_cast<int>(state.range(0)));
  PlanPtr optimized = F().ctx.Optimize(F().ctx.Analyze(ParseSql(sql).plan));
  for (auto _ : state) {
    PhysPtr phys = F().ctx.PlanPhysical(optimized);
    benchmark::DoNotOptimize(phys.get());
  }
  state.counters["depth"] = static_cast<double>(state.range(0));
}
BENCHMARK(BM_Phase_PhysicalPlan)
    ->Arg(1)
    ->Arg(4)
    ->Arg(16)
    ->Unit(benchmark::kMicrosecond);

// Rule-level: how much work a fixed-point batch does on an
// already-optimal plan (the no-op overhead per query).
void BM_Optimizer_FixedPointNoop(benchmark::State& state) {
  PlanPtr optimized =
      F().ctx.Optimize(F().ctx.Analyze(ParseSql(F().NestedQuery(4)).plan));
  Optimizer optimizer;
  for (auto _ : state) {
    PlanPtr again = optimizer.Optimize(optimized);
    benchmark::DoNotOptimize(again.get());
  }
  state.SetLabel("re-optimizing an already-optimized plan");
}
BENCHMARK(BM_Optimizer_FixedPointNoop)->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace bench
}  // namespace ssql

BENCHMARK_MAIN();
