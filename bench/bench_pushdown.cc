// Ablation: predicate pushdown & column pruning into data sources
// (Sections 4.4.1, 5.3). Measures the same selective query against the
// colf columnar file and the kvdb embedded database with the pushdown
// batch on and off, plus the federation query of Section 5.3.

#include <benchmark/benchmark.h>

#include <fstream>

#include "bench/workloads.h"
#include "datasources/kvdb.h"

namespace ssql {
namespace bench {
namespace {

constexpr size_t kRows = 200000;

struct Fixture {
  std::string colf_path = "/tmp/ssql_bench_pushdown.colf";
  std::string logs_path = "/tmp/ssql_bench_logs.json";

  Fixture() {
    // A wide-ish table where the query touches 2 of 6 columns and a
    // selective range of rows.
    auto schema = StructType::Make({
        Field("id", DataType::Int64(), false),
        Field("a", DataType::Int64(), false),
        Field("b", DataType::Double(), false),
        Field("c", DataType::String(), false),
        Field("d", DataType::String(), false),
        Field("e", DataType::Double(), false),
    });
    std::mt19937_64 rng(5);
    std::vector<Row> rows;
    rows.reserve(kRows);
    for (size_t i = 0; i < kRows; ++i) {
      rows.push_back(Row({Value(int64_t(i)), Value(int64_t(rng() % 1000)),
                          Value(double(rng() % 100) / 7.0),
                          Value("payload-" + std::to_string(rng() % 50)),
                          Value(std::string(24, 'x')),
                          Value(double(i) * 0.25)}));
    }
    WriteColfFile(colf_path, schema, rows, /*row_group_size=*/4096);

    // kvdb "users" + JSON "logs" for the federation query (Section 5.3).
    auto users_schema = StructType::Make({
        Field("id", DataType::Int32(), false),
        Field("name", DataType::String(), false),
        Field("registrationDate", DataType::Date(), false),
    });
    std::vector<Row> users;
    DateValue old_day, new_day;
    ParseDate("2014-06-01", &old_day);
    ParseDate("2015-02-01", &new_day);
    for (int i = 0; i < 20000; ++i) {
      users.push_back(Row({Value(int32_t(i)),
                           Value("user" + std::to_string(i)),
                           Value(i % 100 < 95 ? old_day : new_day)}));
    }
    KvdbDatabase::Global().CreateTable("bench_users", users_schema,
                                       std::move(users));

    std::ofstream logs(logs_path, std::ios::trunc);
    for (int i = 0; i < 20000; ++i) {
      logs << "{\"userId\": " << (i % 20000)
           << ", \"message\": \"event-" << i % 97 << "\"}\n";
    }
  }
};

Fixture& F() {
  static Fixture* fixture = new Fixture();
  return *fixture;
}

void RunColfQuery(benchmark::State& state, bool pushdown) {
  EngineConfig config = SparkSqlConfig();
  config.pushdown_enabled = pushdown;
  SqlContext ctx(config);
  ctx.ReadColf(F().colf_path).RegisterTempTable("wide");
  int64_t scanned = 0;
  for (auto _ : state) {
    ctx.exec().metrics().Reset();
    auto rows = ctx.Sql(
                       "SELECT id, b FROM wide "
                       "WHERE id >= 190000 AND a < 500")
                    .Collect();
    benchmark::DoNotOptimize(rows.size());
    scanned = ctx.exec().metrics().Get("source.rows_scanned");
  }
  state.counters["rows_scanned"] = static_cast<double>(scanned);
}

void BM_Pushdown_Colf_On(benchmark::State& state) {
  RunColfQuery(state, true);
  state.SetLabel("colf scan: filters + pruning pushed, zone maps skip groups");
}
BENCHMARK(BM_Pushdown_Colf_On)->Unit(benchmark::kMillisecond)->Iterations(3);

void BM_Pushdown_Colf_Off(benchmark::State& state) {
  RunColfQuery(state, false);
  state.SetLabel("colf scan: full scan, engine-side filter");
}
BENCHMARK(BM_Pushdown_Colf_Off)->Unit(benchmark::kMillisecond)->Iterations(3);

void RunFederation(benchmark::State& state, bool pushdown) {
  EngineConfig config = SparkSqlConfig();
  config.pushdown_enabled = pushdown;
  SqlContext ctx(config);
  ctx.Sql(
      "CREATE TEMPORARY TABLE users USING kvdb OPTIONS (table 'bench_users')");
  ctx.Sql("CREATE TEMPORARY TABLE logs USING json OPTIONS (path '" +
          F().logs_path + "')");
  int64_t shipped = 0;
  for (auto _ : state) {
    ctx.exec().metrics().Reset();
    // The Section 5.3 federation query.
    auto rows = ctx.Sql(
                       "SELECT users.id, users.name, logs.message "
                       "FROM users JOIN logs ON users.id = logs.userId "
                       "WHERE users.registrationDate > '2015-01-01'")
                    .Collect();
    benchmark::DoNotOptimize(rows.size());
    shipped = ctx.exec().metrics().Get("kvdb.rows_shipped");
  }
  state.counters["kvdb_rows_shipped"] = static_cast<double>(shipped);
}

void BM_Federation_PushdownOn(benchmark::State& state) {
  RunFederation(state, true);
  state.SetLabel("date filter executes inside the external DB");
}
BENCHMARK(BM_Federation_PushdownOn)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(3);

void BM_Federation_PushdownOff(benchmark::State& state) {
  RunFederation(state, false);
  state.SetLabel("all user rows shipped, filtered by the engine");
}
BENCHMARK(BM_Federation_PushdownOff)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(3);

}  // namespace
}  // namespace bench
}  // namespace ssql

BENCHMARK_MAIN();
