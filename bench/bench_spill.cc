// Memory-bounded execution: cost of spilling vs the in-memory paths. Runs
// the same GROUP BY aggregation, ORDER BY sort and equi-join with an
// unlimited budget and with budgets small enough to force one or many
// spill/merge rounds, reporting the spilled byte volume per iteration.
// The interesting readout is the slope: external operators should degrade
// smoothly (a constant factor for disk + serde), not fall off a cliff.

#include <benchmark/benchmark.h>

#include <random>
#include <string>

#include "bench/workloads.h"

namespace ssql {
namespace bench {
namespace {

constexpr size_t kRows = 100000;
constexpr int kKeys = 5000;

/// One context per budget so metrics and the spill scratch stay separate.
SqlContext* MakeContext(int64_t memory_limit) {
  EngineConfig config = SparkSqlConfig();
  config.query_memory_limit_bytes = memory_limit;
  auto* ctx = new SqlContext(config);

  std::mt19937_64 rng(99);
  auto schema = StructType::Make({
      Field("k", DataType::String(), false),
      Field("v", DataType::Int32(), false),
  });
  std::vector<Row> rows;
  rows.reserve(kRows);
  for (size_t i = 0; i < kRows; ++i) {
    rows.push_back(Row({Value("key_" + std::to_string(rng() % kKeys)),
                        Value(static_cast<int32_t>(rng() % 1000))}));
  }
  ctx->CreateDataFrame(schema, std::move(rows)).RegisterTempTable("t");

  auto dim = StructType::Make({
      Field("k", DataType::String(), false),
      Field("w", DataType::Int32(), false),
  });
  std::vector<Row> dim_rows;
  dim_rows.reserve(kKeys);
  for (int i = 0; i < kKeys; ++i) {
    dim_rows.push_back(
        Row({Value("key_" + std::to_string(i)), Value(int32_t(i))}));
  }
  ctx->CreateDataFrame(dim, std::move(dim_rows)).RegisterTempTable("dim");
  return ctx;
}

/// state.range(0): memory budget in KiB, 0 = unlimited.
void RunQuery(benchmark::State& state, const std::string& sql) {
  int64_t limit = state.range(0) == 0 ? -1 : state.range(0) * 1024;
  SqlContext* ctx = MakeContext(limit);
  size_t result_rows = 0;
  for (auto _ : state) {
    result_rows = ctx->Sql(sql).Collect().size();
  }
  state.counters["result_rows"] = static_cast<double>(result_rows);
  state.counters["spill_bytes_per_iter"] = benchmark::Counter(
      static_cast<double>(ctx->exec().metrics().Get("memory.spill_bytes")),
      benchmark::Counter::kAvgIterations);
  delete ctx;
}

void BM_AggregateSpill(benchmark::State& state) {
  RunQuery(state, "SELECT k, sum(v), count(*) FROM t GROUP BY k");
}

void BM_SortSpill(benchmark::State& state) {
  RunQuery(state, "SELECT k, v FROM t ORDER BY v, k");
}

void BM_JoinSpill(benchmark::State& state) {
  RunQuery(state, "SELECT t.k, t.v, dim.w FROM t JOIN dim ON t.k = dim.k");
}

// 0 = unlimited (in-memory paths); 1024 KiB forces a handful of spills;
// 64 KiB forces many rounds through tiny spill files.
BENCHMARK(BM_AggregateSpill)->Arg(0)->Arg(1024)->Arg(64)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_SortSpill)->Arg(0)->Arg(1024)->Arg(64)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_JoinSpill)->Arg(0)->Arg(1024)->Arg(64)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace bench
}  // namespace ssql

BENCHMARK_MAIN();
