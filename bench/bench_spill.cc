// Memory-bounded execution: cost of spilling vs the in-memory paths. Runs
// the same GROUP BY aggregation, ORDER BY sort and equi-join with an
// unlimited budget and with budgets small enough to force one or many
// spill/merge rounds, reporting the spilled byte volume per iteration.
// The interesting readout is the slope: external operators should degrade
// smoothly (a constant factor for disk + serde), not fall off a cliff.
//
// A second dimension measures the chaos machinery itself: "armed" runs the
// same workload with fault points configured but never firing (the pure
// per-call overhead of the injection checks on the hot spill path), and
// "faulted" injects retryable spill-write faults healed by task retry (the
// cost of the retry/backoff loop under a realistic transient-fault rate).
// The armed-vs-off delta is the number that must stay ~zero: resilience
// instrumentation may not tax the happy path.

#include <benchmark/benchmark.h>

#include <random>
#include <string>

#include "bench/workloads.h"

namespace ssql {
namespace bench {
namespace {

constexpr size_t kRows = 100000;
constexpr int kKeys = 5000;

/// Fault configuration dimension (state.range(1)).
enum FaultMode { kFaultsOff = 0, kFaultsArmed = 1, kFaultsFiring = 2 };

/// One context per budget so metrics and the spill scratch stay separate.
SqlContext* MakeContext(int64_t memory_limit, int fault_mode) {
  EngineConfig config = SparkSqlConfig();
  config.query_memory_limit_bytes = memory_limit;
  config.task_retry_backoff_ms = 1;
  switch (fault_mode) {
    case kFaultsArmed:
      // Checks run on every spill write/read but the trigger never fires
      // (first-hit window far beyond any real hit count): measures the
      // pure instrumentation overhead on the happy path.
      config.fault_injection_spec = "spill.write=n1000000000,seed=7";
      break;
    case kFaultsFiring:
      // ~1 in 100k spill writes throws a retryable fault; the failed task
      // re-runs with backoff, so the run measures retry amplification at a
      // rate the 3-attempt budget almost always heals (a faulted write that
      // lands outside a task boundary — e.g. the driver-side final merge —
      // still fails the query, and failed_iters reports it).
      config.fault_injection_spec = "spill.write=p0.00001:retryable,seed=7";
      break;
    default:
      break;
  }
  auto* ctx = new SqlContext(config);

  std::mt19937_64 rng(99);
  auto schema = StructType::Make({
      Field("k", DataType::String(), false),
      Field("v", DataType::Int32(), false),
  });
  std::vector<Row> rows;
  rows.reserve(kRows);
  for (size_t i = 0; i < kRows; ++i) {
    rows.push_back(Row({Value("key_" + std::to_string(rng() % kKeys)),
                        Value(static_cast<int32_t>(rng() % 1000))}));
  }
  ctx->CreateDataFrame(schema, std::move(rows)).RegisterTempTable("t");

  auto dim = StructType::Make({
      Field("k", DataType::String(), false),
      Field("w", DataType::Int32(), false),
  });
  std::vector<Row> dim_rows;
  dim_rows.reserve(kKeys);
  for (int i = 0; i < kKeys; ++i) {
    dim_rows.push_back(
        Row({Value("key_" + std::to_string(i)), Value(int32_t(i))}));
  }
  ctx->CreateDataFrame(dim, std::move(dim_rows)).RegisterTempTable("dim");
  return ctx;
}

/// state.range(0): memory budget in KiB, 0 = unlimited.
/// state.range(1): FaultMode (off / armed-but-silent / firing).
void RunQuery(benchmark::State& state, const std::string& sql) {
  int64_t limit = state.range(0) == 0 ? -1 : state.range(0) * 1024;
  SqlContext* ctx = MakeContext(limit, static_cast<int>(state.range(1)));
  size_t result_rows = 0;
  int64_t failed_iters = 0;
  for (auto _ : state) {
    // Under kFaultsFiring a query can still die (all task attempts hit a
    // fault); count it rather than aborting the benchmark — the failure
    // rate is part of the readout.
    try {
      result_rows = ctx->Sql(sql).Collect().size();
    } catch (const SsqlError&) {
      ++failed_iters;
    }
  }
  state.counters["result_rows"] = static_cast<double>(result_rows);
  state.counters["spill_bytes_per_iter"] = benchmark::Counter(
      static_cast<double>(ctx->exec().metrics().Get("memory.spill_bytes")),
      benchmark::Counter::kAvgIterations);
  state.counters["faults_injected"] = static_cast<double>(
      ctx->exec().registry().Counter("ssql_faults_injected_total").value());
  state.counters["task_retries"] =
      static_cast<double>(ctx->exec().metrics().Get("task.retries"));
  state.counters["failed_iters"] = static_cast<double>(failed_iters);
  delete ctx;
}

void BM_AggregateSpill(benchmark::State& state) {
  RunQuery(state, "SELECT k, sum(v), count(*) FROM t GROUP BY k");
}

void BM_SortSpill(benchmark::State& state) {
  RunQuery(state, "SELECT k, v FROM t ORDER BY v, k");
}

void BM_JoinSpill(benchmark::State& state) {
  RunQuery(state, "SELECT t.k, t.v, dim.w FROM t JOIN dim ON t.k = dim.k");
}

// Budget axis: 0 = unlimited (in-memory paths); 1024 KiB forces a handful
// of spills; 64 KiB forces many rounds through tiny spill files.
// Fault axis: off / armed-but-silent on every budget (the armed-vs-off
// delta is the happy-path tax), firing only on the spilling budgets (the
// in-memory path never reaches a spill fault point).
BENCHMARK(BM_AggregateSpill)
    ->Args({0, kFaultsOff})->Args({0, kFaultsArmed})
    ->Args({1024, kFaultsOff})->Args({1024, kFaultsArmed})
    ->Args({1024, kFaultsFiring})
    ->Args({64, kFaultsOff})->Args({64, kFaultsArmed})
    ->Args({64, kFaultsFiring})
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_SortSpill)
    ->Args({0, kFaultsOff})->Args({0, kFaultsArmed})
    ->Args({1024, kFaultsOff})->Args({1024, kFaultsArmed})
    ->Args({1024, kFaultsFiring})
    ->Args({64, kFaultsOff})->Args({64, kFaultsArmed})
    ->Args({64, kFaultsFiring})
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_JoinSpill)
    ->Args({0, kFaultsOff})->Args({0, kFaultsArmed})
    ->Args({1024, kFaultsOff})->Args({1024, kFaultsArmed})
    ->Args({1024, kFaultsFiring})
    ->Args({64, kFaultsOff})->Args({64, kFaultsArmed})
    ->Args({64, kFaultsFiring})
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace bench
}  // namespace ssql

BENCHMARK_MAIN();
