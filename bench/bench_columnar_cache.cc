// Ablation: in-memory columnar caching (Section 3.6). Reports the
// compressed columnar footprint vs the boxed-row footprint (the paper's
// "order of magnitude" claim), scan speed with column pruning, and the
// cache-vs-recompute speedup for a repeated query.

#include <benchmark/benchmark.h>

#include "bench/workloads.h"
#include "columnar/columnar_cache.h"
#include "datasources/colf_format.h"

namespace ssql {
namespace bench {
namespace {

constexpr size_t kRows = 300000;

struct Fixture {
  SchemaPtr schema = StructType::Make({
      Field("id", DataType::Int64(), false),
      Field("category", DataType::String(), false),  // low cardinality
      Field("flag", DataType::Boolean(), false),     // RLE-friendly
      Field("score", DataType::Double(), false),
  });
  std::vector<Row> rows;
  std::shared_ptr<const CachedTable> table;
  std::string colf_path = "/tmp/ssql_bench_cache.colf";

  Fixture() {
    std::mt19937_64 rng(13);
    rows.reserve(kRows);
    for (size_t i = 0; i < kRows; ++i) {
      rows.push_back(Row({Value(int64_t(i)),
                          Value("category-" + std::to_string(rng() % 8)),
                          Value(i % 1000 < 900),
                          Value(double(rng() % 10000) / 13.0)}));
    }
    table = CachedTable::Build(schema, RowDataset::FromRows(rows, 8));
    WriteColfFile(colf_path, schema, rows);
  }
};

Fixture& F() {
  static Fixture* fixture = new Fixture();
  return *fixture;
}

void BM_Cache_BuildColumnar(benchmark::State& state) {
  for (auto _ : state) {
    auto table =
        CachedTable::Build(F().schema, RowDataset::FromRows(F().rows, 8));
    benchmark::DoNotOptimize(table->MemoryBytes());
  }
  // The Section 3.6 memory comparison, reported as counters.
  state.counters["columnar_bytes"] =
      static_cast<double>(F().table->MemoryBytes());
  state.counters["boxed_row_bytes"] =
      static_cast<double>(F().table->EstimatedRowCacheBytes());
  state.counters["compression_x"] =
      static_cast<double>(F().table->EstimatedRowCacheBytes()) /
      static_cast<double>(F().table->MemoryBytes());
  state.SetLabel("encode 300k rows into compressed columns");
}
BENCHMARK(BM_Cache_BuildColumnar)->Unit(benchmark::kMillisecond)->Iterations(3);

void BM_Cache_ScanOneColumn(benchmark::State& state) {
  for (auto _ : state) {
    auto data = F().table->Scan({3});  // score only: pruned decode
    benchmark::DoNotOptimize(data.TotalRows());
  }
  state.SetLabel("decode 1 of 4 columns from the cache");
}
BENCHMARK(BM_Cache_ScanOneColumn)->Unit(benchmark::kMillisecond)->Iterations(3);

void BM_Cache_ScanAllColumns(benchmark::State& state) {
  for (auto _ : state) {
    auto data = F().table->Scan({0, 1, 2, 3});
    benchmark::DoNotOptimize(data.TotalRows());
  }
  state.SetLabel("decode all 4 columns from the cache");
}
BENCHMARK(BM_Cache_ScanAllColumns)->Unit(benchmark::kMillisecond)->Iterations(3);

void RunRepeatedQuery(benchmark::State& state, bool cached) {
  // The cache competes against recomputation from the on-disk source
  // (Section 3.6: caching serves interactive/iterative reuse).
  SqlContext ctx(SparkSqlConfig());
  DataFrame df = ctx.ReadColf(F().colf_path);
  df.RegisterTempTable("t");
  if (cached) df.Cache();
  for (auto _ : state) {
    auto rows = ctx.Sql(
                       "SELECT category, avg(score) FROM t "
                       "WHERE flag = TRUE GROUP BY category")
                    .Collect();
    benchmark::DoNotOptimize(rows.size());
  }
}

void BM_Cache_RepeatedQuery_Cached(benchmark::State& state) {
  RunRepeatedQuery(state, true);
  state.SetLabel("aggregate over the columnar cache");
}
BENCHMARK(BM_Cache_RepeatedQuery_Cached)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(3);

void BM_Cache_RepeatedQuery_Uncached(benchmark::State& state) {
  RunRepeatedQuery(state, false);
  state.SetLabel("aggregate re-reading the colf file every time");
}
BENCHMARK(BM_Cache_RepeatedQuery_Uncached)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(3);

// Vectorized vs row execution over the same cached columns: the batched
// pipeline (native columnar scan → vector filter via selection view →
// lane-loop partial aggregate, no row ever boxed) against the identical
// query forced down the row-at-a-time path.
void RunVectorizedAB(benchmark::State& state, bool vectorized) {
  EngineConfig config = SparkSqlConfig();
  config.vectorized_enabled = vectorized;
  SqlContext ctx(config);
  DataFrame df = ctx.ReadColf(F().colf_path);
  df.RegisterTempTable("t");
  df.Cache();
  for (auto _ : state) {
    auto rows =
        ctx.Sql("SELECT sum(score), count(*) FROM t WHERE flag = TRUE")
            .Collect();
    benchmark::DoNotOptimize(rows.size());
  }
}

void BM_Cache_Query_Vectorized(benchmark::State& state) {
  RunVectorizedAB(state, true);
  state.SetLabel("batched scan→filter→aggregate over the cache");
}
BENCHMARK(BM_Cache_Query_Vectorized)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(5);

void BM_Cache_Query_Rows(benchmark::State& state) {
  RunVectorizedAB(state, false);
  state.SetLabel("same query, row-at-a-time execution");
}
BENCHMARK(BM_Cache_Query_Rows)->Unit(benchmark::kMillisecond)->Iterations(5);

}  // namespace
}  // namespace bench
}  // namespace ssql

BENCHMARK_MAIN();
