// Ablation: cost-based join selection (Section 4.3.3). Runs the same
// equi-join with each physical algorithm across build-side sizes, showing
// where broadcast wins (small build side: no shuffle of the big side) and
// that the planner's threshold-based choice tracks the best algorithm.

#include <benchmark/benchmark.h>

#include "bench/workloads.h"
#include "catalyst/expr/predicates.h"
#include "exec/join_exec.h"
#include "exec/scan_exec.h"

namespace ssql {
namespace bench {
namespace {

constexpr size_t kStreamRows = 200000;

struct Fixture {
  ExecContext engine{SparkSqlConfig()};
  QueryContextPtr query = engine.BeginQuery();
  AttributeVector left_attrs = {
      AttributeReference::Make("lk", DataType::Int32(), false),
      AttributeReference::Make("lv", DataType::Int32(), false)};
  AttributeVector right_attrs = {
      AttributeReference::Make("rk", DataType::Int32(), false),
      AttributeReference::Make("rv", DataType::Int32(), false)};
  std::shared_ptr<const std::vector<Row>> stream;

  Fixture() {
    std::mt19937_64 rng(17);
    auto rows = std::make_shared<std::vector<Row>>();
    rows->reserve(kStreamRows);
    for (size_t i = 0; i < kStreamRows; ++i) {
      rows->push_back(Row({Value(int32_t(rng() % 100000)),
                           Value(int32_t(i))}));
    }
    stream = rows;
  }

  std::shared_ptr<const std::vector<Row>> BuildSide(size_t n) {
    auto rows = std::make_shared<std::vector<Row>>();
    rows->reserve(n);
    for (size_t i = 0; i < n; ++i) {
      rows->push_back(
          Row({Value(int32_t(i % 100000)), Value(int32_t(i * 7))}));
    }
    return rows;
  }
};

Fixture& F() {
  static Fixture* fixture = new Fixture();
  return *fixture;
}

enum class Algo { kBroadcast, kShuffleHash, kSortMerge, kNestedLoop };

void RunJoin(benchmark::State& state, Algo algo) {
  size_t build_rows = static_cast<size_t>(state.range(0));
  auto& f = F();
  auto left = std::make_shared<LocalTableScanExec>(f.left_attrs, f.stream);
  auto right = std::make_shared<LocalTableScanExec>(f.right_attrs,
                                                    f.BuildSide(build_rows));
  ExprVector lk = {f.left_attrs[0]};
  ExprVector rk = {f.right_attrs[0]};

  PhysPtr join;
  switch (algo) {
    case Algo::kBroadcast:
      join = std::make_shared<BroadcastHashJoinExec>(
          left, right, lk, rk, JoinType::kInner, nullptr);
      break;
    case Algo::kShuffleHash:
      join = std::make_shared<ShuffleHashJoinExec>(left, right, lk, rk,
                                                   JoinType::kInner, nullptr);
      break;
    case Algo::kSortMerge:
      join = std::make_shared<SortMergeJoinExec>(left, right, lk, rk,
                                                 JoinType::kInner, nullptr);
      break;
    case Algo::kNestedLoop:
      join = std::make_shared<NestedLoopJoinExec>(
          left, right, JoinType::kInner,
          EqualTo::Make(f.left_attrs[0], f.right_attrs[0]));
      break;
  }
  size_t result = 0;
  for (auto _ : state) {
    result = join->Execute(*f.query).TotalRows();
    benchmark::DoNotOptimize(result);
  }
  state.counters["build_rows"] = static_cast<double>(build_rows);
  state.counters["result_rows"] = static_cast<double>(result);
}

void BM_Join_Broadcast(benchmark::State& state) {
  RunJoin(state, Algo::kBroadcast);
}
void BM_Join_ShuffleHash(benchmark::State& state) {
  RunJoin(state, Algo::kShuffleHash);
}
void BM_Join_SortMerge(benchmark::State& state) {
  RunJoin(state, Algo::kSortMerge);
}
void BM_Join_NestedLoop(benchmark::State& state) {
  RunJoin(state, Algo::kNestedLoop);
}

// Build-side sizes sweep: 1k (broadcastable) to 200k.
BENCHMARK(BM_Join_Broadcast)
    ->Arg(1000)
    ->Arg(20000)
    ->Arg(200000)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(3);
BENCHMARK(BM_Join_ShuffleHash)
    ->Arg(1000)
    ->Arg(20000)
    ->Arg(200000)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(3);
BENCHMARK(BM_Join_SortMerge)
    ->Arg(1000)
    ->Arg(20000)
    ->Arg(200000)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(3);
// Nested loop only at the small size — it is O(n*m).
BENCHMARK(BM_Join_NestedLoop)->Arg(1000)->Unit(benchmark::kMillisecond)->Iterations(1);

}  // namespace
}  // namespace bench
}  // namespace ssql

BENCHMARK_MAIN();
