// Ablation: Section 7.1 online aggregation. Reports how the estimate
// error and 95% CI width shrink with the fraction of data consumed, and
// the latency to a "good enough" answer vs the exact aggregate.

#include <benchmark/benchmark.h>

#include <cmath>

#include "bench/workloads.h"
#include "online/online_aggregation.h"

namespace ssql {
namespace bench {
namespace {

constexpr size_t kRows = 500000;

struct Fixture {
  SqlContext ctx{SparkSqlConfig()};
  DataFrame df;
  double true_avg = 0;

  Fixture() {
    auto schema = StructType::Make({Field("v", DataType::Double(), false)});
    std::mt19937_64 rng(29);
    std::vector<Row> rows;
    rows.reserve(kRows);
    double sum = 0;
    for (size_t i = 0; i < kRows; ++i) {
      double v = std::uniform_real_distribution<>(0, 1000)(rng);
      sum += v;
      rows.push_back(Row({Value(v)}));
    }
    true_avg = sum / kRows;
    df = ctx.CreateDataFrame(schema, rows);
    df.RegisterTempTable("t");
  }
};

Fixture& F() {
  static Fixture* fixture = new Fixture();
  return *fixture;
}

// Error/CI at a target fraction of the data (the paper's progress view).
void BM_OnlineAgg_AtFraction(benchmark::State& state) {
  double target_fraction = static_cast<double>(state.range(0)) / 100.0;
  double err = 0;
  double ci_width = 0;
  for (auto _ : state) {
    OnlineAggregator agg(F().df, "v", OnlineAggKind::kAvg, 100);
    auto estimates =
        agg.Run([&](size_t, const std::vector<OnlineEstimate>& est) {
          return est[0].fraction < target_fraction;  // stop at target
        });
    err = std::abs(estimates[0].estimate - F().true_avg);
    ci_width = estimates[0].ci_high - estimates[0].ci_low;
    benchmark::DoNotOptimize(err);
  }
  state.counters["fraction_pct"] = static_cast<double>(state.range(0));
  state.counters["abs_error"] = err;
  state.counters["ci_width"] = ci_width;
}
BENCHMARK(BM_OnlineAgg_AtFraction)
    ->Arg(1)
    ->Arg(5)
    ->Arg(25)
    ->Arg(100)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(2);

// Exact aggregate through the full engine, for the latency comparison.
void BM_OnlineAgg_ExactBaseline(benchmark::State& state) {
  for (auto _ : state) {
    auto rows = F().ctx.Sql("SELECT avg(v) FROM t").Collect();
    benchmark::DoNotOptimize(rows[0].GetDouble(0));
  }
  state.SetLabel("exact avg through the full engine");
}
BENCHMARK(BM_OnlineAgg_ExactBaseline)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(3);

}  // namespace
}  // namespace bench
}  // namespace ssql

BENCHMARK_MAIN();
