// Instrumentation overhead: the same queries with the per-query span tree
// recorded (profiling_enabled, the default) vs the bare legacy-metrics mode.
// Spans are created per operator/stage/task — never per row — so the two
// modes should stay within a few percent of each other (~3% budget); a
// larger gap means someone put profile work on a per-row path. The third
// variant additionally writes the Chrome trace-event file each query, to
// price the export itself.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <random>
#include <string>

#include "bench/workloads.h"

namespace ssql {
namespace bench {
namespace {

constexpr size_t kRows = 100000;
constexpr int kKeys = 2000;

enum Mode : int64_t { kUnprofiled = 0, kProfiled = 1, kProfiledWithTrace = 2 };

const char* TracePath() { return "/tmp/ssql-bench-observe-trace.json"; }

SqlContext* MakeContext(Mode mode) {
  EngineConfig config = SparkSqlConfig();
  config.profiling_enabled = mode != kUnprofiled;
  if (mode == kProfiledWithTrace) config.trace_path = TracePath();
  auto* ctx = new SqlContext(config);

  std::mt19937_64 rng(7);
  auto schema = StructType::Make({
      Field("k", DataType::Int32(), false),
      Field("v", DataType::Int32(), false),
  });
  std::vector<Row> rows;
  rows.reserve(kRows);
  for (size_t i = 0; i < kRows; ++i) {
    rows.push_back(Row({Value(static_cast<int32_t>(rng() % kKeys)),
                        Value(static_cast<int32_t>(rng() % 1000))}));
  }
  ctx->CreateDataFrame(schema, std::move(rows)).RegisterTempTable("t");

  auto dim = StructType::Make({
      Field("k", DataType::Int32(), false),
      Field("w", DataType::Int32(), false),
  });
  std::vector<Row> dim_rows;
  dim_rows.reserve(kKeys);
  for (int i = 0; i < kKeys; ++i) {
    dim_rows.push_back(Row({Value(int32_t(i)), Value(int32_t(i * 2))}));
  }
  ctx->CreateDataFrame(dim, std::move(dim_rows)).RegisterTempTable("dim");
  return ctx;
}

/// state.range(0): Mode above.
void RunQuery(benchmark::State& state, const std::string& sql) {
  Mode mode = static_cast<Mode>(state.range(0));
  SqlContext* ctx = MakeContext(mode);
  size_t result_rows = 0;
  for (auto _ : state) {
    result_rows = ctx->Sql(sql).Collect().size();
  }
  state.counters["result_rows"] = static_cast<double>(result_rows);
  if (mode != kUnprofiled) {
    state.counters["spans"] = static_cast<double>(
        ctx->last_profile().root() != nullptr
            ? 1 + ctx->last_profile().root()->children.size()
            : 0);
  }
  delete ctx;
  if (mode == kProfiledWithTrace) std::remove(TracePath());
}

void BM_FilterAggregate(benchmark::State& state) {
  RunQuery(state,
           "SELECT k, sum(v), count(*) FROM t WHERE v < 900 GROUP BY k");
}

void BM_JoinAggregate(benchmark::State& state) {
  RunQuery(state,
           "SELECT t.k, sum(dim.w) FROM t JOIN dim ON t.k = dim.k GROUP BY "
           "t.k");
}

void BM_SortLimit(benchmark::State& state) {
  RunQuery(state, "SELECT k, v FROM t ORDER BY v DESC, k LIMIT 100");
}

BENCHMARK(BM_FilterAggregate)
    ->Arg(kUnprofiled)->Arg(kProfiled)->Arg(kProfiledWithTrace)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_JoinAggregate)
    ->Arg(kUnprofiled)->Arg(kProfiled)->Arg(kProfiledWithTrace)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_SortLimit)
    ->Arg(kUnprofiled)->Arg(kProfiled)->Arg(kProfiledWithTrace)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace bench
}  // namespace ssql

BENCHMARK_MAIN();
