// Instrumentation overhead: the same queries with the per-query span tree
// recorded (profiling_enabled, the default) vs the bare legacy-metrics mode.
// Spans are created per operator/stage/task — never per row — so the two
// modes should stay within a few percent of each other (~3% budget); a
// larger gap means someone put profile work on a per-row path. The third
// variant additionally writes the Chrome trace-event file each query, to
// price the export itself.

#include <benchmark/benchmark.h>

#include <atomic>
#include <cstdio>
#include <fstream>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "bench/workloads.h"
#include "util/event_journal.h"
#include "util/metrics_registry.h"

namespace ssql {
namespace bench {
namespace {

constexpr size_t kRows = 100000;
constexpr int kKeys = 2000;

enum Mode : int64_t { kUnprofiled = 0, kProfiled = 1, kProfiledWithTrace = 2 };

const char* TracePath() { return "/tmp/ssql-bench-observe-trace.json"; }

SqlContext* MakeContext(Mode mode) {
  EngineConfig config = SparkSqlConfig();
  config.profiling_enabled = mode != kUnprofiled;
  if (mode == kProfiledWithTrace) config.trace_path = TracePath();
  auto* ctx = new SqlContext(config);

  std::mt19937_64 rng(7);
  auto schema = StructType::Make({
      Field("k", DataType::Int32(), false),
      Field("v", DataType::Int32(), false),
  });
  std::vector<Row> rows;
  rows.reserve(kRows);
  for (size_t i = 0; i < kRows; ++i) {
    rows.push_back(Row({Value(static_cast<int32_t>(rng() % kKeys)),
                        Value(static_cast<int32_t>(rng() % 1000))}));
  }
  ctx->CreateDataFrame(schema, std::move(rows)).RegisterTempTable("t");

  auto dim = StructType::Make({
      Field("k", DataType::Int32(), false),
      Field("w", DataType::Int32(), false),
  });
  std::vector<Row> dim_rows;
  dim_rows.reserve(kKeys);
  for (int i = 0; i < kKeys; ++i) {
    dim_rows.push_back(Row({Value(int32_t(i)), Value(int32_t(i * 2))}));
  }
  ctx->CreateDataFrame(dim, std::move(dim_rows)).RegisterTempTable("dim");
  return ctx;
}

/// state.range(0): Mode above.
void RunQuery(benchmark::State& state, const std::string& sql) {
  Mode mode = static_cast<Mode>(state.range(0));
  SqlContext* ctx = MakeContext(mode);
  size_t result_rows = 0;
  for (auto _ : state) {
    result_rows = ctx->Sql(sql).Collect().size();
  }
  state.counters["result_rows"] = static_cast<double>(result_rows);
  if (mode != kUnprofiled) {
    state.counters["spans"] = static_cast<double>(
        ctx->last_profile().root() != nullptr
            ? 1 + ctx->last_profile().root()->children.size()
            : 0);
  }
  delete ctx;
  if (mode == kProfiledWithTrace) std::remove(TracePath());
}

void BM_FilterAggregate(benchmark::State& state) {
  RunQuery(state,
           "SELECT k, sum(v), count(*) FROM t WHERE v < 900 GROUP BY k");
}

void BM_JoinAggregate(benchmark::State& state) {
  RunQuery(state,
           "SELECT t.k, sum(dim.w) FROM t JOIN dim ON t.k = dim.k GROUP BY "
           "t.k");
}

void BM_SortLimit(benchmark::State& state) {
  RunQuery(state, "SELECT k, v FROM t ORDER BY v DESC, k LIMIT 100");
}

BENCHMARK(BM_FilterAggregate)
    ->Arg(kUnprofiled)->Arg(kProfiled)->Arg(kProfiledWithTrace)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_JoinAggregate)
    ->Arg(kUnprofiled)->Arg(kProfiled)->Arg(kProfiledWithTrace)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_SortLimit)
    ->Arg(kUnprofiled)->Arg(kProfiled)->Arg(kProfiledWithTrace)
    ->Unit(benchmark::kMillisecond);

// ---- registry primitives ---------------------------------------------------

// Cost of one histogram observation (two relaxed atomic adds) — the price
// paid per query / per operator / per spill event on the hot path.
void BM_HistogramRecord(benchmark::State& state) {
  HistogramMetric h;
  int64_t v = 1;
  for (auto _ : state) {
    h.Record(v);
    v = (v * 31 + 7) & 0xfffff;  // spread across buckets
  }
  benchmark::DoNotOptimize(h.count());
}
BENCHMARK(BM_HistogramRecord);

// Cost of one legacy Metrics::Add — after the parent-forwarding fix this is
// a single mutex acquisition on the query-private bag.
void BM_MetricsAdd(benchmark::State& state) {
  Metrics metrics;
  for (auto _ : state) {
    metrics.Add("bench.counter", 1);
  }
  benchmark::DoNotOptimize(metrics.Get("bench.counter"));
}
BENCHMARK(BM_MetricsAdd);

// ---- ANALYZE TABLE cost and stats-aware planning ---------------------------

const char* StatsCsvPath() { return "/tmp/ssql-bench-observe-stats.csv"; }

/// A csv-backed twin of the `t` table — file-backed so ANALYZE records a
/// source identity and the planner actually consults the stats.
SqlContext* MakeCsvContext() {
  std::mt19937_64 rng(11);
  std::ofstream out(StatsCsvPath());
  out << "k,v\n";
  for (size_t i = 0; i < kRows; ++i) {
    out << rng() % kKeys << "," << rng() % 1000 << "\n";
  }
  out.close();
  auto* ctx = new SqlContext(SparkSqlConfig());
  ctx->RegisterTable("t", ctx->ReadCsv(StatsCsvPath()));
  return ctx;
}

// Price of ANALYZE TABLE ... FOR ALL COLUMNS on 100k x 2 columns: one full
// scan plus, per non-null value, an HLL add, a min/max compare and a
// histogram bucket increment. Sets the refresh budget for keeping stats
// fresh on hot tables.
void BM_AnalyzeTableAllColumns(benchmark::State& state) {
  SqlContext* ctx = MakeCsvContext();
  for (auto _ : state) {
    ctx->Sql("ANALYZE TABLE t COMPUTE STATISTICS FOR ALL COLUMNS").Collect();
  }
  state.counters["rows"] = static_cast<double>(kRows);
  delete ctx;
  std::remove(StatsCsvPath());
}
BENCHMARK(BM_AnalyzeTableAllColumns)->Unit(benchmark::kMillisecond);

// Physical planning of a join+filter+agg query without (0) and with (1)
// analyzed stats: the per-node estimate annotation and StatsStore lookups
// must stay microseconds — planning-path work, never per-row.
void BM_PlanWithEstimates(benchmark::State& state) {
  SqlContext* ctx = MakeCsvContext();
  if (state.range(0) == 1) {
    ctx->Sql("ANALYZE TABLE t COMPUTE STATISTICS FOR ALL COLUMNS").Collect();
  }
  DataFrame df = ctx->Sql(
      "SELECT t1.k, count(*) FROM t t1 JOIN t t2 ON t1.k = t2.k "
      "WHERE t1.v < 900 GROUP BY t1.k");
  PlanPtr optimized = ctx->Optimize(df.plan());
  for (auto _ : state) {
    benchmark::DoNotOptimize(ctx->PlanPhysical(optimized));
  }
  delete ctx;
  std::remove(StatsCsvPath());
}
BENCHMARK(BM_PlanWithEstimates)->Arg(0)->Arg(1);

// ---- system-table scan overhead --------------------------------------------

// One SELECT over system.queries while state.range(0) background query
// threads hammer the engine — the overhead a monitoring dashboard imposes
// on a busy engine, and vice versa.
void BM_SystemTableScan(benchmark::State& state) {
  const int background = static_cast<int>(state.range(0));
  SqlContext* ctx = MakeContext(kProfiled);

  std::atomic<bool> stop{false};
  std::vector<std::thread> workers;
  for (int i = 0; i < background; ++i) {
    workers.emplace_back([ctx, &stop] {
      while (!stop.load(std::memory_order_acquire)) {
        ctx->Sql("SELECT k, sum(v) FROM t WHERE v < 900 GROUP BY k")
            .Collect();
      }
    });
  }

  size_t rows = 0;
  for (auto _ : state) {
    rows = ctx->Sql("SELECT status, count(*) FROM system.queries "
                    "GROUP BY status")
               .Collect()
               .size();
  }
  state.counters["status_groups"] = static_cast<double>(rows);

  stop.store(true, std::memory_order_release);
  for (auto& t : workers) t.join();
  delete ctx;
}
BENCHMARK(BM_SystemTableScan)
    ->Arg(0)->Arg(2)->Arg(4)
    ->Unit(benchmark::kMillisecond);

// ---- flight recorder -------------------------------------------------------

// Raw cost of one journal Emit: disabled (capacity 0 — one relaxed atomic
// load) vs enabled (fetch_add + slot copy under an uncontended shard
// mutex). This is the per-event price every task attempt / spill / query
// pays; both must stay in the nanoseconds.
void BM_JournalEmit(benchmark::State& state) {
  EventJournal journal(static_cast<size_t>(state.range(0)));
  int64_t v = 0;
  for (auto _ : state) {
    journal.Emit(EngineEventKind::kTaskStart, EventSeverity::kDebug, 1, v++,
                 "stage");
  }
  state.counters["appended"] = static_cast<double>(journal.appended());
}
BENCHMARK(BM_JournalEmit)->Arg(0)->Arg(4096);

// End-to-end query cost with the flight recorder off (0) vs on (4096, the
// default). The recorder emits per task attempt and per query — never per
// row — so the two must be within noise of each other; a gap means an
// emission landed on a per-row path.
void BM_QueryWithJournal(benchmark::State& state) {
  SqlContext* ctx = MakeContext(kProfiled);
  ctx->UpdateConfig([&](EngineConfig& c) {
    c.event_journal_capacity = static_cast<size_t>(state.range(0));
  });
  size_t rows = 0;
  for (auto _ : state) {
    rows = ctx->Sql("SELECT k, sum(v), count(*) FROM t WHERE v < 900 "
                    "GROUP BY k")
               .Collect()
               .size();
  }
  state.counters["result_rows"] = static_cast<double>(rows);
  delete ctx;
}
BENCHMARK(BM_QueryWithJournal)->Arg(0)->Arg(4096)
    ->Unit(benchmark::kMillisecond);

// SELECT over system.events (with a kind filter pushed down) while
// state.range(0) background query threads keep the journal churning — the
// cost of watching the flight recorder on a busy engine.
void BM_EventsScanUnderLoad(benchmark::State& state) {
  const int background = static_cast<int>(state.range(0));
  SqlContext* ctx = MakeContext(kProfiled);

  std::atomic<bool> stop{false};
  std::vector<std::thread> workers;
  for (int i = 0; i < background; ++i) {
    workers.emplace_back([ctx, &stop] {
      while (!stop.load(std::memory_order_acquire)) {
        ctx->Sql("SELECT k, sum(v) FROM t WHERE v < 900 GROUP BY k")
            .Collect();
      }
    });
  }

  size_t rows = 0;
  for (auto _ : state) {
    rows = ctx->Sql("SELECT kind, count(*) FROM system.events "
                    "WHERE severity = 'DEBUG' GROUP BY kind")
               .Collect()
               .size();
  }
  state.counters["kind_groups"] = static_cast<double>(rows);

  stop.store(true, std::memory_order_release);
  for (auto& t : workers) t.join();
  delete ctx;
}
BENCHMARK(BM_EventsScanUnderLoad)
    ->Arg(0)->Arg(2)->Arg(4)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace bench
}  // namespace ssql

BENCHMARK_MAIN();
